"""Regenerate the paper's fig7.
Figure 7, case study II (mixed 4-core workload).  Expected shape:
FCFS / FR-FCFS+Cap do not beat FR-FCFS here; STFM lowest
unfairness with competitive weighted speedup.
"""

from repro.experiments.base import Scale


def test_regenerate_fig07(regenerate):
    regenerate("fig7", Scale(budget=20_000, samples=1))
