"""Regenerate the paper's fig8.
Figure 8, case study III (non-intensive 4-core workload).
Expected shape: FR-FCFS very unfair (libquantum wins); STFM lowest
unfairness with the best hmean speedup.
"""

from repro.experiments.base import Scale


def test_regenerate_fig08(regenerate):
    regenerate("fig8", Scale(budget=20_000, samples=1))
