"""Shared machinery for the figure/table regeneration benchmarks.

Each ``bench_*.py`` regenerates one figure or table of the paper via
pytest-benchmark::

    pytest benchmarks/ --benchmark-only

The benchmark clock measures the end-to-end experiment (workload
generation, alone baselines, shared runs under every scheduler); the
regenerated rows are attached as ``extra_info`` and the formatted tables
are printed so the run doubles as the reproduction log for
EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment
from repro.experiments.base import ExperimentResult, Scale


@pytest.fixture
def regenerate(benchmark, capsys):
    """Run one experiment under the benchmark clock and print its tables."""

    def _run(experiment_id: str, scale: Scale) -> ExperimentResult:
        result = benchmark.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"scale": scale},
            rounds=1,
            iterations=1,
        )
        benchmark.extra_info["experiment"] = result.experiment_id
        benchmark.extra_info["paper_reference"] = result.paper_reference
        with capsys.disabled():
            print(f"\n== {result.experiment_id}: {result.title} ==")
            print(result.text)
            if result.paper_reference:
                print(f"[{result.paper_reference}]")
        assert result.rows, "experiment produced no rows"
        return result

    return _run
