"""Regenerate the paper's fig15.
Figure 15: alpha sweep.  Expected shape: unfairness rises toward
FR-FCFS's as alpha grows; alpha 1.05-1.1 beats alpha=1.0 on
throughput.
"""

from repro.experiments.base import Scale


def test_regenerate_fig15(regenerate):
    regenerate("fig15", Scale(budget=20_000, samples=1))
