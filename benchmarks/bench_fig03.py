"""Regenerate the paper's fig3.
Figure 3 (qualitative): the NFQ idleness problem.  Expected shape:
NFQ slows the continuous thread more than the bursty ones; FR-FCFS
and STFM treat them nearly equally.
"""

from repro.experiments.base import Scale


def test_regenerate_fig03(regenerate):
    regenerate("fig3", Scale(budget=20_000, samples=1))
