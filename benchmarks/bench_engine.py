"""Benchmark the parallel experiment engine on a small policy sweep.

Three measurements over the same 4-workload x 5-policy sweep (27 unique
simulation jobs after alone-baseline dedup):

* ``serial`` — the ``--jobs 1`` degenerate case (the pre-engine code
  path's cost);
* ``parallel`` — a cold 4-worker pool run (speedup bounded by the
  machine's core count; on a single-core box expect ~1x plus fork
  overhead);
* ``warm_cache`` — a rerun against the persistent result store: zero
  simulations, wall time is pure store-read cost.

Run with::

    pytest benchmarks/bench_engine.py -m slow --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ALL_POLICIES, policy_sweep
from repro.sim.config import SystemConfig
from repro.sim.runner import ExperimentRunner

WORKLOADS = [
    ["mcf", "hmmer"],
    ["libquantum", "omnetpp"],
    ["mcf", "libquantum"],
    ["GemsFDTD", "astar"],
]
BUDGET = 6_000
CONFIG = SystemConfig(num_cores=2)


def _sweep(runner: ExperimentRunner):
    return policy_sweep(runner, WORKLOADS, ALL_POLICIES)


def _attach(benchmark, runner: ExperimentRunner) -> None:
    report = runner.report
    benchmark.extra_info["jobs_total"] = report.jobs_total
    benchmark.extra_info["jobs_run"] = report.jobs_run
    benchmark.extra_info["cache_hits"] = report.hits
    benchmark.extra_info["sim_time"] = round(report.sim_time, 3)
    benchmark.extra_info["speedup_vs_serial_sim"] = round(report.speedup, 2)


@pytest.mark.slow
def test_engine_serial_baseline(benchmark):
    runner = ExperimentRunner(CONFIG, instruction_budget=BUDGET, jobs=1)
    rows, _ = benchmark.pedantic(_sweep, args=(runner,), rounds=1, iterations=1)
    assert rows[-1]["workload"] == "GMEAN"
    _attach(benchmark, runner)


@pytest.mark.slow
def test_engine_parallel_speedup(benchmark, tmp_path):
    runner = ExperimentRunner(
        CONFIG, instruction_budget=BUDGET, jobs=4, cache_dir=str(tmp_path)
    )
    rows, _ = benchmark.pedantic(_sweep, args=(runner,), rounds=1, iterations=1)
    assert rows[-1]["workload"] == "GMEAN"
    assert runner.report.jobs_run == runner.report.jobs_total
    _attach(benchmark, runner)


@pytest.mark.slow
def test_engine_warm_cache_wall_time(benchmark, tmp_path):
    cache = str(tmp_path / "store")
    cold = ExperimentRunner(
        CONFIG, instruction_budget=BUDGET, jobs=4, cache_dir=cache
    )
    cold_rows, _ = _sweep(cold)

    warm = ExperimentRunner(
        CONFIG, instruction_budget=BUDGET, jobs=4, cache_dir=cache
    )
    warm_rows, _ = benchmark.pedantic(
        _sweep, args=(warm,), rounds=1, iterations=1
    )
    # Zero new simulations, identical metrics.
    assert warm.report.jobs_run == 0
    assert warm.report.hits_disk == warm.report.jobs_total
    assert warm_rows == cold_rows
    _attach(benchmark, warm)
