"""Regenerate the memory-performance-attack scenario (paper reference
[20]).  Expected shape: FR-FCFS amplifies the victim's slowdown ~3x when
the co-runner is a malicious stream; STFM bounds the amplification near
1x while slowing the attacker itself.
"""

from repro.experiments.base import Scale


def test_regenerate_attack(regenerate):
    regenerate("attack", Scale(budget=20_000, samples=1))
