"""Regenerate the paper's table3.
Table 3 calibration: generated traces match MPKI and row-buffer hit
targets; MCPI reported for reference.
"""

from repro.experiments.base import Scale


def test_regenerate_table3(regenerate):
    regenerate("table3", Scale(budget=30_000, samples=1))
