"""Regenerate the paper's fig1.
Figure 1: FR-FCFS memory slowdowns on 4- and 8-core CMPs.
Expected shape: libquantum barely slowed; omnetpp (4-core) and
dealII (8-core) slowed several-fold; worse at 8 cores.
"""

from repro.experiments.base import Scale


def test_regenerate_fig01(regenerate):
    regenerate("fig1", Scale(budget=20_000, samples=2))
