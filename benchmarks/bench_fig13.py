"""Regenerate the paper's fig13.
Figure 13: desktop workload.  Expected shape: FR-FCFS starves the
foreground apps behind the streaming background threads; STFM
equalizes; NFQ in between (access-balance problem).
"""

from repro.experiments.base import Scale


def test_regenerate_fig13(regenerate):
    regenerate("fig13", Scale(budget=20_000, samples=1))
