"""Regenerate the paper's fig10.
Figure 10: non-intensive 8-core case study.  Expected shape: STFM
lowest unfairness; NFQ penalizes the continuous mcf.
"""

from repro.experiments.base import Scale


def test_regenerate_fig10(regenerate):
    regenerate("fig10", Scale(budget=20_000, samples=1))
