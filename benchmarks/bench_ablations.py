"""Regenerate the design-choice ablations (beyond the paper's figures).

gamma / IntervalLength / estimator basis for STFM, the FR-FCFS+Cap cap,
open- vs closed-page row management, and DRAM refresh.  Expected shapes
are documented in repro/experiments/ablations.py.
"""

import pytest

from repro.experiments.base import Scale

ABLATIONS = [
    "ablate-gamma",
    "ablate-interval",
    "ablate-estimator",
    "ablate-cap",
    "ablate-page-policy",
    "ablate-refresh",
]


@pytest.mark.parametrize("experiment_id", ABLATIONS)
def test_regenerate_ablation(regenerate, experiment_id):
    regenerate(experiment_id, Scale(budget=12_000, samples=1))
