"""Regenerate the paper's fig9.
Figure 9: 4-core sweep with GMEAN aggregation.  Expected shape:
unfairness ordering FR-FCFS worst ... STFM best; STFM GMEAN
weighted/hmean speedup >= the baselines'.
"""

from repro.experiments.base import Scale


def test_regenerate_fig09(regenerate):
    regenerate("fig9", Scale(budget=12_000, samples=6))
