"""Regenerate the paper's fig14.
Figure 14: thread weights.  Expected shape: both NFQ shares and
STFM weights prioritize the heavy thread, but STFM keeps
equal-weight threads' slowdowns closer (lower equal-priority
unfairness).
"""

from repro.experiments.base import Scale


def test_regenerate_fig14(regenerate):
    regenerate("fig14", Scale(budget=20_000, samples=1))
