"""Regenerate the paper's fig6.
Figure 6, case study I (memory-intensive 4-core workload).
Expected shape: FR-FCFS favors libquantum; STFM lowest unfairness;
NFQ penalizes the continuous/stream threads.
"""

from repro.experiments.base import Scale


def test_regenerate_fig06(regenerate):
    regenerate("fig6", Scale(budget=20_000, samples=1))
