"""Regenerate the paper's fig5.
Figure 5: 2-core mcf-vs-each-benchmark pairs under FR-FCFS and STFM.
Expected shape: STFM compresses each pair's slowdowns (GMEAN
unfairness drops toward ~1.2-1.4) without losing weighted speedup.
"""

from repro.experiments.base import Scale


def test_regenerate_fig05(regenerate):
    regenerate("fig5", Scale(budget=12_000, samples=6))
