"""Regenerate the paper's table5.
Table 5: bank-count and row-buffer-size sensitivity at 8 cores.
Expected shape: FR-FCFS unfairness falls with banks, rises with row
size; STFM roughly flat and always far lower.
"""

from repro.experiments.base import Scale


def test_regenerate_table5(regenerate):
    regenerate("table5", Scale(budget=10_000, samples=3))
