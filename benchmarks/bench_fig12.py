"""Regenerate the paper's fig12.
Figure 12: the three 16-core workloads.  Expected shape: STFM best
fairness; NFQ degrades at 16 cores.
"""

from repro.experiments.base import Scale


def test_regenerate_fig12(regenerate):
    regenerate("fig12", Scale(budget=10_000, samples=3))
