"""Regenerate the paper's fig11.
Figure 11: 8-core sweep with GMEAN aggregation.  Expected shape:
FR-FCFS unfairness grows versus 4 cores; STFM stays lowest.
"""

from repro.experiments.base import Scale


def test_regenerate_fig11(regenerate):
    regenerate("fig11", Scale(budget=10_000, samples=5))
