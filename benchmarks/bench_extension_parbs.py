"""Regenerate the PAR-BS extension comparison.

STFM vs its ISCA 2008 successor (plus the paper's baselines) across the
three 4-core case-study workloads.  Expected shape: STFM and PAR-BS both
dominate the thread-oblivious baselines on fairness; PAR-BS trades a
little fairness for throughput.
"""

from repro.experiments.base import Scale


def test_regenerate_extension_parbs(regenerate):
    regenerate("extension-parbs", Scale(budget=15_000, samples=1))
