#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from a results JSON.

Usage::

    python tools/make_experiments_md.py results.json [scale-label]
"""

import sys

from repro.analysis.report import generate_report
from repro.experiments.io import load_results

PREAMBLE = """\
## Methodology

Produced with `stfm-sim run all --scale {scale} --json {source}` on the
pure-Python simulator in this repository.  Workloads are synthetic
traces matching the paper's per-benchmark statistics (Table 3/4);
per-thread instruction budgets are ~10^3 smaller than the paper's
100M-instruction SimPoints (see DESIGN.md, substitutions 1-3).

**How to read the comparisons.**  Absolute slowdowns are compressed
relative to the paper — our FR-FCFS baseline starves victims less than
the authors' simulator did, chiefly because the synthetic workloads
cannot fully reproduce SPEC programs' pathological row-buffer streaks
and because short runs blunt queue build-up.  The *shapes* are the
reproduction target: who wins, which threads each scheduler victimizes,
pairwise policy orderings, and parameter trends.  Each section below
reports those checks explicitly.

**Headline**: STFM is the fairest scheduler in every comparison but
one (the 16-core GMEAN, where FCFS edges it by ~5% at this reduced
scale) while matching or improving weighted speedup.  Its measured
GMEAN unfairness lands strikingly close to the paper's published
values — 4-core 1.19 vs paper 1.24, 8-core 1.36 vs paper 1.40, 16-core
1.74 vs paper 1.75 — and the paper's qualitative mechanisms reproduce:
FR-FCFS's row-buffer/intensity bias, NFQ's idleness and access-balance
pathologies, Table 5's bank/row-buffer trends, and the ~3x FR-FCFS
attack amplification that STFM contains.
"""


def main() -> int:
    source = sys.argv[1] if len(sys.argv) > 1 else "results_small.json"
    scale = sys.argv[2] if len(sys.argv) > 2 else "small"
    results = load_results(source)
    report = generate_report(
        results, preamble=PREAMBLE.format(scale=scale, source=source)
    )
    with open("EXPERIMENTS.md", "w") as handle:
        handle.write(report)
    print(f"wrote EXPERIMENTS.md from {source} ({len(results)} experiments)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
