"""Figure 15: effect of STFM's alpha (maximum tolerable unfairness).

Alpha sweep {1.0, 1.05, 1.1, 1.2, 2, 5, 20} on the Figure 6 workload,
with FR-FCFS as the reference.  The paper: as alpha grows STFM converges
to FR-FCFS (unfairness and throughput); alpha = 1.0 applies the fairness
rule constantly and *loses* throughput versus 1.05-1.1 without gaining
fairness, because slowdown estimates are imperfect.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_scale
from repro.experiments.common import make_runner
from repro.experiments.fig06 import WORKLOAD
from repro.sim.results import format_table

ALPHAS = [1.0, 1.05, 1.1, 1.2, 2.0, 5.0, 20.0]


def run(scale="small") -> ExperimentResult:
    scale = resolve_scale(scale)
    runner = make_runner(4, scale)
    rows = []
    table_rows = []
    for alpha in ALPHAS:
        result = runner.run_workload(WORKLOAD, "stfm", {"alpha": alpha})
        rows.append(
            {
                "alpha": alpha,
                "unfairness": result.unfairness,
                "weighted_speedup": result.weighted_speedup,
                "sum_of_ipcs": result.sum_of_ipcs,
                "hmean_speedup": result.hmean_speedup,
                "fairness_rule_fraction": result.extras.get(
                    "fairness_rule_fraction", 0.0
                ),
            }
        )
        table_rows.append(
            [
                f"alpha={alpha}",
                result.unfairness,
                result.weighted_speedup,
                result.sum_of_ipcs,
                result.hmean_speedup,
            ]
        )
    reference = runner.run_workload(WORKLOAD, "fr-fcfs")
    rows.append(
        {
            "alpha": None,
            "unfairness": reference.unfairness,
            "weighted_speedup": reference.weighted_speedup,
            "sum_of_ipcs": reference.sum_of_ipcs,
            "hmean_speedup": reference.hmean_speedup,
        }
    )
    table_rows.append(
        [
            "FR-FCFS",
            reference.unfairness,
            reference.weighted_speedup,
            reference.sum_of_ipcs,
            reference.hmean_speedup,
        ]
    )
    text = format_table(
        ["scheme", "unfairness", "weighted_speedup", "sum_of_ipcs", "hmean"],
        table_rows,
    )
    return ExperimentResult(
        experiment_id="fig15",
        title="Effect of alpha on fairness and throughput",
        rows=rows,
        text=text,
        paper_reference=(
            "Paper: unfairness rises toward FR-FCFS's as alpha grows; "
            "alpha=1.1 beats alpha=1.0 on throughput at similar fairness."
        ),
    )
