"""Table 3 calibration: do generated traces match the paper's statistics?

For each benchmark we run it alone in the baseline 4-core memory system
and compare measured MPKI, run-alone row-buffer hit rate, and MCPI
against the Table 3 targets.  MPKI and the row-buffer hit rate are
generator inputs and should match closely; MCPI is an emergent property
of the core/DRAM model and is reported for reference (our analytical
core extracts somewhat more memory-level parallelism than the paper's,
see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_scale
from repro.schedulers.registry import make_policy
from repro.sim.config import SystemConfig
from repro.sim.results import format_table
from repro.sim.runner import ExperimentRunner
from repro.sim.system import CmpSystem
from repro.workloads.spec2006 import SPEC2006


def run(scale="small", names: list[str] | None = None) -> ExperimentResult:
    scale = resolve_scale(scale)
    config = SystemConfig(num_cores=4)
    runner = ExperimentRunner(
        config, instruction_budget=scale.budget, seed=scale.seed
    )
    if names is None:
        names = list(SPEC2006)
    rows = []
    table_rows = []
    for name in names:
        spec = SPEC2006[name]
        trace = runner.trace_for(name, 0, 1)
        policy = make_policy("fr-fcfs", num_threads=1)
        system = CmpSystem(
            config, [trace], policy, runner.budget_for(name), mlp_limits=[spec.mlp]
        )
        snapshot = system.run()[0]
        measured_rb = system.controller.thread_stats[0].row_hit_rate
        rows.append(
            {
                "benchmark": name,
                "mpki_target": spec.mpki,
                "mpki_measured": snapshot.mpki,
                "rb_hit_target": spec.rb_hit_rate,
                "rb_hit_measured": measured_rb,
                "mcpi_paper": spec.mcpi,
                "mcpi_measured": snapshot.mcpi,
            }
        )
        table_rows.append(
            [
                name,
                spec.mpki,
                snapshot.mpki,
                spec.rb_hit_rate,
                measured_rb,
                spec.mcpi,
                snapshot.mcpi,
            ]
        )
    text = format_table(
        [
            "benchmark",
            "MPKI(tgt)",
            "MPKI(sim)",
            "RBhit(tgt)",
            "RBhit(sim)",
            "MCPI(paper)",
            "MCPI(sim)",
        ],
        table_rows,
    )
    return ExperimentResult(
        experiment_id="table3",
        title="Benchmark characteristics calibration vs Table 3",
        rows=rows,
        text=text,
        paper_reference="Targets are the paper's Table 3 values verbatim.",
    )
