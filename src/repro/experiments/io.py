"""Persisting experiment results as JSON.

The CLI's ``run --json out.json`` writes every experiment's structured
rows plus metadata, so sweeps can be archived and post-processed (e.g.
plotted) without re-simulating.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.base import ExperimentResult


def result_to_dict(result: ExperimentResult) -> dict:
    """JSON-serializable form of one experiment result."""
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "paper_reference": result.paper_reference,
        "rows": _plain(result.rows),
        "extras": _plain(result.extras),
    }


def save_results(results: list[ExperimentResult], path: str | Path) -> None:
    """Write results to ``path`` as a JSON document."""
    payload = {
        "format": "repro-results v1",
        "results": [result_to_dict(result) for result in results],
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_results(path: str | Path) -> list[dict]:
    """Read a results file back as plain dictionaries."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != "repro-results v1":
        raise ValueError(f"{path} is not a repro-results v1 file")
    return payload["results"]


def _plain(value):
    """Coerce tuples/sets and other JSON-hostile values to plain types."""
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_plain(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
