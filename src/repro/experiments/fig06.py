"""Figure 6, case study I: a memory-intensive 4-core workload.

mcf + libquantum + GemsFDTD + astar under all five schedulers.  Paper
unfairness: FR-FCFS 7.28, FCFS 2.07, FR-FCFS+Cap 2.08, NFQ 1.87, STFM
1.27 — with GemsFDTD (0.2% row-buffer hit rate) the FR-FCFS victim and
mcf/astar the NFQ victims (idleness and access-balance problems).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_scale
from repro.experiments.common import case_study, make_runner

WORKLOAD = ["mcf", "libquantum", "GemsFDTD", "astar"]


def run(scale="small") -> ExperimentResult:
    scale = resolve_scale(scale)
    runner = make_runner(4, scale)
    rows, text = case_study(runner, WORKLOAD)
    return ExperimentResult(
        experiment_id="fig6",
        title="Case study I: memory-intensive 4-core workload",
        rows=rows,
        text=text,
        paper_reference=(
            "Paper unfairness: FR-FCFS 7.28, FCFS 2.07, FR-FCFS+Cap 2.08, "
            "NFQ 1.87, STFM 1.27; STFM +3% weighted / +8% hmean over NFQ."
        ),
    )
