"""Registry mapping experiment ids to their entry points."""

from __future__ import annotations

from typing import Callable

from repro.experiments import (
    ablations,
    attack,
    extension_parbs,
    fig01,
    fig03,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    table3,
    table5,
)
from repro.experiments.base import ExperimentResult

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig1": fig01.run,
    "fig3": fig03.run,
    "fig5": fig05.run,
    "fig6": fig06.run,
    "fig7": fig07.run,
    "fig8": fig08.run,
    "fig9": fig09.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
    "fig14": fig14.run,
    "fig15": fig15.run,
    "table3": table3.run,
    "table5": table5.run,
    # Ablations beyond the paper's printed figures (see ablations.py).
    "ablate-gamma": ablations.run_gamma,
    "ablate-interval": ablations.run_interval,
    "ablate-estimator": ablations.run_estimator_basis,
    "ablate-cap": ablations.run_cap,
    "ablate-page-policy": ablations.run_page_policy,
    "ablate-refresh": ablations.run_refresh,
    # The denial-of-memory-service scenario of the paper's reference [20].
    "attack": attack.run,
    # Head-to-head with the successor scheduler (ISCA 2008).
    "extension-parbs": extension_parbs.run,
}


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    try:
        return EXPERIMENTS[experiment_id.lower()]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {', '.join(EXPERIMENTS)}"
        ) from None


def run_experiment(experiment_id: str, scale="small") -> ExperimentResult:
    """Run one experiment by id at the given scale."""
    return get_experiment(experiment_id)(scale=scale)
