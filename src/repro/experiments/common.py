"""Common experiment shapes: case studies and policy sweeps."""

from __future__ import annotations

from repro.engine.options import EngineOptions, current_options
from repro.experiments.base import Scale
from repro.experiments.charts import grouped_bar_chart
from repro.metrics.stats import geometric_mean
from repro.schedulers.registry import PAPER_ORDER
from repro.sim.config import SystemConfig
from repro.sim.results import WorkloadResult, format_table
from repro.sim.runner import ExperimentRunner, Workload
from repro.workloads.mixes import workload_name

ALL_POLICIES = list(PAPER_ORDER)


def make_runner(
    num_cores: int,
    scale: Scale,
    engine: "EngineOptions | None" = None,
    **config_kwargs,
) -> ExperimentRunner:
    """Build a runner; engine options come from the argument or the
    ambient :func:`repro.engine.options.engine_options` context (which
    the CLI installs from its ``--jobs`` / ``--cache-dir`` flags)."""
    options = engine if engine is not None else current_options()
    config = SystemConfig(num_cores=num_cores, **config_kwargs)
    return ExperimentRunner(
        config,
        instruction_budget=scale.budget,
        seed=scale.seed,
        jobs=options.jobs,
        cache_dir=options.cache_dir,
        store=options.store,
        timeout=options.timeout,
        retries=options.retries,
    )


def case_study(
    runner: ExperimentRunner,
    names: Workload,
    policies: list[str] | None = None,
    policy_kwargs: dict[str, dict] | None = None,
) -> tuple[list[dict], str]:
    """One workload under several policies: the Figure 6/7/8/10/13 shape.

    Returns per-policy rows (slowdown per thread + the four metrics) and
    the formatted pair of tables the paper presents: memory slowdowns and
    unfairness (left), throughput metrics (right).
    """
    policies = policies or ALL_POLICIES
    results = runner.run_policies(names, policies, policy_kwargs)
    thread_names = [t.name for t in next(iter(results.values())).threads]

    rows = []
    for policy, result in results.items():
        row = {"policy": result.policy, **result.summary_row()}
        for thread in result.threads:
            row[f"slowdown:{thread.name}"] = thread.slowdown
        rows.append(row)

    slowdown_table = format_table(
        ["policy", "unfairness"] + thread_names,
        [
            [r.policy, r.unfairness] + [t.slowdown for t in r.threads]
            for r in results.values()
        ],
    )
    metric_table = format_table(
        ["policy", "weighted_speedup", "sum_of_ipcs", "hmean_speedup"],
        [
            [r.policy, r.weighted_speedup, r.sum_of_ipcs, r.hmean_speedup]
            for r in results.values()
        ],
    )
    chart = grouped_bar_chart(
        {
            result.policy: {t.name: t.slowdown for t in result.threads}
            for result in results.values()
        },
        unit="x",
    )
    text = (
        f"workload: {workload_name(thread_names)}\n\n"
        f"{slowdown_table}\n\n{metric_table}\n\n"
        f"memory slowdowns (paper-figure shape):\n{chart}"
    )
    return rows, text


def policy_sweep(
    runner: ExperimentRunner,
    workloads: list[Workload],
    policies: list[str] | None = None,
) -> tuple[list[dict], str]:
    """Many workloads x policies with GMEAN aggregation (Figures 9/11/12).

    The whole cross product runs as one engine batch
    (:meth:`ExperimentRunner.run_sweep`): alone baselines shared between
    workloads are simulated once and shared runs parallelize across the
    runner's worker pool.
    """
    policies = policies or ALL_POLICIES
    per_workload: dict[str, dict[str, WorkloadResult]] = runner.run_sweep(
        workloads, policies
    )

    rows = []
    unfairness_rows = []
    for label, results in per_workload.items():
        row = {"workload": label}
        for policy, result in results.items():
            row[f"unfairness:{policy}"] = result.unfairness
        rows.append(row)
        unfairness_rows.append(
            [label] + [results[p].unfairness for p in policies]
        )

    gmean_row = {"workload": "GMEAN"}
    metric_rows = []
    for policy in policies:
        results = [per_workload[label][policy] for label in per_workload]
        gmean_row[f"unfairness:{policy}"] = geometric_mean(
            [r.unfairness for r in results]
        )
        metric_rows.append(
            [
                results[0].policy,
                geometric_mean([r.unfairness for r in results]),
                geometric_mean([r.weighted_speedup for r in results]),
                geometric_mean([max(r.sum_of_ipcs, 1e-9) for r in results]),
                geometric_mean([r.hmean_speedup for r in results]),
            ]
        )
    rows.append(gmean_row)

    unfairness_table = format_table(
        ["workload"] + [p for p in policies],
        unfairness_rows
        + [["GMEAN"] + [gmean_row[f"unfairness:{p}"] for p in policies]],
    )
    metric_table = format_table(
        [
            "policy",
            "GMEAN-unfairness",
            "GMEAN-weighted-speedup",
            "GMEAN-sum-of-ipcs",
            "GMEAN-hmean-speedup",
        ],
        metric_rows,
    )
    text = f"{unfairness_table}\n\n{metric_table}"
    return rows, text
