"""Shared infrastructure for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Scale:
    """Experiment sizing knob.

    Attributes:
        budget: Base per-thread instruction budget (extended for
            non-intensive benchmarks, see ``ExperimentRunner.min_reads``).
        samples: Number of workloads to run in sweep experiments
            (Figures 9/11 sample the paper's 256/32 combination spaces).
        seed: Workload-generation seed.
    """

    budget: int = 20_000
    samples: int = 6
    seed: int = 0


#: Named scales.  ``tiny`` is for unit tests, ``small`` for interactive
#: iteration and pytest-benchmark, ``medium`` for overnight sweeps,
#: ``paper`` approaches the paper's methodology (still far below its
#: 100M-instruction SimPoints — see EXPERIMENTS.md).
SCALES: dict[str, Scale] = {
    "tiny": Scale(budget=4_000, samples=2),
    "small": Scale(budget=20_000, samples=6),
    "medium": Scale(budget=60_000, samples=16),
    "paper": Scale(budget=200_000, samples=32),
}


def resolve_scale(scale: "str | Scale") -> Scale:
    if isinstance(scale, Scale):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; available: {', '.join(SCALES)}"
        ) from None


@dataclass
class ExperimentResult:
    """Output of one experiment run.

    Attributes:
        experiment_id: e.g. ``fig6``.
        title: Human-readable description (what the paper reports).
        rows: Structured result rows (list of dicts) for programmatic
            consumption and regression tests.
        text: The formatted tables, printed by the CLI.
        paper_reference: The headline numbers the paper reports for this
            figure/table, for side-by-side comparison in EXPERIMENTS.md.
    """

    experiment_id: str
    title: str
    rows: list[dict]
    text: str
    paper_reference: str = ""
    extras: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"== {self.experiment_id}: {self.title} ==\n{self.text}"
