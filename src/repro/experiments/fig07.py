"""Figure 7, case study II: a mixed-behaviour 4-core workload.

mcf + leslie3d + h264ref + bzip2 (one from each category).  The paper's
headline: FCFS and FR-FCFS+Cap *increase* unfairness here (1.87/2.09 vs
FR-FCFS's 1.68) because the benchmarks' row-buffer localities are
similar; NFQ's idleness problem favours the bursty leslie3d/h264ref over
mcf; STFM achieves 1.28 with the best hmean speedup.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_scale
from repro.experiments.common import case_study, make_runner

WORKLOAD = ["mcf", "leslie3d", "h264ref", "bzip2"]


def run(scale="small") -> ExperimentResult:
    scale = resolve_scale(scale)
    runner = make_runner(4, scale)
    rows, text = case_study(runner, WORKLOAD)
    return ExperimentResult(
        experiment_id="fig7",
        title="Case study II: mixed-behaviour 4-core workload",
        rows=rows,
        text=text,
        paper_reference=(
            "Paper unfairness: FR-FCFS 1.68, FCFS 1.87, FR-FCFS+Cap 2.09, "
            "NFQ 1.77, STFM 1.28; STFM +4.8% weighted / +8% hmean over NFQ."
        ),
    )
