"""Figure 13: Windows desktop workload (Section 7.4).

Two memory-intensive background threads (xml-parser, matlab) with two
interactive foreground threads (iexplorer, instant-messenger).  Paper
unfairness: FR-FCFS 8.88, FCFS 7.42, FR-FCFS+Cap 7.51, NFQ 1.75, STFM
1.37 — NFQ still penalizes the foreground apps because their accesses
concentrate on two/three banks (access-balance problem).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_scale
from repro.experiments.common import case_study, make_runner
from repro.workloads.desktop import DESKTOP_WORKLOAD


def run(scale="small") -> ExperimentResult:
    scale = resolve_scale(scale)
    runner = make_runner(4, scale)
    rows, text = case_study(runner, list(DESKTOP_WORKLOAD))
    return ExperimentResult(
        experiment_id="fig13",
        title="Desktop 4-core workload (background vs foreground apps)",
        rows=rows,
        text=text,
        paper_reference=(
            "Paper unfairness: FR-FCFS 8.88, FCFS 7.42, FR-FCFS+Cap 7.51, "
            "NFQ 1.75, STFM 1.37; STFM +5.4% weighted / +10.7% hmean."
        ),
    )
