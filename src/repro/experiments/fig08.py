"""Figure 8, case study III: a non-memory-intensive 4-core workload.

libquantum + omnetpp + hmmer + h264ref (one intensive, three not).  The
paper: FR-FCFS starves the non-intensive threads behind libquantum's
row hits (unfairness 7.16); NFQ serializes omnetpp's and hmmer's bank
parallelism (3.47x omnetpp); STFM reaches 1.21 with the best weighted
(+2.7%) and hmean (+11.3%) speedups.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_scale
from repro.experiments.common import case_study, make_runner

WORKLOAD = ["libquantum", "omnetpp", "hmmer", "h264ref"]


def run(scale="small") -> ExperimentResult:
    scale = resolve_scale(scale)
    runner = make_runner(4, scale)
    rows, text = case_study(runner, WORKLOAD)
    return ExperimentResult(
        experiment_id="fig8",
        title="Case study III: non-memory-intensive 4-core workload",
        rows=rows,
        text=text,
        paper_reference=(
            "Paper unfairness: FR-FCFS 7.16, FCFS 1.49, FR-FCFS+Cap 1.52, "
            "NFQ 1.94, STFM 1.21."
        ),
    )
