"""Figure 14: thread weights — system-software support (Section 7.5).

Workload: libquantum, cactusADM, astar, omnetpp on 4 cores, with weights
(1, 16, 1, 1) and (1, 4, 8, 1).  NFQ expresses weights as bandwidth
shares; STFM scales slowdowns (``S' = 1 + (S-1)W``).  The paper: both
prioritize the heavy thread, but only STFM keeps *equal-weight* threads
equally slowed (equal-priority unfairness 1.29/1.20 vs NFQ's 2.77/2.99).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_scale
from repro.experiments.common import make_runner
from repro.metrics.fairness import unfairness_index
from repro.sim.results import format_table

WORKLOAD = ["libquantum", "cactusADM", "astar", "omnetpp"]
WEIGHT_SETS = [(1.0, 16.0, 1.0, 1.0), (1.0, 4.0, 8.0, 1.0)]


def _equal_priority_unfairness(slowdowns, weights) -> float:
    """Unfairness among the largest group of equal-weight threads."""
    groups: dict[float, list[float]] = {}
    for slowdown, weight in zip(slowdowns, weights):
        groups.setdefault(weight, []).append(slowdown)
    largest = max(groups.values(), key=len)
    return unfairness_index(largest)


def run(scale="small") -> ExperimentResult:
    scale = resolve_scale(scale)
    runner = make_runner(4, scale)
    rows = []
    sections = []
    for weights in WEIGHT_SETS:
        schemes = {
            "FR-FCFS": runner.run_workload(WORKLOAD, "fr-fcfs"),
            "NFQ-shares": runner.run_workload(
                WORKLOAD, "nfq", {"shares": list(weights)}
            ),
            "STFM-weights": runner.run_workload(
                WORKLOAD, "stfm", {"weights": list(weights)}
            ),
        }
        table_rows = []
        for scheme, result in schemes.items():
            slowdowns = result.slowdowns
            equal_unf = _equal_priority_unfairness(slowdowns, weights)
            rows.append(
                {
                    "weights": weights,
                    "scheme": scheme,
                    "equal_priority_unfairness": equal_unf,
                    **{
                        f"slowdown:{t.name}": t.slowdown
                        for t in result.threads
                    },
                }
            )
            table_rows.append([scheme] + slowdowns + [equal_unf])
        label = "-".join(str(int(w)) for w in weights)
        table = format_table(
            ["scheme"] + WORKLOAD + ["equal-pri-unf"], table_rows
        )
        sections.append(f"weights {label}:\n{table}")
    return ExperimentResult(
        experiment_id="fig14",
        title="Thread weights: NFQ shares vs STFM weighted slowdowns",
        rows=rows,
        text="\n\n".join(sections),
        paper_reference=(
            "Paper equal-priority unfairness: weights 1-16-1-1 NFQ 2.77 vs "
            "STFM 1.29; weights 1-4-8-1 NFQ 2.99 vs STFM 1.20; both "
            "prioritize the heavy thread (STFM cactusADM 1.2x)."
        ),
    )
