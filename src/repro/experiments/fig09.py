"""Figure 9: 4-core sweep — sample workloads plus the GMEAN aggregate.

The paper averages over all 256 category combinations; we run the ten
sample workloads shown in the figure plus a stratified sample of the
combination space sized by the scale (full enumeration available via
``repro.workloads.mixes.category_pattern_workloads(4)``).

Paper GMEAN unfairness: FR-FCFS 5.31, FCFS 1.80, FR-FCFS+Cap 1.65, NFQ
1.58, STFM 1.24; STFM beats NFQ by 5.8% weighted / 10.8% hmean speedup.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_scale
from repro.experiments.common import make_runner, policy_sweep
from repro.workloads.mixes import category_pattern_workloads, sample_workloads_4core


def run(scale="small") -> ExperimentResult:
    scale = resolve_scale(scale)
    runner = make_runner(4, scale)
    workloads = sample_workloads_4core(seed=scale.seed, count=min(scale.samples, 10))
    if scale.samples > 10:
        workloads += category_pattern_workloads(
            4, scale.samples - 10, seed=scale.seed + 7
        )
    rows, text = policy_sweep(runner, workloads)
    return ExperimentResult(
        experiment_id="fig9",
        title="4-core sweep: unfairness and throughput across workloads",
        rows=rows,
        text=text,
        paper_reference=(
            "Paper GMEAN unfairness over 256 workloads: FR-FCFS 5.31, FCFS "
            "1.80, FR-FCFS+Cap 1.65, NFQ 1.58, STFM 1.24."
        ),
    )
