"""Figure 3 (qualitative): NFQ's idleness problem, reproduced.

The paper's Figure 3 is a thought experiment: one thread issues memory
requests continuously while three others are bursty with idle periods.
Under NFQ, the bursty threads return from idleness with small virtual
finish times and capture the DRAM, starving the continuous thread; STFM
recognizes that nobody has been slowed down and treats them equally.

We reproduce it with four synthetic threads built from an identical base
benchmark, differing only in burstiness — so any slowdown asymmetry is
attributable to the scheduler, not the workloads.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_scale
from repro.experiments.common import make_runner
from repro.sim.results import format_table
from repro.workloads.spec2006 import BenchmarkSpec


def _continuous_spec() -> BenchmarkSpec:
    """Thread 1 of Figure 3: continuously issues memory requests."""
    return BenchmarkSpec(
        name="continuous",
        itype="SYN",
        mcpi=5.0,
        mpki=40.0,
        rb_hit_rate=0.4,
        category=3,
        burstiness=0.0,
        burst_len=6,
        dependence=0.0,
        mlp=8,
    )


def _bursty_spec(name: str) -> BenchmarkSpec:
    """Threads 2-4: bursts separated by idle periods, phase-staggered.

    Bursts are kept shallow (they drain without self-queueing) so the
    measured slowdown reflects cross-thread scheduling, not a thread
    waiting on its own backlog.
    """
    return BenchmarkSpec(
        name=name,
        itype="SYN",
        mcpi=2.0,
        mpki=12.0,
        rb_hit_rate=0.4,
        category=0,
        burstiness=0.95,
        burst_len=10,
        dependence=0.0,
        mlp=6,
        periodic_bursts=True,
    )


def run(scale="small") -> ExperimentResult:
    scale = resolve_scale(scale)
    runner = make_runner(4, scale)
    threads = [
        _continuous_spec(),
        _bursty_spec("bursty-1"),
        _bursty_spec("bursty-2"),
        _bursty_spec("bursty-3"),
    ]
    rows = []
    table_rows = []
    for policy in ("fr-fcfs", "nfq", "stfm"):
        result = runner.run_workload(threads, policy=policy)
        slowdowns = {t.name: t.slowdown for t in result.threads}
        bursty = [s for n, s in slowdowns.items() if n.startswith("bursty")]
        rows.append(
            {
                "policy": result.policy,
                "continuous_slowdown": slowdowns["continuous"],
                "mean_bursty_slowdown": sum(bursty) / len(bursty),
                "unfairness": result.unfairness,
            }
        )
        table_rows.append(
            [
                result.policy,
                slowdowns["continuous"],
                sum(bursty) / len(bursty),
                result.unfairness,
            ]
        )
    text = format_table(
        ["policy", "continuous_slowdown", "mean_bursty_slowdown", "unfairness"],
        table_rows,
    )
    return ExperimentResult(
        experiment_id="fig3",
        title="NFQ idleness problem: continuous vs bursty threads",
        rows=rows,
        text=text,
        paper_reference=(
            "Paper (qualitative): NFQ starves the continuous thread when "
            "bursty threads return from idleness; STFM treats them equally."
        ),
    )
