"""Figure 10: a non-memory-intensive 8-core workload.

mcf with seven non-intensive benchmarks (h264ref, bzip2, gromacs, gobmk,
dealII, wrf, namd).  The paper: even here FR-FCFS reaches unfairness
3.46; NFQ heavily penalizes the continuous mcf (idleness problem grows
with core count), reaching 2.93; STFM achieves 1.30 while improving
throughput.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_scale
from repro.experiments.common import case_study, make_runner

WORKLOAD = [
    "mcf",
    "h264ref",
    "bzip2",
    "gromacs",
    "gobmk",
    "dealII",
    "wrf",
    "namd",
]


def run(scale="small") -> ExperimentResult:
    scale = resolve_scale(scale)
    runner = make_runner(8, scale)
    rows, text = case_study(runner, WORKLOAD)
    return ExperimentResult(
        experiment_id="fig10",
        title="Non-memory-intensive 8-core workload",
        rows=rows,
        text=text,
        paper_reference=(
            "Paper unfairness: FR-FCFS 3.46, FCFS 3.93, FR-FCFS+Cap 4.14, "
            "NFQ 2.93, STFM 1.30."
        ),
    )
