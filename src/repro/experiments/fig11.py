"""Figure 11: 8-core sweep — sample workloads plus the GMEAN aggregate.

The paper averages over 32 diverse 8-benchmark combinations.  Paper
GMEAN unfairness: FR-FCFS 5.26, FR-FCFS+Cap 2.64, NFQ 2.53, STFM 1.40 —
the gap between STFM and the others widens relative to 4 cores.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_scale
from repro.experiments.common import make_runner, policy_sweep
from repro.workloads.mixes import category_pattern_workloads, sample_workloads_8core


def run(scale="small") -> ExperimentResult:
    scale = resolve_scale(scale)
    runner = make_runner(8, scale)
    workloads = sample_workloads_8core(seed=scale.seed, count=min(scale.samples, 10))
    if scale.samples > 10:
        workloads += category_pattern_workloads(
            8, scale.samples - 10, seed=scale.seed + 7
        )
    rows, text = policy_sweep(runner, workloads)
    return ExperimentResult(
        experiment_id="fig11",
        title="8-core sweep: unfairness and throughput across workloads",
        rows=rows,
        text=text,
        paper_reference=(
            "Paper GMEAN unfairness over 32 workloads: FR-FCFS 5.26, "
            "FR-FCFS+Cap 2.64, NFQ 2.53, STFM 1.40."
        ),
    )
