"""Ablations of design choices the paper (and our reproduction) makes.

These go beyond the paper's printed figures, probing the parameters its
text discusses qualitatively:

* ``ablate-gamma`` — the bank-parallelism scaling factor gamma.  The
  paper set gamma = 1/2 empirically (footnote 9: it "captures the
  average degree of bank parallelism accurately").
* ``ablate-interval`` — IntervalLength.  Section 6.3: fairness degrades
  below 2**18 because slowdown estimates become unreliable over short
  sampling windows.
* ``ablate-estimator`` — interference accounting basis.  DESIGN.md
  documents our deviation from the paper's literal "ready command"
  wording; this ablation quantifies it.
* ``ablate-cap`` — FR-FCFS+Cap's cap (the paper uses 4, "based on
  empirical evaluation").
* ``ablate-page-policy`` — open-page (baseline) vs closed-page DRAM.
* ``ablate-refresh`` — DRAM auto-refresh on/off (not modeled in the
  paper; included to show it does not change the conclusions).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_scale
from repro.experiments.common import make_runner
from repro.experiments.fig06 import WORKLOAD
from repro.sim.results import format_table


def _stfm_sweep(
    scale,
    label: str,
    values,
    kwargs_for,
    experiment_id: str,
    title: str,
    paper_reference: str,
    interval_length: int | None = None,
) -> ExperimentResult:
    runner = make_runner(4, scale)
    rows = []
    table_rows = []
    for value in values:
        result = runner.run_workload(WORKLOAD, "stfm", kwargs_for(value))
        rows.append(
            {
                label: value,
                "unfairness": result.unfairness,
                "weighted_speedup": result.weighted_speedup,
                "hmean_speedup": result.hmean_speedup,
            }
        )
        table_rows.append(
            [
                f"{label}={value}",
                result.unfairness,
                result.weighted_speedup,
                result.hmean_speedup,
            ]
        )
    text = format_table(
        ["config", "unfairness", "weighted_speedup", "hmean_speedup"],
        table_rows,
    )
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        rows=rows,
        text=text,
        paper_reference=paper_reference,
    )


def run_gamma(scale="small") -> ExperimentResult:
    scale = resolve_scale(scale)
    return _stfm_sweep(
        scale,
        "gamma",
        [0.25, 0.5, 1.0, 2.0],
        lambda g: {"gamma": g},
        "ablate-gamma",
        "STFM gamma (bank-parallelism scaling) sweep",
        "Paper footnote 9: gamma = 1/2 chosen empirically.",
    )


def run_interval(scale="small") -> ExperimentResult:
    scale = resolve_scale(scale)
    # Our runs are far shorter than the paper's, so the interesting
    # break-point scales down with them; sweep decades around it.
    return _stfm_sweep(
        scale,
        "interval",
        [1 << 12, 1 << 14, 1 << 16, 1 << 20, 1 << 24],
        lambda n: {"interval_length": n},
        "ablate-interval",
        "STFM IntervalLength (register reset period) sweep",
        "Paper Section 6.3: fairness degrades for IntervalLength < 2**18 "
        "(at 100M-instruction runs).",
    )


def run_estimator_basis(scale="small") -> ExperimentResult:
    scale = resolve_scale(scale)
    return _stfm_sweep(
        scale,
        "basis",
        ["waiting", "ready"],
        lambda b: {"interference_basis": b},
        "ablate-estimator",
        "Interference accounting basis: waiting vs literal ready",
        "DESIGN.md substitution note: the ready basis underestimates "
        "victims' delay at command granularity, weakening the fairness "
        "rule's trigger.",
    )


def run_cap(scale="small") -> ExperimentResult:
    scale = resolve_scale(scale)
    runner = make_runner(4, scale)
    rows = []
    table_rows = []
    for cap in (1, 2, 4, 8, 16):
        result = runner.run_workload(WORKLOAD, "fr-fcfs+cap", {"cap": cap})
        rows.append(
            {
                "cap": cap,
                "unfairness": result.unfairness,
                "weighted_speedup": result.weighted_speedup,
            }
        )
        table_rows.append([f"cap={cap}", result.unfairness, result.weighted_speedup])
    reference = runner.run_workload(WORKLOAD, "fr-fcfs")
    rows.append(
        {
            "cap": None,
            "unfairness": reference.unfairness,
            "weighted_speedup": reference.weighted_speedup,
        }
    )
    table_rows.append(
        ["FR-FCFS (no cap)", reference.unfairness, reference.weighted_speedup]
    )
    return ExperimentResult(
        experiment_id="ablate-cap",
        title="FR-FCFS+Cap column-bypass cap sweep",
        rows=rows,
        text=format_table(
            ["config", "unfairness", "weighted_speedup"], table_rows
        ),
        paper_reference="Paper Section 6.3: cap = 4 chosen empirically.",
    )


def run_page_policy(scale="small") -> ExperimentResult:
    scale = resolve_scale(scale)
    rows = []
    table_rows = []
    for page_policy in ("open", "closed"):
        runner = make_runner(4, scale, page_policy=page_policy)
        for policy in ("fr-fcfs", "stfm"):
            result = runner.run_workload(WORKLOAD, policy)
            rows.append(
                {
                    "page_policy": page_policy,
                    "scheduler": result.policy,
                    "unfairness": result.unfairness,
                    "weighted_speedup": result.weighted_speedup,
                }
            )
            table_rows.append(
                [
                    f"{page_policy}-page / {result.policy}",
                    result.unfairness,
                    result.weighted_speedup,
                ]
            )
    return ExperimentResult(
        experiment_id="ablate-page-policy",
        title="Open-page vs closed-page DRAM row management",
        rows=rows,
        text=format_table(
            ["config", "unfairness", "weighted_speedup"], table_rows
        ),
        paper_reference=(
            "Closed-page removes the row-hit bias FR-FCFS exploits "
            "(lower unfairness, lower throughput for locality-heavy mixes)."
        ),
    )


def run_refresh(scale="small") -> ExperimentResult:
    scale = resolve_scale(scale)
    rows = []
    table_rows = []
    for refresh in (False, True):
        runner = make_runner(4, scale, refresh_enabled=refresh)
        result = runner.run_workload(WORKLOAD, "stfm")
        rows.append(
            {
                "refresh": refresh,
                "unfairness": result.unfairness,
                "weighted_speedup": result.weighted_speedup,
            }
        )
        table_rows.append(
            [
                f"refresh={'on' if refresh else 'off'}",
                result.unfairness,
                result.weighted_speedup,
            ]
        )
    return ExperimentResult(
        experiment_id="ablate-refresh",
        title="DRAM auto-refresh on/off under STFM",
        rows=rows,
        text=format_table(
            ["config", "unfairness", "weighted_speedup"], table_rows
        ),
        paper_reference=(
            "Refresh costs ~1.6% of DRAM time (tRFC/tREFI) and should not "
            "change the fairness conclusions."
        ),
    )
