"""Figure 1: memory slowdowns under thread-unaware FR-FCFS scheduling.

The motivating figure: a 4-core workload (hmmer, libquantum, h264ref,
omnetpp) and an 8-core workload (mcf, hmmer, GemsFDTD, libquantum,
omnetpp, astar, sphinx3, dealII) run under the baseline FR-FCFS
scheduler.  The paper reports a 7.74x slowdown for omnetpp vs 1.04x for
libquantum on 4 cores, and 11.35x (dealII) vs 1.09x (libquantum) on 8
cores — the high-row-buffer-locality streaming thread is effectively
never slowed while the others starve.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_scale
from repro.experiments.common import make_runner
from repro.sim.results import format_table

WORKLOAD_4CORE = ["hmmer", "libquantum", "h264ref", "omnetpp"]
WORKLOAD_8CORE = [
    "mcf",
    "hmmer",
    "GemsFDTD",
    "libquantum",
    "omnetpp",
    "astar",
    "sphinx3",
    "dealII",
]


def run(scale="small") -> ExperimentResult:
    scale = resolve_scale(scale)
    rows = []
    sections = []
    for cores, workload in ((4, WORKLOAD_4CORE), (8, WORKLOAD_8CORE)):
        runner = make_runner(cores, scale)
        result = runner.run_workload(workload, policy="fr-fcfs")
        for thread in result.threads:
            rows.append(
                {
                    "cores": cores,
                    "benchmark": thread.name,
                    "memory_slowdown": thread.slowdown,
                }
            )
        table = format_table(
            ["benchmark", "memory_slowdown"],
            [[t.name, t.slowdown] for t in result.threads],
        )
        sections.append(f"{cores}-core system (FR-FCFS):\n{table}")
    return ExperimentResult(
        experiment_id="fig1",
        title="Memory slowdown under FR-FCFS on 4-core and 8-core CMPs",
        rows=rows,
        text="\n\n".join(sections),
        paper_reference=(
            "Paper: 4-core omnetpp 7.74x vs libquantum 1.04x; "
            "8-core dealII 11.35x vs libquantum 1.09x."
        ),
    )
