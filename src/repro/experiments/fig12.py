"""Figure 12: 16-core systems — the three hand-picked workloads.

high16 (the 16 most intensive benchmarks), high8+low8, and low16.  The
paper: NFQ becomes highly unfair at 16 cores (both the idleness and the
access-balance problems intensify), falling behind FCFS and
FR-FCFS+Cap; STFM improves average unfairness from 2.23 (FCFS) to 1.75
and throughput by 4.6% weighted / 15% hmean over NFQ.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_scale
from repro.experiments.common import make_runner, policy_sweep
from repro.workloads.mixes import sixteen_core_workloads


def run(scale="small") -> ExperimentResult:
    scale = resolve_scale(scale)
    runner = make_runner(16, scale)
    named = sixteen_core_workloads()
    rows, text = policy_sweep(runner, list(named.values()))
    # Attach the readable workload labels.
    labels = list(named.keys()) + ["GMEAN"]
    for row, label in zip(rows, labels):
        row["label"] = label
    return ExperimentResult(
        experiment_id="fig12",
        title="16-core workloads: high16 / high8+low8 / low16",
        rows=rows,
        text=text,
        paper_reference=(
            "Paper: STFM improves average unfairness to 1.75 (FCFS 2.23, "
            "NFQ worse); +4.6% weighted / +15% hmean speedup over NFQ."
        ),
    )
