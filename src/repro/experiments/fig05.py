"""Figure 5: 2-core systems — mcf paired with every other benchmark.

(a) memory slowdowns of mcf and its partner under FR-FCFS,
(b) the same under STFM,
(c) weighted speedup / sum-of-IPCs / hmean speedup of both schedulers.

The paper reports that STFM reduces average (geometric mean) unfairness
from 2.02 to 1.24 (76% of the excess over 1) with a maximum observed
unfairness of 1.74, while improving weighted speedup by 1% and hmean
speedup by 6.5%.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_scale
from repro.experiments.common import make_runner
from repro.metrics.stats import geometric_mean
from repro.sim.results import format_table
from repro.workloads.spec2006 import SPEC2006

#: Table 3 order, minus mcf itself.
PARTNERS = [name for name in SPEC2006 if name != "mcf"]


def run(scale="small", partners: list[str] | None = None) -> ExperimentResult:
    scale = resolve_scale(scale)
    runner = make_runner(2, scale)
    if partners is None:
        # The full 25-pair sweep is expensive; sample the spectrum at the
        # configured scale, always keeping the paper's highlighted pairs.
        highlighted = ["libquantum", "dealII", "GemsFDTD", "omnetpp", "hmmer"]
        remaining = [p for p in PARTNERS if p not in highlighted]
        step = max(1, len(remaining) // max(1, scale.samples))
        partners = highlighted + remaining[::step][: scale.samples]

    rows = []
    table_rows = []
    for partner in partners:
        workload = ["mcf", partner]
        frfcfs = runner.run_workload(workload, policy="fr-fcfs")
        stfm = runner.run_workload(workload, policy="stfm")
        row = {
            "partner": partner,
            "frfcfs_mcf": frfcfs.threads[0].slowdown,
            "frfcfs_partner": frfcfs.threads[1].slowdown,
            "frfcfs_unfairness": frfcfs.unfairness,
            "stfm_mcf": stfm.threads[0].slowdown,
            "stfm_partner": stfm.threads[1].slowdown,
            "stfm_unfairness": stfm.unfairness,
            "frfcfs_ws": frfcfs.weighted_speedup,
            "stfm_ws": stfm.weighted_speedup,
            "frfcfs_hmean": frfcfs.hmean_speedup,
            "stfm_hmean": stfm.hmean_speedup,
        }
        rows.append(row)
        table_rows.append(
            [
                partner,
                row["frfcfs_mcf"],
                row["frfcfs_partner"],
                row["frfcfs_unfairness"],
                row["stfm_mcf"],
                row["stfm_partner"],
                row["stfm_unfairness"],
            ]
        )

    gmean_unf_frfcfs = geometric_mean([r["frfcfs_unfairness"] for r in rows])
    gmean_unf_stfm = geometric_mean([r["stfm_unfairness"] for r in rows])
    max_unf_stfm = max(r["stfm_unfairness"] for r in rows)
    gmean_ws_gain = geometric_mean(
        [r["stfm_ws"] / r["frfcfs_ws"] for r in rows]
    )
    gmean_hm_gain = geometric_mean(
        [r["stfm_hmean"] / r["frfcfs_hmean"] for r in rows]
    )
    summary = {
        "partner": "GMEAN",
        "frfcfs_unfairness": gmean_unf_frfcfs,
        "stfm_unfairness": gmean_unf_stfm,
        "stfm_max_unfairness": max_unf_stfm,
        "ws_gain": gmean_ws_gain,
        "hmean_gain": gmean_hm_gain,
    }
    rows.append(summary)

    table = format_table(
        [
            "partner",
            "FRFCFS:mcf",
            "FRFCFS:other",
            "FRFCFS:unf",
            "STFM:mcf",
            "STFM:other",
            "STFM:unf",
        ],
        table_rows,
    )
    text = (
        f"{table}\n\n"
        f"GMEAN unfairness: FR-FCFS {gmean_unf_frfcfs:.2f} -> STFM "
        f"{gmean_unf_stfm:.2f} (max STFM {max_unf_stfm:.2f})\n"
        f"STFM/FR-FCFS weighted-speedup x{gmean_ws_gain:.3f}, "
        f"hmean-speedup x{gmean_hm_gain:.3f}"
    )
    return ExperimentResult(
        experiment_id="fig5",
        title="2-core: mcf vs each benchmark, FR-FCFS vs STFM",
        rows=rows,
        text=text,
        paper_reference=(
            "Paper: GMEAN unfairness 2.02 -> 1.24 (max 1.74); weighted "
            "speedup +1%, hmean speedup +6.5%."
        ),
    )
