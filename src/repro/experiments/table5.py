"""Table 5: sensitivity to DRAM bank count and row-buffer size.

8-core workloads under FR-FCFS and STFM with 4/8/16 banks and 1/2/4 KB
row buffers.  The paper: FR-FCFS unfairness *falls* with more banks
(fewer bank conflicts) and *rises* with bigger row buffers (more
column-over-row reordering); STFM's unfairness is essentially flat
(1.37-1.41) and its weighted-speedup advantage grows with bank count.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_scale
from repro.experiments.common import make_runner
from repro.metrics.stats import geometric_mean
from repro.sim.results import format_table
from repro.workloads.mixes import sample_workloads_8core


def _sweep_point(scale, workloads, **config_kwargs) -> dict:
    runner = make_runner(8, scale, **config_kwargs)
    unf = {"fr-fcfs": [], "stfm": []}
    ws = {"fr-fcfs": [], "stfm": []}
    for workload in workloads:
        for policy in ("fr-fcfs", "stfm"):
            result = runner.run_workload(workload, policy)
            unf[policy].append(result.unfairness)
            ws[policy].append(result.weighted_speedup)
    return {
        "frfcfs_unfairness": geometric_mean(unf["fr-fcfs"]),
        "frfcfs_ws": geometric_mean(ws["fr-fcfs"]),
        "stfm_unfairness": geometric_mean(unf["stfm"]),
        "stfm_ws": geometric_mean(ws["stfm"]),
    }


def run(scale="small") -> ExperimentResult:
    scale = resolve_scale(scale)
    workloads = sample_workloads_8core(
        seed=scale.seed, count=max(2, min(scale.samples, 6))
    )
    rows = []
    table_rows = []
    for banks in (4, 8, 16):
        point = _sweep_point(scale, workloads, num_banks=banks)
        rows.append({"axis": "banks", "value": banks, **point})
        table_rows.append(
            [
                f"{banks} banks",
                point["frfcfs_unfairness"],
                point["frfcfs_ws"],
                point["stfm_unfairness"],
                point["stfm_ws"],
            ]
        )
    for row_bytes in (1024, 2048, 4096):
        point = _sweep_point(scale, workloads, row_buffer_bytes=row_bytes)
        rows.append({"axis": "row_buffer", "value": row_bytes, **point})
        table_rows.append(
            [
                f"{row_bytes // 1024} KB row",
                point["frfcfs_unfairness"],
                point["frfcfs_ws"],
                point["stfm_unfairness"],
                point["stfm_ws"],
            ]
        )
    text = format_table(
        ["config", "FRFCFS unf", "FRFCFS ws", "STFM unf", "STFM ws"],
        table_rows,
    )
    return ExperimentResult(
        experiment_id="table5",
        title="Sensitivity to DRAM banks and row-buffer size (8-core)",
        rows=rows,
        text=text,
        paper_reference=(
            "Paper: FR-FCFS unfairness 5.47/5.26/5.01 for 4/8/16 banks and "
            "4.98/5.26/5.51 for 1/2/4 KB rows; STFM flat at 1.37-1.41."
        ),
    )
