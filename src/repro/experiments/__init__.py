"""Experiment harness: one module per figure/table of the evaluation.

Every experiment module exposes ``run(scale) -> ExperimentResult``; the
registry maps experiment ids (``fig1`` ... ``fig15``, ``table3``,
``table5``, ``fig3``) to those entry points.  Use the CLI::

    python -m repro.cli run fig6 --scale small

or the pytest-benchmark wrappers in ``benchmarks/`` to regenerate a
paper figure/table.  Scales control instruction budgets and sweep sample
counts (see :data:`repro.experiments.base.SCALES`).
"""

from repro.experiments.base import ExperimentResult, Scale, SCALES
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "SCALES",
    "Scale",
    "get_experiment",
    "run_experiment",
]
