"""Terminal bar charts for experiment output.

The paper's evaluation figures are bar charts (memory slowdown per
thread, unfairness per scheduler); these helpers render the same shapes
in a terminal so a reproduction run can be eyeballed against the paper
directly.
"""

from __future__ import annotations

from typing import Mapping, Sequence

_FULL = "█"
_PARTIAL = " ▏▎▍▌▋▊▉"


def _bar(value: float, scale: float, width: int) -> str:
    """Render one bar with eighth-block resolution."""
    if scale <= 0:
        return ""
    units = max(0.0, value / scale) * width
    full, fraction = divmod(units, 1.0)
    bar = _FULL * int(full)
    eighths = int(fraction * 8)
    if eighths:
        bar += _PARTIAL[eighths]
    return bar


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    title: str | None = None,
    unit: str = "",
) -> str:
    """A horizontal bar chart, one row per (label, value).

    Args:
        labels: Row labels (left column).
        values: Non-negative values, one per label.
        width: Character width of the largest bar.
        title: Optional heading line.
        unit: Suffix appended to the printed value (e.g. ``"x"``).
    """
    if len(labels) != len(values):
        raise ValueError("need one value per label")
    if not labels:
        raise ValueError("chart needs at least one row")
    if any(v < 0 for v in values):
        raise ValueError("bar charts need non-negative values")
    scale = max(values) or 1.0
    label_width = max(len(str(label)) for label in labels)
    lines = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar = _bar(value, scale, width)
        lines.append(
            f"{str(label):<{label_width}}  {bar} {value:.2f}{unit}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    width: int = 40,
    unit: str = "",
) -> str:
    """Several bar groups sharing one scale (the paper's figure shape:
    one group per scheduler, one bar per thread).

    Args:
        groups: ``{group label: {bar label: value}}``.
        width: Character width of the largest bar overall.
        unit: Value suffix.
    """
    if not groups:
        raise ValueError("chart needs at least one group")
    all_values = [v for bars in groups.values() for v in bars.values()]
    if not all_values:
        raise ValueError("chart needs at least one bar")
    if any(v < 0 for v in all_values):
        raise ValueError("bar charts need non-negative values")
    scale = max(all_values) or 1.0
    label_width = max(
        len(str(label)) for bars in groups.values() for label in bars
    )
    lines = []
    for group, bars in groups.items():
        lines.append(f"{group}:")
        for label, value in bars.items():
            bar = _bar(value, scale, width)
            lines.append(
                f"  {str(label):<{label_width}}  {bar} {value:.2f}{unit}"
            )
    return "\n".join(lines)
