"""Extension: head-to-head with PAR-BS, STFM's successor.

The paper's line of work continued with Parallelism-Aware Batch
Scheduling (ISCA 2008), which achieves fairness via request batching
rather than slowdown estimation.  This experiment runs PAR-BS alongside
the paper's five schedulers on the three 4-core case-study workloads —
showing that both fairness-aware designs dominate the thread-oblivious
baselines, with different mechanisms.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_scale
from repro.experiments.common import make_runner
from repro.experiments import fig06, fig07, fig08
from repro.metrics.stats import geometric_mean
from repro.sim.results import format_table

POLICIES = ["fr-fcfs", "fcfs", "fr-fcfs+cap", "nfq", "stfm", "par-bs"]

WORKLOADS = {
    "intensive": fig06.WORKLOAD,
    "mixed": fig07.WORKLOAD,
    "non-intensive": fig08.WORKLOAD,
}


def run(scale="small") -> ExperimentResult:
    scale = resolve_scale(scale)
    runner = make_runner(4, scale)
    rows = []
    per_policy_unfairness: dict[str, list[float]] = {p: [] for p in POLICIES}
    per_policy_ws: dict[str, list[float]] = {p: [] for p in POLICIES}
    table_rows = []
    for label, workload in WORKLOADS.items():
        for policy in POLICIES:
            result = runner.run_workload(workload, policy)
            per_policy_unfairness[policy].append(result.unfairness)
            per_policy_ws[policy].append(result.weighted_speedup)
            rows.append(
                {
                    "workload": label,
                    "policy": result.policy,
                    "unfairness": result.unfairness,
                    "weighted_speedup": result.weighted_speedup,
                    "hmean_speedup": result.hmean_speedup,
                }
            )
    for policy in POLICIES:
        unfairness = geometric_mean(per_policy_unfairness[policy])
        speedup = geometric_mean(per_policy_ws[policy])
        table_rows.append([policy, unfairness, speedup])
        rows.append(
            {
                "workload": "GMEAN",
                "policy": policy,
                "unfairness": unfairness,
                "weighted_speedup": speedup,
            }
        )
    text = format_table(
        ["policy", "GMEAN unfairness", "GMEAN weighted_speedup"], table_rows
    )
    return ExperimentResult(
        experiment_id="extension-parbs",
        title="STFM vs its successor PAR-BS (and the paper's baselines)",
        rows=rows,
        text=text,
        paper_reference=(
            "Extension beyond the paper: PAR-BS (ISCA 2008) achieves "
            "comparable fairness via batching; both dominate the "
            "thread-oblivious baselines."
        ),
    )
