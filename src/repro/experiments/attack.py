"""Memory performance attack (Moscibroda & Mutlu, USENIX Security'07).

The paper's second motivation (Section 1, reference [20]): a malicious
program can deny DRAM service to co-runners by exploiting a
thread-unaware scheduler — stream through memory with perfect row-buffer
locality and high intensity, and FR-FCFS will serve you first, always.

We synthesize such an attacker (a libquantum-on-steroids stream) and run
it against a regular victim under each scheduler.  A fair scheduler
bounds the damage: the victim's slowdown under attack stays close to its
slowdown next to a benign co-runner.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_scale
from repro.experiments.common import ALL_POLICIES, make_runner
from repro.sim.results import format_table
from repro.workloads.spec2006 import BenchmarkSpec

ATTACKER = BenchmarkSpec(
    name="attacker",
    itype="SYN",
    mcpi=9.0,
    mpki=80.0,
    rb_hit_rate=0.99,
    category=3,
    burstiness=0.0,
    burst_len=32,
    dependence=0.0,
    mlp=12,
    write_fraction=0.0,
    streaming=True,
)

#: A benign co-runner with the same intensity but ordinary locality,
#: used as the no-attack reference point.
BENIGN = BenchmarkSpec(
    name="benign",
    itype="SYN",
    mcpi=5.0,
    mpki=25.0,
    rb_hit_rate=0.45,
    category=3,
    burstiness=0.3,
    burst_len=6,
    dependence=0.1,
    mlp=4,
)

VICTIM = "omnetpp"


def run(scale="small") -> ExperimentResult:
    scale = resolve_scale(scale)
    runner = make_runner(2, scale)
    rows = []
    table_rows = []
    for policy in ALL_POLICIES:
        attacked = runner.run_workload([ATTACKER, VICTIM], policy)
        baseline = runner.run_workload([BENIGN, VICTIM], policy)
        victim_attacked = attacked.threads[1].slowdown
        victim_baseline = baseline.threads[1].slowdown
        amplification = victim_attacked / victim_baseline
        rows.append(
            {
                "policy": attacked.policy,
                "victim_slowdown_attacked": victim_attacked,
                "victim_slowdown_benign": victim_baseline,
                "attack_amplification": amplification,
                "attacker_slowdown": attacked.threads[0].slowdown,
            }
        )
        table_rows.append(
            [
                attacked.policy,
                victim_baseline,
                victim_attacked,
                amplification,
                attacked.threads[0].slowdown,
            ]
        )
    text = format_table(
        [
            "policy",
            "victim vs benign",
            "victim vs attacker",
            "amplification",
            "attacker slowdown",
        ],
        table_rows,
    )
    return ExperimentResult(
        experiment_id="attack",
        title="Memory performance attack: streaming attacker vs victim",
        rows=rows,
        text=text,
        paper_reference=(
            "Reference [20]: FR-FCFS lets a high-locality stream deny "
            "service; a stall-time fair scheduler bounds the amplification."
        ),
    )
