"""Command-line interface: regenerate the paper's figures and tables.

Usage::

    stfm-sim list
    stfm-sim run fig6 --scale small
    stfm-sim run fig3 --sanitize            # with the DRAM protocol sanitizer
    stfm-sim run all --scale tiny
    stfm-sim workload mcf libquantum GemsFDTD astar --policy stfm
    stfm-sim tournament --matrix small -j 4 --json frontier.json
    stfm-sim benchmarks          # show the Table 3 registry
    stfm-sim lint                # static simulator-invariant analysis
    stfm-sim serve               # run the HTTP simulation service
    stfm-sim submit fig3 --wait  # submit a job to a running service
    stfm-sim status <job-id>     # query a job (or service health)
    stfm-sim cache --prune       # inspect/prune the result store
    stfm-sim coordinator         # cluster: admission, leases, store proxy
    stfm-sim runner --coordinator http://host:port   # lease + execute
    stfm-sim cluster --runners 3 # local dev cluster (subprocesses)

(Equivalently: ``python -m repro.cli ...``.)
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
import time
from dataclasses import replace

from repro.engine import (
    EngineOptions,
    JobFailedError,
    default_cache_dir,
    engine_options,
    session_report,
)
from repro.experiments import EXPERIMENTS, SCALES, run_experiment
from repro.experiments.base import resolve_scale
from repro.schedulers.registry import available_policies
from repro.sim.config import SystemConfig
from repro.sim.results import format_table
from repro.sim.runner import ExperimentRunner
from repro.workloads.spec2006 import SPEC2006


def _cmd_list(_args) -> int:
    print("Available experiments (paper figure/table -> id):")
    for experiment_id in EXPERIMENTS:
        print(f"  {experiment_id}")
    print(f"\nScales: {', '.join(SCALES)}")
    return 0


def _enable_sanitizer() -> None:
    """Turn on the DRAM protocol sanitizer for this process tree.

    The environment toggle (rather than a config field) keeps sanitized
    results content-identical to unsanitized ones in the result store
    and is inherited by engine worker processes.
    """
    from repro.analysis.protocol import SANITIZE_ENV

    os.environ[SANITIZE_ENV] = "1"
    print("(DRAM protocol sanitizer enabled: a timing/state violation "
          "aborts the run)")


def _enable_faults(spec_parts: "list[str]") -> int:
    """Activate the deterministic fault-injection layer (``--inject``).

    Same environment-toggle pattern as the sanitizer: inherits into
    fork workers, never perturbs cache keys.  Returns an exit code
    (nonzero on a malformed spec).
    """
    from repro import faults

    spec = ",".join(spec_parts)
    try:
        plan = faults.install(spec)
    except faults.FaultSpecError as exc:
        print(f"--inject: {exc}", file=sys.stderr)
        return 2
    print(f"(fault injection enabled: {plan.describe()})")
    return 0


@contextlib.contextmanager
def _maybe_profile(path: "str | None"):
    """``--profile``: wrap the simulation in cProfile, dump to ``path``.

    Stats are written as text, sorted by cumulative time, so the next
    hot spot is discoverable without ad-hoc scripts.
    """
    if not path:
        yield
        return
    import cProfile
    import pstats

    profile = cProfile.Profile()
    profile.enable()
    try:
        yield
    finally:
        profile.disable()
        with open(path, "w") as handle:
            stats = pstats.Stats(profile, stream=handle)
            stats.sort_stats("cumulative").print_stats()
        print(f"(profile written to {path}, sorted by cumulative time)")


def _cmd_run(args) -> int:
    if args.sanitize:
        _enable_sanitizer()
    if args.inject:
        rc = _enable_faults(args.inject)
        if rc:
            return rc
    if args.experiment == "all":
        ids = list(EXPERIMENTS)
    elif args.experiment == "paper":
        ids = [i for i in EXPERIMENTS if not i.startswith("ablate")]
    else:
        ids = [args.experiment]
    scale = resolve_scale(args.scale)
    if args.seed is not None:
        scale = replace(scale, seed=args.seed)
    cache_dir = None if args.no_cache else (args.cache_dir or default_cache_dir())
    options = EngineOptions(jobs=args.jobs, cache_dir=cache_dir)
    results = []
    failures = []
    with _maybe_profile(args.profile), engine_options(options):
        for experiment_id in ids:
            started = time.time()
            engine_before = session_report().snapshot()
            try:
                result = run_experiment(experiment_id, scale=scale)
            except JobFailedError as exc:
                failures.append(experiment_id)
                print(
                    f"== {experiment_id}: FAILED ==\n{exc}\n", file=sys.stderr
                )
                continue
            elapsed = time.time() - started
            results.append(result)
            print(f"== {result.experiment_id}: {result.title} ==")
            print(result.text)
            if result.paper_reference:
                print(f"\n[{result.paper_reference}]")
            engine_delta = session_report().since(engine_before)
            print(f"(engine: {engine_delta.summary()})")
            print(f"({elapsed:.1f}s at scale {args.scale!r})\n")
    if args.json:
        from repro.experiments.io import save_results

        save_results(results, args.json)
        print(f"wrote {len(results)} result(s) to {args.json}")
    if failures:
        print(
            f"{len(failures)} experiment(s) failed: {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_workload(args) -> int:
    if args.sanitize:
        _enable_sanitizer()
    if args.inject:
        rc = _enable_faults(args.inject)
        if rc:
            return rc
    config = SystemConfig(num_cores=max(len(args.benchmarks), 2))
    runner = ExperimentRunner(config, instruction_budget=args.budget)
    policies = args.policy or available_policies()
    rows = []
    with _maybe_profile(args.profile):
        for policy in policies:
            result = runner.run_workload(args.benchmarks, policy)
            rows.append(
                [result.policy, result.unfairness, result.weighted_speedup,
                 result.hmean_speedup]
                + [t.slowdown for t in result.threads]
            )
    print(
        format_table(
            ["policy", "unfairness", "w-speedup", "hmean"] + args.benchmarks,
            rows,
        )
    )
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.report import generate_report
    from repro.experiments.io import load_results

    report = generate_report(load_results(args.results))
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report)
        print(f"wrote {args.output}")
    else:
        print(report)
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis.simlint import main as simlint_main

    argv = list(args.paths)
    if args.select:
        argv += ["--select", args.select]
    if args.ignore:
        argv += ["--ignore", args.ignore]
    if args.lint_config:
        argv += ["--config", args.lint_config]
    if args.list_rules:
        argv += ["--list-rules"]
    if args.format != "text":
        argv += ["--format", args.format]
    if args.no_cache:
        argv += ["--no-cache"]
    if args.cache_dir:
        argv += ["--cache-dir", args.cache_dir]
    if args.stats:
        argv += ["--stats"]
    return simlint_main(argv)


def _cmd_serve(args) -> int:
    from repro.service.server import ServiceConfig, serve

    if args.workers < 1:
        print("serve: need at least one worker", file=sys.stderr)
        return 2
    if args.inject:
        rc = _enable_faults(args.inject)
        if rc:
            return rc
    cache_dir = None if args.no_cache else (args.cache_dir or default_cache_dir())
    state_dir = args.state_dir or os.path.join(
        args.cache_dir or default_cache_dir(), "service"
    )
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        engine_jobs=args.engine_jobs,
        cache_dir=cache_dir,
        state_dir=state_dir,
        job_timeout=args.job_timeout,
    )
    return serve(config)


def _build_submit_spec(args) -> dict:
    if args.workload:
        spec: dict = {
            "kind": "workload",
            "benchmarks": args.workload,
            "policy": args.policy or "fr-fcfs",
        }
        if args.budget is not None:
            spec["budget"] = args.budget
        if args.num_cores is not None:
            spec["num_cores"] = args.num_cores
    elif args.experiment:
        spec = {
            "kind": "experiment",
            "experiment": args.experiment,
            "scale": args.scale,
        }
    else:
        raise SystemExit("submit: give an experiment id or --workload NAMES")
    if args.seed is not None:
        spec["seed"] = args.seed
    return spec


def _cmd_submit(args) -> int:
    import json as json_module

    from repro.service.client import BackpressureError, ServiceClient, ServiceError

    client = ServiceClient(args.server)
    spec = _build_submit_spec(args)
    try:
        view = client.submit(spec)
    except BackpressureError as exc:
        print(
            f"submit: queue full, retry in {exc.retry_after}s",
            file=sys.stderr,
        )
        return 1
    except (ServiceError, OSError) as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 1
    if view.get("deduplicated"):
        print(f"job {view['id']}: coalesced with an identical in-flight job")
    else:
        print(f"job {view['id']}: {view['status']}")
    if not args.wait:
        return 0
    view = client.wait(view["id"], timeout=args.timeout)
    print(json_module.dumps(view, indent=2, sort_keys=True))
    return 0 if view["status"] == "done" else 1


def _cmd_status(args) -> int:
    import json as json_module

    from repro.service.client import ServiceClient, ServiceError, parse_metrics

    client = ServiceClient(args.server)
    try:
        if args.job_id:
            print(json_module.dumps(client.job(args.job_id), indent=2,
                                    sort_keys=True))
            return 0
        health = client.health()
        metrics = parse_metrics(client.metrics())
        print(json_module.dumps(health, indent=2, sort_keys=True))
        for name in (
            "stfm_service_queue_depth",
            "stfm_service_inflight_jobs",
            "stfm_store_hits_total",
            "stfm_store_misses_total",
            "stfm_engine_jobs_simulated_total",
        ):
            if name in metrics:
                print(f"{name} {metrics[name]:g}")
        return 0
    except (ServiceError, OSError) as exc:
        print(f"status: {exc}", file=sys.stderr)
        return 1


def _cmd_cache(args) -> int:
    import json as json_module

    from repro.engine.store import ResultStore

    location = args.store or args.cache_dir or default_cache_dir()
    store = ResultStore(location)
    try:
        stats = store.stats()
        report = {
            "location": store.location(),
            "backend": store.backend.scheme,
            "entries": stats.entries,
            "total_bytes": stats.total_bytes,
        }
        if args.prune:
            removed = store.prune()
            report["pruned_entries"] = removed.entries
            report["pruned_bytes"] = removed.total_bytes
    finally:
        store.close()
    if args.json:
        print(json_module.dumps(report, indent=2, sort_keys=True))
        return 0
    print(
        f"{report['location']}: {report['entries']} "
        f"entr{'y' if report['entries'] == 1 else 'ies'}, "
        f"{report['total_bytes']} bytes"
    )
    if args.prune:
        print(f"pruned {report['pruned_entries']} entr"
              f"{'y' if report['pruned_entries'] == 1 else 'ies'} "
              f"({report['pruned_bytes']} bytes)")
    return 0


def _cmd_coordinator(args) -> int:
    from repro.cluster.coordinator import CoordinatorConfig, run_coordinator

    if args.inject:
        rc = _enable_faults(args.inject)
        if rc:
            return rc
    cache_dir = None if args.no_cache else (args.cache_dir or default_cache_dir())
    state_dir = args.state_dir or os.path.join(
        args.cache_dir or default_cache_dir(), "coordinator"
    )
    config = CoordinatorConfig(
        host=args.host,
        port=args.port,
        queue_limit=args.queue_limit,
        cache_dir=cache_dir,
        state_dir=state_dir,
        lease_ttl=args.lease_ttl,
    )
    return run_coordinator(config)


def _cmd_runner(args) -> int:
    from repro.cluster.runner import RunnerConfig, run_runner

    if args.inject:
        rc = _enable_faults(args.inject)
        if rc:
            return rc
    store = None if args.no_store else args.store
    config = RunnerConfig(
        coordinator=args.coordinator,
        runner_id=args.id,
        store=store,
        engine_jobs=args.engine_jobs,
        poll=args.poll,
        max_jobs=args.max_jobs,
        capacity=args.capacity,
    )
    return run_runner(config)


def _cmd_cluster(args) -> int:
    from repro.cluster.supervisor import LocalCluster, run_local_cluster

    cache_dir = None if args.no_cache else (args.cache_dir or default_cache_dir())
    state_dir = args.state_dir or os.path.join(
        args.cache_dir or default_cache_dir(), "coordinator"
    )
    cluster = LocalCluster(
        runners=args.runners,
        cache_dir=cache_dir,
        state_dir=state_dir,
        lease_ttl=args.lease_ttl,
        engine_jobs=args.engine_jobs,
        queue_limit=args.queue_limit,
        host=args.host,
        port=args.port,
        capacity=args.capacity,
    )
    return run_local_cluster(cluster)


def _cmd_chaos(args) -> int:
    from repro.cluster.chaos import ChaosConfig, run_chaos

    config = ChaosConfig(
        seed=args.seed,
        quick=args.quick,
        lease_ttl=args.lease_ttl,
        workdir=args.workdir,
        keep=args.keep,
    )
    return run_chaos(config)


def _cmd_bench(args) -> int:
    from repro.bench import BENCH_SEQUENCE, REGRESSION_THRESHOLD, run_bench

    output = args.output or f"BENCH_{BENCH_SEQUENCE}.json"
    threshold = (
        args.threshold if args.threshold is not None else REGRESSION_THRESHOLD
    )
    return run_bench(
        output=output,
        quick=args.quick,
        check=args.check,
        threshold=threshold,
    )


def _cmd_tournament(args) -> int:
    import json as json_module

    from repro.engine.store import ResultStore
    from repro.schedulers.registry import EXTENSION_ORDER, PAPER_ORDER
    from repro.tournament import TournamentSpec, build_matrix, run_tournament

    if args.sanitize:
        _enable_sanitizer()
    if args.inject:
        rc = _enable_faults(args.inject)
        if rc:
            return rc
    matrix_name = "quick" if args.quick else args.matrix
    budget = args.budget
    if args.quick and args.budget is None:
        budget = 4_000
    if budget is None:
        budget = 20_000
    policies = args.policies or (PAPER_ORDER + EXTENSION_ORDER)
    try:
        spec = TournamentSpec.create(
            policies=policies,
            workloads=build_matrix(
                matrix_name, num_cores=args.cores, seed=args.seed
            ),
            num_cores=args.cores,
            budget=budget,
            seed=args.seed,
        )
    except (ValueError, KeyError) as exc:
        print(f"tournament: {exc}", file=sys.stderr)
        return 2
    store = None
    cache_dir = None
    if args.store:
        store = ResultStore(args.store)
    elif not args.no_cache:
        cache_dir = args.cache_dir or default_cache_dir()
    options = EngineOptions(jobs=args.jobs, cache_dir=cache_dir, store=store)
    started = time.time()
    engine_before = session_report().snapshot()
    try:
        with _maybe_profile(args.profile), engine_options(options):
            result = run_tournament(spec)
    except JobFailedError as exc:
        print(f"tournament: {exc}", file=sys.stderr)
        return 1
    finally:
        if store is not None:
            store.close()
    elapsed = time.time() - started
    print(result.text)
    engine_delta = session_report().since(engine_before)
    print(f"\n(engine: {engine_delta.summary()})")
    print(f"(spec {spec.digest()}, {elapsed:.1f}s)")
    if args.json:
        with open(args.json, "w") as handle:
            json_module.dump(
                result.to_payload(), handle, indent=2, sort_keys=True
            )
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


def _cmd_benchmarks(_args) -> int:
    print(
        format_table(
            ["benchmark", "type", "MCPI", "MPKI", "RB-hit", "category"],
            [
                [s.name, s.itype, s.mcpi, s.mpki, s.rb_hit_rate, s.category]
                for s in SPEC2006.values()
            ],
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="stfm-sim",
        description="Reproduce 'Stall-Time Fair Memory Access Scheduling' "
        "(MICRO 2007) figures and tables.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(func=_cmd_list)

    run_parser = sub.add_parser(
        "run", help="run an experiment ('all' = everything, 'paper' = "
        "figures/tables only)"
    )
    run_parser.add_argument("experiment", help="experiment id, e.g. fig6")
    run_parser.add_argument(
        "--scale", default="small", choices=list(SCALES), help="sizing preset"
    )
    run_parser.add_argument(
        "--json", metavar="PATH", help="also write structured results as JSON"
    )
    run_parser.add_argument(
        "-j", "--jobs", type=int, default=1, metavar="N",
        help="simulation worker processes (default: 1 = serial)",
    )
    run_parser.add_argument(
        "--seed", type=int, default=None,
        help="override the scale's workload-generation seed",
    )
    run_parser.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="persistent result store (default: "
        "$STFM_SIM_CACHE_DIR or ~/.cache/stfm-sim)",
    )
    run_parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent result store for this run",
    )
    run_parser.add_argument(
        "--sanitize", action="store_true",
        help="validate every DRAM command against DDR2 timing "
        "(repro.analysis.protocol); violations abort the run",
    )
    run_parser.add_argument(
        "--inject", nargs="+", metavar="SITE=RATE", default=None,
        help="deterministic fault injection (repro.faults), e.g. "
        "--inject crash=0.2,corrupt=0.1 seed=7",
    )
    run_parser.add_argument(
        "--profile", metavar="PATH", default=None,
        help="profile the run with cProfile; write cumulative-sorted "
        "stats to PATH",
    )
    run_parser.set_defaults(func=_cmd_run)

    wl_parser = sub.add_parser("workload", help="run an ad-hoc workload")
    wl_parser.add_argument("benchmarks", nargs="+", help="benchmark names")
    wl_parser.add_argument(
        "--policy", action="append", help="scheduler(s); default: all five"
    )
    wl_parser.add_argument("--budget", type=int, default=20_000)
    wl_parser.add_argument(
        "--sanitize", action="store_true",
        help="validate every DRAM command against DDR2 timing",
    )
    wl_parser.add_argument(
        "--inject", nargs="+", metavar="SITE=RATE", default=None,
        help="deterministic fault injection (repro.faults)",
    )
    wl_parser.add_argument(
        "--profile", metavar="PATH", default=None,
        help="profile the run with cProfile; write cumulative-sorted "
        "stats to PATH",
    )
    wl_parser.set_defaults(func=_cmd_workload)

    sub.add_parser("benchmarks", help="show the Table 3 registry").set_defaults(
        func=_cmd_benchmarks
    )

    tournament_parser = sub.add_parser(
        "tournament", help="race every scheduler across a stratified "
        "workload matrix and chart the fairness-throughput frontier "
        "(see repro.tournament)"
    )
    tournament_parser.add_argument(
        "--policies", nargs="+", metavar="NAME", default=None,
        help="policies to enter (default: all registered, extensions "
        "included)",
    )
    tournament_parser.add_argument(
        "--matrix", default="default",
        choices=("quick", "small", "default", "full"),
        help="stratified workload-matrix size (default: 'default' = 8 "
        "workloads)",
    )
    tournament_parser.add_argument(
        "--budget", type=int, default=None, metavar="N",
        help="per-thread instruction budget (default 20000; 4000 with "
        "--quick)",
    )
    tournament_parser.add_argument(
        "--cores", type=int, default=4, metavar="N",
        help="cores per workload (default 4)",
    )
    tournament_parser.add_argument(
        "--seed", type=int, default=0,
        help="matrix-sampling and trace-generation seed",
    )
    tournament_parser.add_argument(
        "-j", "--jobs", type=int, default=1, metavar="N",
        help="simulation worker processes (default: 1 = serial; "
        "parallel results are bit-identical)",
    )
    tournament_parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: the 'quick' matrix at a tiny budget",
    )
    tournament_parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the frontier + per-cell metrics as JSON",
    )
    tournament_parser.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="persistent result store (default: $STFM_SIM_CACHE_DIR or "
        "~/.cache/stfm-sim)",
    )
    tournament_parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent result store for this run",
    )
    tournament_parser.add_argument(
        "--store", metavar="LOCATION", default=None,
        help="result-store backend overriding --cache-dir: a directory, "
        "'sqlite:/path.db', or 'http://coordinator:port' (run cells "
        "against a cluster's shared store)",
    )
    tournament_parser.add_argument(
        "--sanitize", action="store_true",
        help="validate every DRAM command against DDR2 timing",
    )
    tournament_parser.add_argument(
        "--inject", nargs="+", metavar="SITE=RATE", default=None,
        help="deterministic fault injection (repro.faults)",
    )
    tournament_parser.add_argument(
        "--profile", metavar="PATH", default=None,
        help="profile the run with cProfile; write cumulative-sorted "
        "stats to PATH",
    )
    tournament_parser.set_defaults(func=_cmd_tournament)

    bench_parser = sub.add_parser(
        "bench", help="run the pinned performance suite and write a "
        "BENCH_<n>.json trajectory snapshot (see repro.bench)"
    )
    bench_parser.add_argument(
        "--output", metavar="PATH", default=None,
        help="snapshot path (default: BENCH_<sequence>.json in the "
        "current directory)",
    )
    bench_parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: tiny scales, no 1M-budget / engine / "
        "service probes",
    )
    bench_parser.add_argument(
        "--check", action="store_true",
        help="exit 1 if the event kernel is slower than naive or a "
        "metric regressed past the threshold",
    )
    bench_parser.add_argument(
        "--threshold", type=float, default=None, metavar="RATIO",
        help="normalized-slowdown regression threshold (default 1.30)",
    )
    bench_parser.set_defaults(func=_cmd_bench)

    lint_parser = sub.add_parser(
        "lint", help="run simlint, the static simulator-invariant "
        "analysis (exit 1 on findings)"
    )
    lint_parser.add_argument(
        "paths", nargs="*", help="files/directories (default: src/repro)"
    )
    lint_parser.add_argument(
        "--select", metavar="CODES", help="run only these rule codes"
    )
    lint_parser.add_argument(
        "--ignore", metavar="CODES", help="additionally disable these codes"
    )
    lint_parser.add_argument(
        "--config", dest="lint_config", metavar="PATH",
        help="ini file with a [simlint] block (default: setup.cfg)",
    )
    lint_parser.add_argument(
        "--list-rules", action="store_true", help="describe rules and exit"
    )
    lint_parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default text)",
    )
    lint_parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the incremental lint cache",
    )
    lint_parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="incremental cache directory (default .simlint-cache)",
    )
    lint_parser.add_argument(
        "--stats", action="store_true",
        help="print parse/reuse statistics to stderr",
    )
    lint_parser.set_defaults(func=_cmd_lint)

    serve_parser = sub.add_parser(
        "serve", help="run the HTTP simulation service (see repro.service)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=8765, help="0 picks a free port"
    )
    serve_parser.add_argument(
        "--workers", type=int, default=2,
        help="concurrent jobs (worker threads)",
    )
    serve_parser.add_argument(
        "--queue-limit", type=int, default=32,
        help="admission queue capacity (429 beyond this)",
    )
    serve_parser.add_argument(
        "--engine-jobs", type=int, default=1, metavar="N",
        help="simulation worker processes per running job",
    )
    serve_parser.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="shared result store (default: $STFM_SIM_CACHE_DIR or "
        "~/.cache/stfm-sim)",
    )
    serve_parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the shared result store (no cross-client dedup)",
    )
    serve_parser.add_argument(
        "--state-dir", metavar="PATH", default=None,
        help="job-state directory (default: <cache-dir>/service)",
    )
    serve_parser.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="per-job watchdog deadline; a job past it is FAILED "
        "(default: no deadline)",
    )
    serve_parser.add_argument(
        "--inject", nargs="+", metavar="SITE=RATE", default=None,
        help="deterministic fault injection (repro.faults)",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    submit_parser = sub.add_parser(
        "submit", help="submit a job to a running service"
    )
    submit_parser.add_argument(
        "experiment", nargs="?", help="experiment id, e.g. fig3"
    )
    submit_parser.add_argument(
        "--workload", nargs="+", metavar="BENCH",
        help="submit an ad-hoc workload instead of an experiment",
    )
    submit_parser.add_argument(
        "--server", default="http://127.0.0.1:8765", metavar="URL"
    )
    submit_parser.add_argument(
        "--scale", default="small", choices=list(SCALES)
    )
    submit_parser.add_argument("--policy", default=None)
    submit_parser.add_argument("--budget", type=int, default=None)
    submit_parser.add_argument("--num-cores", type=int, default=None)
    submit_parser.add_argument("--seed", type=int, default=None)
    submit_parser.add_argument(
        "--wait", action="store_true",
        help="poll until the job finishes and print its result",
    )
    submit_parser.add_argument(
        "--timeout", type=float, default=600.0,
        help="--wait deadline in seconds",
    )
    submit_parser.set_defaults(func=_cmd_submit)

    status_parser = sub.add_parser(
        "status", help="query a job, or service health without an id"
    )
    status_parser.add_argument("job_id", nargs="?")
    status_parser.add_argument(
        "--server", default="http://127.0.0.1:8765", metavar="URL"
    )
    status_parser.set_defaults(func=_cmd_status)

    cache_parser = sub.add_parser(
        "cache", help="inspect or prune the engine result store "
        "(any backend: directory, sqlite file, http:// proxy)"
    )
    cache_parser.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="result store (default: $STFM_SIM_CACHE_DIR or "
        "~/.cache/stfm-sim)",
    )
    cache_parser.add_argument(
        "--store", metavar="LOCATION", default=None,
        help="backend location overriding --cache-dir: a directory, "
        "'sqlite:/path.db', or 'http://coordinator:port'",
    )
    cache_parser.add_argument(
        "--prune", action="store_true", help="delete every cached entry"
    )
    cache_parser.add_argument(
        "--json", action="store_true",
        help="machine-readable report (identical schema on every backend)",
    )
    cache_parser.set_defaults(func=_cmd_cache)

    coord_parser = sub.add_parser(
        "coordinator", help="run a cluster coordinator: admission, "
        "leases, and the store proxy (see repro.cluster)"
    )
    coord_parser.add_argument("--host", default="127.0.0.1")
    coord_parser.add_argument(
        "--port", type=int, default=8765, help="0 picks a free port"
    )
    coord_parser.add_argument(
        "--queue-limit", type=int, default=32,
        help="admission queue capacity (429 beyond this)",
    )
    coord_parser.add_argument(
        "--cache-dir", metavar="LOCATION", default=None,
        help="shared result store: a directory, 'sqlite:/path.db', or "
        "an http:// URL (default: $STFM_SIM_CACHE_DIR or "
        "~/.cache/stfm-sim)",
    )
    coord_parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the shared store (and the store proxy)",
    )
    coord_parser.add_argument(
        "--state-dir", metavar="PATH", default=None,
        help="job + lease state directory (default: "
        "<cache-dir>/coordinator)",
    )
    coord_parser.add_argument(
        "--lease-ttl", type=float, default=15.0, metavar="SECONDS",
        help="seconds a lease survives without a heartbeat",
    )
    coord_parser.add_argument(
        "--inject", nargs="+", metavar="SITE=RATE", default=None,
        help="deterministic fault injection (repro.faults)",
    )
    coord_parser.set_defaults(func=_cmd_coordinator)

    runner_parser = sub.add_parser(
        "runner", help="run a cluster runner: lease jobs from a "
        "coordinator and execute them"
    )
    runner_parser.add_argument(
        "--coordinator", default="http://127.0.0.1:8765", metavar="URL"
    )
    runner_parser.add_argument(
        "--id", default=None, metavar="NAME",
        help="runner id for leases and /metrics (default: "
        "<hostname>-<pid>)",
    )
    runner_parser.add_argument(
        "--store", default="proxy", metavar="LOCATION",
        help="result store: 'proxy' (coordinator's store over HTTP, "
        "the default), a directory, or 'sqlite:/path.db'",
    )
    runner_parser.add_argument(
        "--no-store", action="store_true",
        help="run without a result store (every job re-simulates)",
    )
    runner_parser.add_argument(
        "--engine-jobs", type=int, default=1, metavar="N",
        help="simulation worker processes per job",
    )
    runner_parser.add_argument(
        "--poll", type=float, default=0.5, metavar="SECONDS",
        help="idle sleep between empty lease requests",
    )
    runner_parser.add_argument(
        "--max-jobs", type=int, default=None, metavar="N",
        help="exit after completing N jobs (batch mode)",
    )
    runner_parser.add_argument(
        "--capacity", type=int, default=1, metavar="N",
        help="concurrent leases this runner will hold (declared to the "
        "coordinator, which weights routing and refuses over-grants)",
    )
    runner_parser.add_argument(
        "--inject", nargs="+", metavar="SITE=RATE", default=None,
        help="deterministic fault injection (repro.faults)",
    )
    runner_parser.set_defaults(func=_cmd_runner)

    cluster_parser = sub.add_parser(
        "cluster", help="run a local dev cluster: one coordinator + N "
        "runner subprocesses"
    )
    cluster_parser.add_argument(
        "--runners", type=int, default=2, metavar="N"
    )
    cluster_parser.add_argument("--host", default="127.0.0.1")
    cluster_parser.add_argument(
        "--port", type=int, default=8765, help="0 picks a free port"
    )
    cluster_parser.add_argument(
        "--queue-limit", type=int, default=32,
        help="admission queue capacity",
    )
    cluster_parser.add_argument(
        "--cache-dir", metavar="LOCATION", default=None,
        help="shared result store for the coordinator (runners mount "
        "it over the store proxy)",
    )
    cluster_parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the shared store",
    )
    cluster_parser.add_argument(
        "--state-dir", metavar="PATH", default=None,
        help="coordinator state directory",
    )
    cluster_parser.add_argument(
        "--lease-ttl", type=float, default=15.0, metavar="SECONDS",
        help="lease TTL for the coordinator",
    )
    cluster_parser.add_argument(
        "--engine-jobs", type=int, default=1, metavar="N",
        help="simulation worker processes per runner job",
    )
    cluster_parser.add_argument(
        "--capacity", type=int, default=1, metavar="N",
        help="concurrent leases per runner",
    )
    cluster_parser.set_defaults(func=_cmd_cluster)

    chaos_parser = sub.add_parser(
        "chaos", help="cluster chaos soak: seeded network faults + "
        "coordinator kill -9 mid-sweep, asserting bit-identical rows "
        "and exactly-once settlement"
    )
    chaos_parser.add_argument(
        "--seed", type=int, default=7,
        help="fault-schedule seed (default: 7)",
    )
    chaos_parser.add_argument(
        "--quick", action="store_true",
        help="skip the replay leg (CI smoke)",
    )
    chaos_parser.add_argument(
        "--lease-ttl", type=float, default=1.5, metavar="SECONDS",
        help="lease TTL for the chaos cluster",
    )
    chaos_parser.add_argument(
        "--workdir", metavar="PATH", default=None,
        help="run in this directory instead of a temp dir (kept)",
    )
    chaos_parser.add_argument(
        "--keep", action="store_true",
        help="keep the temp workdir for post-mortem",
    )
    chaos_parser.set_defaults(func=_cmd_chaos)

    report_parser = sub.add_parser(
        "report", help="generate the paper-vs-measured markdown report"
    )
    report_parser.add_argument("results", help="JSON file from 'run --json'")
    report_parser.add_argument(
        "-o", "--output", help="write markdown here (default: stdout)"
    )
    report_parser.set_defaults(func=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
