"""Command-line interface: regenerate the paper's figures and tables.

Usage::

    stfm-sim list
    stfm-sim run fig6 --scale small
    stfm-sim run fig3 --sanitize            # with the DRAM protocol sanitizer
    stfm-sim run all --scale tiny
    stfm-sim workload mcf libquantum GemsFDTD astar --policy stfm
    stfm-sim benchmarks          # show the Table 3 registry
    stfm-sim lint                # static simulator-invariant analysis

(Equivalently: ``python -m repro.cli ...``.)
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from dataclasses import replace

from repro.engine import (
    EngineOptions,
    JobFailedError,
    default_cache_dir,
    engine_options,
    session_report,
)
from repro.experiments import EXPERIMENTS, SCALES, run_experiment
from repro.experiments.base import resolve_scale
from repro.schedulers.registry import available_policies
from repro.sim.config import SystemConfig
from repro.sim.results import format_table
from repro.sim.runner import ExperimentRunner
from repro.workloads.spec2006 import SPEC2006


def _cmd_list(_args) -> int:
    print("Available experiments (paper figure/table -> id):")
    for experiment_id in EXPERIMENTS:
        print(f"  {experiment_id}")
    print(f"\nScales: {', '.join(SCALES)}")
    return 0


def _enable_sanitizer() -> None:
    """Turn on the DRAM protocol sanitizer for this process tree.

    The environment toggle (rather than a config field) keeps sanitized
    results content-identical to unsanitized ones in the result store
    and is inherited by engine worker processes.
    """
    from repro.analysis.protocol import SANITIZE_ENV

    os.environ[SANITIZE_ENV] = "1"
    print("(DRAM protocol sanitizer enabled: a timing/state violation "
          "aborts the run)")


def _cmd_run(args) -> int:
    if args.sanitize:
        _enable_sanitizer()
    if args.experiment == "all":
        ids = list(EXPERIMENTS)
    elif args.experiment == "paper":
        ids = [i for i in EXPERIMENTS if not i.startswith("ablate")]
    else:
        ids = [args.experiment]
    scale = resolve_scale(args.scale)
    if args.seed is not None:
        scale = replace(scale, seed=args.seed)
    cache_dir = None if args.no_cache else (args.cache_dir or default_cache_dir())
    options = EngineOptions(jobs=args.jobs, cache_dir=cache_dir)
    results = []
    failures = []
    with engine_options(options):
        for experiment_id in ids:
            started = time.time()
            engine_before = session_report().snapshot()
            try:
                result = run_experiment(experiment_id, scale=scale)
            except JobFailedError as exc:
                failures.append(experiment_id)
                print(
                    f"== {experiment_id}: FAILED ==\n{exc}\n", file=sys.stderr
                )
                continue
            elapsed = time.time() - started
            results.append(result)
            print(f"== {result.experiment_id}: {result.title} ==")
            print(result.text)
            if result.paper_reference:
                print(f"\n[{result.paper_reference}]")
            engine_delta = session_report().since(engine_before)
            print(f"(engine: {engine_delta.summary()})")
            print(f"({elapsed:.1f}s at scale {args.scale!r})\n")
    if args.json:
        from repro.experiments.io import save_results

        save_results(results, args.json)
        print(f"wrote {len(results)} result(s) to {args.json}")
    if failures:
        print(
            f"{len(failures)} experiment(s) failed: {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_workload(args) -> int:
    if args.sanitize:
        _enable_sanitizer()
    config = SystemConfig(num_cores=max(len(args.benchmarks), 2))
    runner = ExperimentRunner(config, instruction_budget=args.budget)
    policies = args.policy or available_policies()
    rows = []
    for policy in policies:
        result = runner.run_workload(args.benchmarks, policy)
        rows.append(
            [result.policy, result.unfairness, result.weighted_speedup,
             result.hmean_speedup]
            + [t.slowdown for t in result.threads]
        )
    print(
        format_table(
            ["policy", "unfairness", "w-speedup", "hmean"] + args.benchmarks,
            rows,
        )
    )
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.report import generate_report
    from repro.experiments.io import load_results

    report = generate_report(load_results(args.results))
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report)
        print(f"wrote {args.output}")
    else:
        print(report)
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis.simlint import main as simlint_main

    argv = list(args.paths)
    if args.select:
        argv += ["--select", args.select]
    if args.ignore:
        argv += ["--ignore", args.ignore]
    if args.lint_config:
        argv += ["--config", args.lint_config]
    if args.list_rules:
        argv += ["--list-rules"]
    return simlint_main(argv)


def _cmd_benchmarks(_args) -> int:
    print(
        format_table(
            ["benchmark", "type", "MCPI", "MPKI", "RB-hit", "category"],
            [
                [s.name, s.itype, s.mcpi, s.mpki, s.rb_hit_rate, s.category]
                for s in SPEC2006.values()
            ],
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="stfm-sim",
        description="Reproduce 'Stall-Time Fair Memory Access Scheduling' "
        "(MICRO 2007) figures and tables.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(func=_cmd_list)

    run_parser = sub.add_parser(
        "run", help="run an experiment ('all' = everything, 'paper' = "
        "figures/tables only)"
    )
    run_parser.add_argument("experiment", help="experiment id, e.g. fig6")
    run_parser.add_argument(
        "--scale", default="small", choices=list(SCALES), help="sizing preset"
    )
    run_parser.add_argument(
        "--json", metavar="PATH", help="also write structured results as JSON"
    )
    run_parser.add_argument(
        "-j", "--jobs", type=int, default=1, metavar="N",
        help="simulation worker processes (default: 1 = serial)",
    )
    run_parser.add_argument(
        "--seed", type=int, default=None,
        help="override the scale's workload-generation seed",
    )
    run_parser.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="persistent result store (default: "
        "$STFM_SIM_CACHE_DIR or ~/.cache/stfm-sim)",
    )
    run_parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent result store for this run",
    )
    run_parser.add_argument(
        "--sanitize", action="store_true",
        help="validate every DRAM command against DDR2 timing "
        "(repro.analysis.protocol); violations abort the run",
    )
    run_parser.set_defaults(func=_cmd_run)

    wl_parser = sub.add_parser("workload", help="run an ad-hoc workload")
    wl_parser.add_argument("benchmarks", nargs="+", help="benchmark names")
    wl_parser.add_argument(
        "--policy", action="append", help="scheduler(s); default: all five"
    )
    wl_parser.add_argument("--budget", type=int, default=20_000)
    wl_parser.add_argument(
        "--sanitize", action="store_true",
        help="validate every DRAM command against DDR2 timing",
    )
    wl_parser.set_defaults(func=_cmd_workload)

    sub.add_parser("benchmarks", help="show the Table 3 registry").set_defaults(
        func=_cmd_benchmarks
    )

    lint_parser = sub.add_parser(
        "lint", help="run simlint, the static simulator-invariant "
        "analysis (exit 1 on findings)"
    )
    lint_parser.add_argument(
        "paths", nargs="*", help="files/directories (default: src/repro)"
    )
    lint_parser.add_argument(
        "--select", metavar="CODES", help="run only these rule codes"
    )
    lint_parser.add_argument(
        "--ignore", metavar="CODES", help="additionally disable these codes"
    )
    lint_parser.add_argument(
        "--config", dest="lint_config", metavar="PATH",
        help="ini file with a [simlint] block (default: setup.cfg)",
    )
    lint_parser.add_argument(
        "--list-rules", action="store_true", help="describe rules and exit"
    )
    lint_parser.set_defaults(func=_cmd_lint)

    report_parser = sub.add_parser(
        "report", help="generate the paper-vs-measured markdown report"
    )
    report_parser.add_argument("results", help="JSON file from 'run --json'")
    report_parser.add_argument(
        "-o", "--output", help="write markdown here (default: stdout)"
    )
    report_parser.set_defaults(func=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
