"""Miss Status Holding Registers: bounding outstanding L2 misses.

The paper's cores have 64 MSHRs (Table 2); once all are occupied the core
cannot issue further misses, which caps a thread's achievable
memory-level parallelism.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.controller.request import MemoryRequest


class MshrFile:
    """Tracks outstanding read misses against a fixed capacity."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("need at least one MSHR")
        self.capacity = capacity
        self._outstanding: deque["MemoryRequest"] = deque()

    def __len__(self) -> int:
        return len(self._outstanding)

    def release_completed(self, now: int) -> None:
        """Free MSHRs whose requests have returned data by ``now``.

        Requests complete near-FIFO per thread; the occasional
        out-of-order completion is reclaimed by the full sweep that runs
        when the file looks full.
        """
        outstanding = self._outstanding
        while outstanding:
            head = outstanding[0]
            if head.completed_at is not None and head.completed_at <= now:
                outstanding.popleft()
            else:
                break
        if len(outstanding) >= self.capacity:
            self._outstanding = deque(
                request
                for request in outstanding
                if request.completed_at is None or request.completed_at > now
            )

    def try_allocate(self, request: "MemoryRequest", now: int) -> bool:
        """Claim an MSHR for a new miss; False when all are busy."""
        self.release_completed(now)
        if len(self._outstanding) >= self.capacity:
            return False
        self._outstanding.append(request)
        return True
