"""Trace (de)serialization.

A simple line-oriented text format so traces can be stored, diffed and
shared — e.g. a filtered L2-miss trace captured once and replayed across
scheduler configurations::

    # repro-trace v1 loop=1
    # compute  kind  address  dependent
    12 R 0x00012340 0
    0  W 0x00056780 0
    3  R 0x00012380 1

Lines starting with ``#`` are comments; fields are whitespace-separated.

Paths ending in ``.gz`` are transparently gzip-compressed on write and
decompressed on read — long captured traces are highly repetitive and
compress well.
"""

from __future__ import annotations

import gzip
from pathlib import Path

from repro.cpu.trace import Trace, TraceRecord

_HEADER_PREFIX = "# repro-trace v1"


def _write_text(path: Path, text: str) -> None:
    if path.suffix == ".gz":
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write(text)
    else:
        path.write_text(text)


def _read_text(path: Path) -> str:
    if path.suffix == ".gz":
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            return handle.read()
    return path.read_text()


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write a trace to ``path`` (gzip-compressed for ``*.gz``)."""
    path = Path(path)
    lines = [f"{_HEADER_PREFIX} loop={int(trace.loop)}"]
    lines.append("# compute kind address dependent")
    for record in trace:
        kind = "W" if record.is_write else "R"
        lines.append(
            f"{record.compute} {kind} 0x{record.address:x} "
            f"{int(record.dependent)}"
        )
    _write_text(path, "\n".join(lines) + "\n")


def load_trace(path: str | Path) -> Trace:
    """Read a trace written by :func:`save_trace`.

    Raises:
        ValueError: on a missing/incompatible header or malformed line.
    """
    path = Path(path)
    lines = _read_text(path).splitlines()
    if not lines or not lines[0].startswith(_HEADER_PREFIX):
        raise ValueError(f"{path} is not a repro-trace v1 file")
    loop = "loop=1" in lines[0]
    records: list[TraceRecord] = []
    for number, line in enumerate(lines[1:], start=2):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        if len(fields) != 4:
            raise ValueError(f"{path}:{number}: expected 4 fields, got {line!r}")
        compute, kind, address, dependent = fields
        if kind not in ("R", "W"):
            raise ValueError(f"{path}:{number}: kind must be R or W")
        records.append(
            TraceRecord(
                compute=int(compute),
                is_write=kind == "W",
                address=int(address, 16),
                dependent=bool(int(dependent)),
            )
        )
    return Trace(records, loop=loop)
