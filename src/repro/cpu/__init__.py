"""Processor-side models: traces, cores, MSHRs and caches.

The core model reproduces the paper's performance-model essentials
(Table 2): a 128-entry instruction window, 3-wide commit with at most one
memory operation per cycle, 64 MSHRs, and — crucially — the definition of
memory stall time used for ``Tshared``: cycles in which the core cannot
commit instructions because the oldest instruction is an L2 miss.
"""

from repro.cpu.cache import Cache, filter_trace
from repro.cpu.core import Core, CoreSnapshot
from repro.cpu.mshr import MshrFile
from repro.cpu.trace import Trace, TraceRecord

__all__ = [
    "Cache",
    "Core",
    "CoreSnapshot",
    "MshrFile",
    "Trace",
    "TraceRecord",
    "filter_trace",
]
