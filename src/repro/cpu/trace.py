"""Instruction traces driving the core model.

A trace is a sequence of records ``(compute, is_write, address,
dependent)``: ``compute`` non-memory instructions followed by one memory
operation (an L2 miss or a writeback) to ``address``.  ``dependent``
marks a load that consumes the value of the previous load (pointer
chasing) and therefore cannot issue until that load returns — this is
how the workload models limit memory-level parallelism.

Traces loop by default: per the standard multiprogrammed-workload
methodology, a thread that finishes its instruction budget keeps
re-executing to continue applying memory pressure until every thread in
the workload reaches its budget.
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple


class TraceRecord(NamedTuple):
    """One trace entry: a compute block followed by a memory operation."""

    compute: int
    is_write: bool
    address: int
    dependent: bool = False


class Trace:
    """An in-memory, loopable instruction trace."""

    def __init__(self, records: Iterable[TraceRecord], loop: bool = True) -> None:
        self.records = [
            record if isinstance(record, TraceRecord) else TraceRecord(*record)
            for record in records
        ]
        self.loop = loop
        for record in self.records:
            if record.compute < 0:
                raise ValueError("compute block cannot be negative")

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    @property
    def instructions_per_pass(self) -> int:
        """Instructions in one pass (memory ops count as one each)."""
        return sum(record.compute + 1 for record in self.records)

    @property
    def memory_operations(self) -> int:
        return len(self.records)

    @property
    def read_count(self) -> int:
        return sum(1 for record in self.records if not record.is_write)

    def mpki(self) -> float:
        """Memory operations per kilo-instruction of this trace."""
        instructions = self.instructions_per_pass
        if not instructions:
            return 0.0
        return 1000.0 * self.memory_operations / instructions


class TraceCursor:
    """Streaming consumption of a trace with compute-block splitting.

    The core fetches instructions a few at a time; the cursor tracks how
    much of the current record's compute block has been fetched and
    whether its memory operation is still pending, wrapping around when
    the trace loops.
    """

    __slots__ = ("trace", "_index", "_compute_left", "_mem_pending", "passes")

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self._index = 0
        self.passes = 0
        if trace.records:
            first = trace.records[0]
            self._compute_left = first.compute
            self._mem_pending = True
        else:
            self._compute_left = 0
            self._mem_pending = False

    @property
    def exhausted(self) -> bool:
        """True when a non-looping trace has been fully consumed."""
        if not self.trace.records:
            return True
        return (
            not self.trace.loop
            and self._index >= len(self.trace.records)
        )

    def peek_compute(self) -> int:
        """Compute instructions available before the next memory op."""
        if self.exhausted:
            return 0
        return self._compute_left

    def take_compute(self, count: int) -> int:
        """Consume up to ``count`` compute instructions; returns taken."""
        taken = min(count, self._compute_left)
        self._compute_left -= taken
        return taken

    def peek_memory(self) -> TraceRecord | None:
        """The pending memory operation, if the compute block is drained."""
        if self.exhausted or self._compute_left > 0 or not self._mem_pending:
            return None
        return self.trace.records[self._index]

    def take_memory(self) -> None:
        """Consume the pending memory operation and advance the cursor."""
        if self._compute_left > 0 or not self._mem_pending:
            raise RuntimeError("no memory operation pending")
        self._mem_pending = False
        self._advance()

    def _advance(self) -> None:
        self._index += 1
        if self._index >= len(self.trace.records):
            if self.trace.loop:
                self._index = 0
                self.passes += 1
            else:
                return
        record = self.trace.records[self._index]
        self._compute_left = record.compute
        self._mem_pending = True
