"""The analytical out-of-order core model.

Models the performance-relevant behaviour of the paper's cores (Table 2:
4 GHz, 128-entry instruction window, 3-wide, at most one memory operation
per cycle, 64 MSHRs):

* **Fetch runs ahead of commit** by up to the window size, issuing L2
  misses to the memory controller as soon as they enter the window — this
  is what creates memory-level parallelism (multiple misses outstanding).
* **Commit** retires up to 3 instructions per cycle; a load at the head
  of the window blocks commit until its data returns.  Cycles in which
  nothing commits because the oldest instruction is a pending L2 miss are
  counted as *memory stall time* — exactly the paper's ``Tshared``
  definition (Section 3.2.1).
* **Writebacks** retire immediately into the controller's write buffer;
  a full write buffer back-pressures fetch.
* **Dependent loads** (pointer chasing) cannot issue until the previous
  load returns, limiting MLP per the workload model.

The core advances in quanta (one DRAM cycle, 10 CPU cycles) but resolves
events to exact CPU cycles inside each quantum, so stall accounting is
cycle-precise.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.cpu.mshr import MshrFile
from repro.cpu.trace import Trace, TraceCursor

if TYPE_CHECKING:
    from repro.controller.request import MemoryRequest

#: Window-entry tags.
_COMPUTE = 0
_MEMORY = 1

#: Submit callback: (thread_id, address, is_write, now) -> request or None
#: (None when the controller's buffer is full; the core retries).
SubmitFn = Callable[[int, int, bool, int], "MemoryRequest | None"]


@dataclass(frozen=True)
class CoreSnapshot:
    """Statistics frozen at the moment a core reaches its budget."""

    instructions: int
    cycles: int
    memory_stall_cycles: int
    reads_issued: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def mcpi(self) -> float:
        """Memory Cycles Per Instruction (the paper's MCPI metric)."""
        if not self.instructions:
            return 0.0
        return self.memory_stall_cycles / self.instructions

    @property
    def mpki(self) -> float:
        if not self.instructions:
            return 0.0
        return 1000.0 * self.reads_issued / self.instructions


class Core:
    """One processing core executing a trace."""

    def __init__(
        self,
        core_id: int,
        trace: Trace,
        submit: SubmitFn,
        instruction_budget: int,
        window_size: int = 128,
        commit_width: int = 3,
        mshr_count: int = 64,
        max_outstanding: int | None = None,
    ) -> None:
        self.core_id = core_id
        self.cursor = TraceCursor(trace)
        self.submit = submit
        self.instruction_budget = instruction_budget
        self.window_size = window_size
        self.commit_width = commit_width
        self.mshrs = MshrFile(mshr_count)
        # The application's sustainable memory-level parallelism; the
        # hardware MSHR count caps it further.  See BenchmarkSpec.mlp.
        if max_outstanding is None:
            max_outstanding = mshr_count
        self.max_outstanding = min(max_outstanding, mshr_count)

        # Window entries: [tag, payload]; payload is a remaining-count for
        # compute blocks or the MemoryRequest for loads.
        self._window: deque[list] = deque()
        self._window_instrs = 0
        self._last_read: "MemoryRequest | None" = None

        # Cumulative counters (keep growing after the budget snapshot so
        # the thread continues to exert realistic memory pressure).
        self.committed_instructions = 0
        self.memory_stall_cycles = 0
        self.write_stall_cycles = 0
        self.idle_cycles = 0
        self.reads_issued = 0
        self.writes_issued = 0

        self.snapshot: CoreSnapshot | None = None

    # -- fetch -----------------------------------------------------------
    def _fetch(self, now: int) -> None:
        cursor = self.cursor
        window = self._window
        while self._window_instrs < self.window_size:
            compute_available = cursor.peek_compute()
            if compute_available:
                room = self.window_size - self._window_instrs
                taken = cursor.take_compute(min(compute_available, room))
                if window and window[-1][0] == _COMPUTE:
                    window[-1][1] += taken
                else:
                    window.append([_COMPUTE, taken])
                self._window_instrs += taken
                continue
            record = cursor.peek_memory()
            if record is None:
                return  # trace exhausted (non-looping) or nothing pending
            if record.is_write:
                request = self.submit(self.core_id, record.address, True, now)
                if request is None:
                    return  # write buffer full; retry next quantum
                self.writes_issued += 1
                cursor.take_memory()
                # The store itself retires freely: one compute instruction.
                if window and window[-1][0] == _COMPUTE:
                    window[-1][1] += 1
                else:
                    window.append([_COMPUTE, 1])
                self._window_instrs += 1
                continue
            # Demand load (L2 miss).
            if record.dependent and self._last_read is not None:
                previous = self._last_read
                if previous.completed_at is None or previous.completed_at > now:
                    return  # pointer chase: wait for the previous load
            self.mshrs.release_completed(now)
            if len(self.mshrs) >= self.max_outstanding:
                return  # MLP limit / all MSHRs busy; no further misses
            request = self.submit(self.core_id, record.address, False, now)
            if request is None:
                return  # request buffer full
            self.mshrs.try_allocate(request, now)
            self._last_read = request
            self.reads_issued += 1
            cursor.take_memory()
            window.append([_MEMORY, request])
            self._window_instrs += 1

    # -- execute ----------------------------------------------------------
    def step(self, now: int, cycles: int) -> None:
        """Advance the core by ``cycles`` CPU cycles starting at ``now``."""
        t = now
        end = now + cycles
        window = self._window
        width = self.commit_width
        while t < end:
            self._fetch(t)
            if not window:
                self.idle_cycles += end - t
                break
            entry = window[0]
            if entry[0] == _COMPUTE:
                remaining = entry[1]
                budget_cycles = end - t
                cycles_needed = -(-remaining // width)  # ceil division
                if cycles_needed <= budget_cycles:
                    t += cycles_needed
                    self._commit(remaining, t)
                    self._window_instrs -= remaining
                    window.popleft()
                else:
                    committed = budget_cycles * width
                    entry[1] -= committed
                    self._window_instrs -= committed
                    self._commit(committed, end)
                    t = end
            else:
                request = entry[1]
                done_at = request.completed_at
                if done_at is not None and done_at <= t:
                    window.popleft()
                    self._window_instrs -= 1
                    t += 1  # at most one memory op commits per cycle
                    self._commit(1, t)
                else:
                    wake = end if done_at is None else min(end, done_at)
                    self.memory_stall_cycles += wake - t
                    t = wake
                    if t >= end:
                        break

    def _commit(self, count: int, now: int) -> None:
        self.committed_instructions += count
        if (
            self.snapshot is None
            and self.committed_instructions >= self.instruction_budget
        ):
            self.snapshot = CoreSnapshot(
                instructions=self.committed_instructions,
                cycles=max(now, 1),
                memory_stall_cycles=self.memory_stall_cycles,
                reads_issued=self.reads_issued,
            )

    @property
    def finished(self) -> bool:
        """The core reached its instruction budget (or ran out of trace)."""
        return self.snapshot is not None or (
            self.cursor.exhausted and not self._window
        )

    def force_snapshot(self, now: int) -> CoreSnapshot:
        """Snapshot at the current point (trace exhausted before budget)."""
        if self.snapshot is None:
            self.snapshot = CoreSnapshot(
                instructions=max(self.committed_instructions, 1),
                cycles=max(now, 1),
                memory_stall_cycles=self.memory_stall_cycles,
                reads_issued=self.reads_issued,
            )
        return self.snapshot
