"""The analytical out-of-order core model.

Models the performance-relevant behaviour of the paper's cores (Table 2:
4 GHz, 128-entry instruction window, 3-wide, at most one memory operation
per cycle, 64 MSHRs):

* **Fetch runs ahead of commit** by up to the window size, issuing L2
  misses to the memory controller as soon as they enter the window — this
  is what creates memory-level parallelism (multiple misses outstanding).
* **Commit** retires up to 3 instructions per cycle; a load at the head
  of the window blocks commit until its data returns.  Cycles in which
  nothing commits because the oldest instruction is a pending L2 miss are
  counted as *memory stall time* — exactly the paper's ``Tshared``
  definition (Section 3.2.1).
* **Writebacks** retire immediately into the controller's write buffer;
  a full write buffer back-pressures fetch.
* **Dependent loads** (pointer chasing) cannot issue until the previous
  load returns, limiting MLP per the workload model.

The core advances in quanta (one DRAM cycle, 10 CPU cycles) but resolves
events to exact CPU cycles inside each quantum, so stall accounting is
cycle-precise.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.cpu.mshr import MshrFile
from repro.cpu.trace import Trace, TraceCursor

if TYPE_CHECKING:
    from repro.controller.request import MemoryRequest

#: Window-entry tags.
_COMPUTE = 0
_MEMORY = 1

#: Sentinel for "no submit can happen before an already-bounded event".
_NEVER = 1 << 62

#: Submit callback: (thread_id, address, is_write, now) -> request or None
#: (None when the controller's buffer is full; the core retries).
SubmitFn = Callable[[int, int, bool, int], "MemoryRequest | None"]


@dataclass(frozen=True)
class CoreSnapshot:
    """Statistics frozen at the moment a core reaches its budget."""

    instructions: int
    cycles: int
    memory_stall_cycles: int
    reads_issued: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def mcpi(self) -> float:
        """Memory Cycles Per Instruction (the paper's MCPI metric)."""
        if not self.instructions:
            return 0.0
        return self.memory_stall_cycles / self.instructions

    @property
    def mpki(self) -> float:
        if not self.instructions:
            return 0.0
        return 1000.0 * self.reads_issued / self.instructions


class Core:
    """One processing core executing a trace."""

    def __init__(
        self,
        core_id: int,
        trace: Trace,
        submit: SubmitFn,
        instruction_budget: int,
        window_size: int = 128,
        commit_width: int = 3,
        mshr_count: int = 64,
        max_outstanding: int | None = None,
        probe: "Callable[[int, int, bool], bool] | None" = None,
        on_snapshot: "Callable[[Core], None] | None" = None,
    ) -> None:
        """Create the core.

        Args:
            probe: Optional side-effect-free admission probe
                ``(thread_id, address, is_write) -> bool`` (would the
                controller accept this submit right now?).  Required for
                :meth:`quiet_state` to prove a fetch blocked on a full
                buffer; without it the core is never considered quiet.
            on_snapshot: Called once when the core crosses its
                instruction budget (O(1) finish detection in the run
                loop, instead of polling every core each quantum).
        """
        self.core_id = core_id
        self.cursor = TraceCursor(trace)
        self.submit = submit
        self.instruction_budget = instruction_budget
        self.window_size = window_size
        self.commit_width = commit_width
        self.mshrs = MshrFile(mshr_count)
        # The application's sustainable memory-level parallelism; the
        # hardware MSHR count caps it further.  See BenchmarkSpec.mlp.
        if max_outstanding is None:
            max_outstanding = mshr_count
        self.max_outstanding = min(max_outstanding, mshr_count)

        # Window entries: [tag, payload]; payload is a remaining-count for
        # compute blocks or the MemoryRequest for loads.
        self._window: deque[list] = deque()
        self._window_instrs = 0
        self._last_read: "MemoryRequest | None" = None

        # Cumulative counters (keep growing after the budget snapshot so
        # the thread continues to exert realistic memory pressure).
        self.committed_instructions = 0
        self.memory_stall_cycles = 0
        self.write_stall_cycles = 0
        self.idle_cycles = 0
        self.reads_issued = 0
        self.writes_issued = 0

        self.probe = probe
        self.on_snapshot = on_snapshot
        self.snapshot: CoreSnapshot | None = None

    # -- fetch -----------------------------------------------------------
    def _fetch(self, now: int) -> None:
        cursor = self.cursor
        window = self._window
        window_size = self.window_size
        instrs = self._window_instrs
        while instrs < window_size:
            compute_available = cursor.peek_compute()
            if compute_available:
                room = window_size - instrs
                taken = cursor.take_compute(
                    room if room < compute_available else compute_available
                )
                if window and window[-1][0] == _COMPUTE:
                    window[-1][1] += taken
                else:
                    window.append([_COMPUTE, taken])
                instrs += taken
                continue
            record = cursor.peek_memory()
            if record is None:
                break  # trace exhausted (non-looping) or nothing pending
            if record.is_write:
                request = self.submit(self.core_id, record.address, True, now)
                if request is None:
                    break  # write buffer full; retry next quantum
                self.writes_issued += 1
                cursor.take_memory()
                # The store itself retires freely: one compute instruction.
                if window and window[-1][0] == _COMPUTE:
                    window[-1][1] += 1
                else:
                    window.append([_COMPUTE, 1])
                instrs += 1
                continue
            # Demand load (L2 miss).
            if record.dependent and self._last_read is not None:
                previous = self._last_read
                if previous.completed_at is None or previous.completed_at > now:
                    break  # pointer chase: wait for the previous load
            self.mshrs.release_completed(now)
            if len(self.mshrs) >= self.max_outstanding:
                break  # MLP limit / all MSHRs busy; no further misses
            request = self.submit(self.core_id, record.address, False, now)
            if request is None:
                break  # request buffer full
            self.mshrs.try_allocate(request, now)
            self._last_read = request
            self.reads_issued += 1
            cursor.take_memory()
            window.append([_MEMORY, request])
            instrs += 1
        self._window_instrs = instrs

    # -- execute ----------------------------------------------------------
    def step(self, now: int, cycles: int) -> None:
        """Advance the core by ``cycles`` CPU cycles starting at ``now``."""
        t = now
        end = now + cycles
        window = self._window
        width = self.commit_width
        while t < end:
            self._fetch(t)
            if not window:
                self.idle_cycles += end - t
                break
            entry = window[0]
            if entry[0] == _COMPUTE:
                remaining = entry[1]
                budget_cycles = end - t
                cycles_needed = -(-remaining // width)  # ceil division
                if cycles_needed <= budget_cycles:
                    t += cycles_needed
                    self._commit(remaining, t)
                    self._window_instrs -= remaining
                    window.popleft()
                else:
                    committed = budget_cycles * width
                    entry[1] -= committed
                    self._window_instrs -= committed
                    self._commit(committed, end)
                    t = end
            else:
                request = entry[1]
                done_at = request.completed_at
                if done_at is not None and done_at <= t:
                    window.popleft()
                    self._window_instrs -= 1
                    t += 1  # at most one memory op commits per cycle
                    self._commit(1, t)
                else:
                    wake = end if done_at is None else min(end, done_at)
                    self.memory_stall_cycles += wake - t
                    t = wake
                    if t >= end:
                        break

    def _commit(self, count: int, now: int) -> None:
        self.committed_instructions += count
        if (
            self.snapshot is None
            and self.committed_instructions >= self.instruction_budget
        ):
            self.snapshot = CoreSnapshot(
                instructions=self.committed_instructions,
                cycles=max(now, 1),
                memory_stall_cycles=self.memory_stall_cycles,
                reads_issued=self.reads_issued,
            )
            if self.on_snapshot is not None:
                self.on_snapshot(self)

    # -- quiescence (event kernel) ----------------------------------------
    def inertia(self, now: int) -> "tuple[str | None, int]":
        """Classify this core for the event kernel's jump analysis.

        Returns ``(state, submit_bound)``:

        * ``state`` — ``"idle"`` (empty window, nothing fetchable),
          ``"stall"`` (window head is an incomplete memory op),
          ``"compute"`` (the core makes internal progress — committing
          and/or fetching compute — without touching the memory system),
          or ``None`` when the core acts on the controller this very
          quantum (a completed head commits, or a submit is imminent).
        * ``submit_bound`` — a proven lower bound on the CPU cycle of
          this core's next ``submit`` call, assuming no request
          completes and no command issues before it (the jump horizon's
          heap/channel/refresh bounds enforce exactly that).  ``NEVER``
          when every path to a submit runs through such an event:

          - trace exhausted — permanent;
          - read/write buffer full — frees only when a command issues
            or retires;
          - dependent load / MSHR limit — frees only at a completion
            time, and every pending completion sits in the controller's
            in-service heap.

          Otherwise the next memory record must first enter the window:
          the compute ahead of it has to be fetched and committed, and
          commits cannot outpace ``commit_width`` per cycle, giving
          ``now + ceil(missing_room / width)``.

        ``"compute"`` is only reported when the window is empty or a
        single compute block and the cursor still holds compute — the
        precondition for :meth:`advance_compute`'s exact closed-form
        replay.  Mixed windows or draining blocks return ``None`` and
        are handled by live ticks.
        """
        window = self._window
        if window:
            entry = window[0]
            if entry[0] == _COMPUTE:
                if len(window) > 1:
                    # Mixed window (memory entries behind the compute
                    # head): commit pacing has no closed form; live-tick.
                    return None, now
                state = "compute"
            else:
                done_at = entry[1].completed_at
                if done_at is not None and done_at <= now:
                    return None, now  # head commits this quantum
                state = "stall"
        else:
            state = "idle"
        if self.probe is None:
            return None, now  # cannot prove the buffers full; no jumps
        cursor = self.cursor
        chunk = cursor.peek_compute()
        if chunk:
            if state == "idle":
                state = "compute"  # will fetch and commit this compute
            # Conservatively assume a memory record directly follows the
            # chunk (peek_compute sees only the current block).
            need = self._window_instrs + chunk + 1 - self.window_size
            if need <= 0:
                return None, now  # the record may be fetched right now
            if state == "stall":
                return state, _NEVER  # stalled head: no commits, no room
            width = self.commit_width
            return state, now + (need + width - 1) // width
        if state == "compute":
            # Compute block draining with no top-up: the closed-form
            # replay (top-up every quantum) does not apply; live-tick
            # the few quanta until the window empties.
            return None, now
        record = cursor.peek_memory()
        if record is None:
            return state, _NEVER  # trace exhausted
        bound = self._record_bound(record, now)
        if bound is not None:
            return state, bound
        if self._window_instrs + 1 > self.window_size:
            return state, _NEVER  # stalled head: no commits, no room
        return None, now  # the record can be fetched right now

    def _record_bound(self, record, now: int) -> "int | None":
        """``NEVER`` if the pending record is resource-blocked on an
        event the jump horizon already bounds; ``None`` if resources are
        available (window room decides)."""
        if record.is_write:
            if self.probe(self.core_id, record.address, True):
                return None
            return _NEVER  # write buffer frees only on a write issue
        if record.dependent and self._last_read is not None:
            previous = self._last_read
            if previous.completed_at is None or previous.completed_at > now:
                return _NEVER  # pointer chase on an incomplete load
        self.mshrs.release_completed(now)
        if len(self.mshrs) >= self.max_outstanding:
            return _NEVER  # MLP limit / all MSHRs busy until a completion
        if self.probe(self.core_id, record.address, False):
            return None
        return _NEVER  # read buffer frees only on retire

    def window_has_inflight(self, now: int) -> bool:
        """Any window entry waiting on an incomplete memory request.

        Such an entry can become the head mid-window and flip the core
        from committing to stalling, changing the slope of
        ``memory_stall_cycles`` — policies that replay per-cycle stall
        counters (STFM) must exclude those cores from jumps.
        """
        for entry in self._window:
            if entry[0] == _MEMORY:
                done_at = entry[1].completed_at
                if done_at is None or done_at > now:
                    return True
        return False

    def advance_compute(self, now: int, span: int, quantum: int) -> None:
        """Closed-form replay of ``span`` pure-compute CPU cycles.

        Preconditions (established by :meth:`inertia` returning
        ``"compute"`` plus the jump horizon's bounds): the window is
        empty or a single compute block, the cursor's compute chunk
        outlasts the window, and no submit, budget crossing, completion
        or command issue occurs inside it.  Under those, the naive
        per-quantum trajectory is exact: ``_fetch`` tops the window up
        to capacity at every quantum boundary and commit retires exactly
        ``commit_width`` instructions per cycle, so the end state is
        computable in O(1):

        * commits: ``width * span``;
        * fetched: the initial top-up to ``window_size`` plus one
          quantum's worth of commits at each later boundary;
        * the window ends one quantum of commits below capacity.
        """
        width = self.commit_width
        commits = width * span
        per_quantum = width * quantum
        window = self._window
        w0 = self._window_instrs
        take = (self.window_size - w0) + per_quantum * (span // quantum - 1)
        taken = self.cursor.take_compute(take)
        if taken != take:  # pragma: no cover - guarded by inertia's bound
            raise RuntimeError("compute jump outran the trace chunk")
        if window:
            window[0][1] += taken - commits
        else:
            window.append([_COMPUTE, taken - commits])
        self._window_instrs = w0 + taken - commits
        self._commit(commits, now + span)

    def bulk_advance(self, state: str, cycles: int) -> None:
        """Apply the counter effect of ``cycles`` quiet CPU cycles.

        Exactly what per-quantum :meth:`step` calls would have done in
        the given quiet state: idle cores accrue ``idle_cycles``, stalled
        cores accrue ``memory_stall_cycles``.
        """
        if state == "idle":
            self.idle_cycles += cycles
        else:
            self.memory_stall_cycles += cycles

    @property
    def finished(self) -> bool:
        """The core reached its instruction budget (or ran out of trace)."""
        return self.snapshot is not None or (
            self.cursor.exhausted and not self._window
        )

    def force_snapshot(self, now: int) -> CoreSnapshot:
        """Snapshot at the current point (trace exhausted before budget)."""
        if self.snapshot is None:
            self.snapshot = CoreSnapshot(
                instructions=max(self.committed_instructions, 1),
                cycles=max(now, 1),
                memory_stall_cycles=self.memory_stall_cycles,
                reads_issued=self.reads_issued,
            )
        return self.snapshot
