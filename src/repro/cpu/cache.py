"""Set-associative cache model (the cores' private cache hierarchy).

The paper's cores have private 32 KB L1 and 512 KB L2 caches (Table 2);
the memory controller only ever sees L2 misses and writebacks.  The main
experiments synthesize L2-miss traces directly (see
:mod:`repro.workloads.synthetic`), but this substrate lets users derive a
miss trace from a raw reference trace — see :func:`filter_trace` and
``examples/cache_filtering.py`` — and is exercised by the test suite.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.cpu.trace import Trace, TraceRecord


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class Cache:
    """A write-back, write-allocate, LRU set-associative cache."""

    def __init__(
        self,
        size_bytes: int = 512 * 1024,
        ways: int = 8,
        line_bytes: int = 64,
    ) -> None:
        if size_bytes % (ways * line_bytes):
            raise ValueError("size must be divisible by ways * line size")
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.num_sets = size_bytes // (ways * line_bytes)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("number of sets must be a power of two")
        self._offset_bits = line_bytes.bit_length() - 1
        self._set_mask = self.num_sets - 1
        # Per set: OrderedDict of tag -> dirty flag, LRU order (oldest first).
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.stats = CacheStats()

    def _locate(self, address: int) -> tuple[int, int]:
        line = address >> self._offset_bits
        return line & self._set_mask, line >> self.num_sets.bit_length() - 1

    def access(self, address: int, is_write: bool = False) -> tuple[bool, int | None]:
        """Access one address.

        Returns:
            ``(hit, writeback_address)``: whether the access hit, and the
            byte address of a dirty victim line that must be written back
            (None when no writeback occurs).
        """
        set_index, tag = self._locate(address)
        cache_set = self._sets[set_index]
        self.stats.accesses += 1
        if tag in cache_set:
            self.stats.hits += 1
            dirty = cache_set.pop(tag)
            cache_set[tag] = dirty or is_write
            return True, None
        writeback = None
        if len(cache_set) >= self.ways:
            victim_tag, victim_dirty = cache_set.popitem(last=False)
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.writebacks += 1
                set_bits = self.num_sets.bit_length() - 1
                victim_line = (victim_tag << set_bits) | set_index
                writeback = victim_line << self._offset_bits
        cache_set[tag] = is_write
        return False, writeback

    def contains(self, address: int) -> bool:
        set_index, tag = self._locate(address)
        return tag in self._sets[set_index]


def filter_trace(trace: Trace, cache: Cache) -> Trace:
    """Pass a reference trace through a cache, keeping only misses.

    Compute gaps of hits are folded into the following miss record
    (a hit costs ~the core's cache latency, which the analytical core
    model subsumes into compute time).  Dirty evictions are appended as
    writeback records with a zero compute gap.
    """
    records: list[TraceRecord] = []
    pending_compute = 0
    for record in trace:
        pending_compute += record.compute
        hit, writeback = cache.access(record.address, record.is_write)
        if hit:
            pending_compute += 1  # the hit retires as a compute instruction
            continue
        records.append(
            TraceRecord(
                compute=pending_compute,
                is_write=record.is_write,
                address=record.address,
                dependent=record.dependent,
            )
        )
        pending_compute = 0
        if writeback is not None:
            records.append(
                TraceRecord(compute=0, is_write=True, address=writeback)
            )
    return Trace(records, loop=trace.loop)
