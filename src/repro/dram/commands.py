"""DRAM command types and the candidate records schedulers rank.

A *command candidate* is the next DRAM command a queued memory request
needs, given the current state of its bank: a column access (READ/WRITE)
if the request's row is open, an ACTIVATE if the bank is precharged, or a
PRECHARGE if a different row is open.  Each DRAM cycle the controller
builds the set of *ready* candidates (Section 2.4, footnote 4: a command
is ready if it can be issued without violating timing constraints) and the
scheduling policy ranks them.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.controller.request import MemoryRequest


class CommandKind(enum.IntEnum):
    """The four DRAM commands of a page-mode SDRAM (Section 2.1)."""

    PRECHARGE = 0
    ACTIVATE = 1
    READ = 2
    WRITE = 3

    @property
    def is_column(self) -> bool:
        """True for READ/WRITE (the "column accesses" of FR-FCFS)."""
        return self in (CommandKind.READ, CommandKind.WRITE)


class CommandCandidate:
    """A ready DRAM command a scheduler may issue this cycle.

    Attributes:
        kind: Which DRAM command the request needs next.
        request: The memory request this command advances.
        bank_index: Bank (within the channel) the command targets.
        latency: Bank service latency of this command in CPU cycles
            (``tRP`` for PRECHARGE, ``tRCD`` for ACTIVATE, ``tCL + burst``
            for column commands).  Used by STFM's interference updates as
            ``Latency(R)`` (Section 3.2.2).
        channel_ready: Whether the command also satisfies the channel's
            cross-bank constraints (data-bus availability) this cycle.
            Per the paper's two-level scheduler (Section 2.3), a bank's
            winner is chosen on bank constraints alone; if it is not
            channel-ready the bank waits for the bus rather than letting
            a lower-priority command (e.g. another thread's precharge)
            through — this is what lets a row-hit stream monopolize its
            bank.
        is_column / thread_id / arrival: Hoisted copies of derived
            values.  Policies read them in every ``priority_key``
            evaluation; storing them directly (rather than as properties
            chasing ``kind``/``request``) keeps the scheduler's inner
            comparison loop free of descriptor dispatch.
    """

    __slots__ = (
        "kind",
        "request",
        "bank_index",
        "latency",
        "channel_ready",
        "is_column",
        "thread_id",
        "arrival",
    )

    def __init__(
        self,
        kind: CommandKind,
        request: "MemoryRequest",
        bank_index: int,
        latency: int,
        channel_ready: bool = True,
    ) -> None:
        self.kind = kind
        self.request = request
        self.bank_index = bank_index
        self.latency = latency
        self.channel_ready = channel_ready
        self.is_column = kind >= CommandKind.READ
        self.thread_id = request.thread_id
        self.arrival = request.arrival

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CommandCandidate({self.kind.name}, thread={self.thread_id}, "
            f"bank={self.bank_index}, arrival={self.arrival})"
        )
