"""DRAM timing parameters and their conversion to CPU cycles.

The simulator keeps all time in integer CPU cycles of a 4 GHz processor
(0.25 ns per cycle), matching the paper's Table 2 configuration.  DRAM
parameters are specified in nanoseconds (Micron DDR2-800: ``tCL = tRCD =
tRP = 15 ns``, burst ``BL/2 = 10 ns``) and converted once at construction.

One DRAM cycle is 2.5 ns (a 400 MHz DDR2-800 command clock), i.e. 10 CPU
cycles; the memory controller makes one scheduling decision per channel per
DRAM cycle, exactly as in the paper (Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DramTiming:
    """Timing configuration of the DRAM system.

    All ``*_ns`` attributes are in nanoseconds.  The derived attributes
    (``cl``, ``rcd``, ...) are in CPU cycles and are computed from the
    nanosecond values and ``cpu_freq_ghz``.

    Attributes:
        t_cl_ns: CAS (column access) latency.  A row-hit pays only this.
        t_rcd_ns: RAS-to-CAS delay (activate, i.e. row open, latency).
        t_rp_ns: Row precharge latency (closing the open row).
        t_ras_ns: Minimum time a row must stay open after activation
            before it may be precharged.
        t_burst_ns: Data-bus occupancy of one cache-line transfer
            (``BL/2`` DRAM cycles for DDR2; 10 ns for a 64-byte line on a
            64-bit DDR2-800 channel).
        t_overhead_ns: Fixed round-trip overhead outside the DRAM chip
            (controller queuing/decode plus on-chip interconnect), chosen
            so uncontended row-hit latency is ~35 ns as in Table 2.
        t_wtr_ns: Write-to-read turnaround — delay from the end of a
            write burst to the next READ command on the channel.  The
            simplified in-order data bus does not model the turnaround
            (writes pay the same column latency as reads), so the
            default is 0 and the protocol sanitizer's tWTR check is a
            no-op unless a nonzero value is configured.
        t_ccd_ns: Minimum column-command spacing on a channel (CAS to
            CAS).  The in-order data bus already separates column
            commands by one burst, so the default equals
            ``t_burst_ns`` — tighter DDR2 tCCD values are implied.
        t_refi_ns: Average refresh interval (one all-bank refresh is due
            every tREFI; 7.8 us for DDR2).  Refresh is modeled only when
            the system config enables it — the paper does not study it.
        t_rfc_ns: Refresh cycle time (banks unavailable; 127.5 ns for a
            1 Gb DDR2 device).
        dram_clock_ns: Period of the DRAM command clock.
        cpu_freq_ghz: CPU clock frequency used for the conversion.
    """

    t_cl_ns: float = 15.0
    t_rcd_ns: float = 15.0
    t_rp_ns: float = 15.0
    t_ras_ns: float = 45.0
    t_burst_ns: float = 10.0
    t_overhead_ns: float = 10.0
    t_wtr_ns: float = 0.0
    t_ccd_ns: float = 10.0
    t_refi_ns: float = 7800.0
    t_rfc_ns: float = 127.5
    dram_clock_ns: float = 2.5
    cpu_freq_ghz: float = 4.0

    # Derived values (CPU cycles), filled in __post_init__.
    cl: int = field(init=False)
    rcd: int = field(init=False)
    rp: int = field(init=False)
    ras: int = field(init=False)
    burst: int = field(init=False)
    overhead: int = field(init=False)
    wtr: int = field(init=False)
    ccd: int = field(init=False)
    refi: int = field(init=False)
    rfc: int = field(init=False)
    dram_cycle: int = field(init=False)

    def __post_init__(self) -> None:
        to_cycles = self._to_cycles
        object.__setattr__(self, "cl", to_cycles(self.t_cl_ns))
        object.__setattr__(self, "rcd", to_cycles(self.t_rcd_ns))
        object.__setattr__(self, "rp", to_cycles(self.t_rp_ns))
        object.__setattr__(self, "ras", to_cycles(self.t_ras_ns))
        object.__setattr__(self, "burst", to_cycles(self.t_burst_ns))
        object.__setattr__(self, "overhead", to_cycles(self.t_overhead_ns))
        object.__setattr__(self, "wtr", to_cycles(self.t_wtr_ns))
        object.__setattr__(self, "ccd", to_cycles(self.t_ccd_ns))
        object.__setattr__(self, "refi", to_cycles(self.t_refi_ns))
        object.__setattr__(self, "rfc", to_cycles(self.t_rfc_ns))
        object.__setattr__(self, "dram_cycle", to_cycles(self.dram_clock_ns))
        if self.dram_cycle <= 0:
            raise ValueError("DRAM cycle must be at least one CPU cycle")

    def _to_cycles(self, nanoseconds: float) -> int:
        return int(round(nanoseconds * self.cpu_freq_ghz))

    @property
    def t_bus(self) -> int:
        """Data-bus occupancy of one transfer, in CPU cycles.

        This is the ``t_bus`` of the paper's Section 3.2.2 bus-interference
        update (``BL/2`` for DDR2 read/write commands).
        """
        return self.burst

    def row_hit_latency(self) -> int:
        """Uncontended service latency of a row-hit request (CPU cycles)."""
        return self.cl + self.burst + self.overhead

    def row_closed_latency(self) -> int:
        """Uncontended service latency when the bank has no open row."""
        return self.rcd + self.cl + self.burst + self.overhead

    def row_conflict_latency(self) -> int:
        """Uncontended service latency when a different row is open."""
        return self.rp + self.rcd + self.cl + self.burst + self.overhead


DDR2_800 = DramTiming()
"""The paper's baseline Micron DDR2-800 timing (Table 2)."""
