"""DRAM bank state machine.

Each bank tracks its open row (if any), the time until which it is busy
with the last issued command, and when its current row was activated (to
enforce ``tRAS`` before a precharge).  Requests are classified against the
bank as row-hit / row-closed / row-conflict exactly as in Section 2.1 of
the paper.
"""

from __future__ import annotations

import enum

from repro.dram.commands import CommandKind
from repro.dram.timing import DramTiming


class RowBufferOutcome(enum.IntEnum):
    """How a request relates to the bank's row-buffer state."""

    ROW_HIT = 0
    ROW_CLOSED = 1
    ROW_CONFLICT = 2


class Bank:
    """One DRAM bank within a channel.

    Attributes:
        open_row: Row currently latched in the row buffer, or None if the
            bank is precharged.
        busy_until: CPU cycle at which the bank can accept another command.
        activated_at: Issue time of the most recent ACTIVATE (``tRAS``
            reference point); meaningless while ``open_row`` is None.
    """

    __slots__ = ("index", "timing", "open_row", "busy_until", "activated_at")

    def __init__(self, index: int, timing: DramTiming) -> None:
        self.index = index
        self.timing = timing
        self.open_row: int | None = None
        self.busy_until = 0
        self.activated_at = 0

    def classify(self, row: int) -> RowBufferOutcome:
        """Classify an access to ``row`` against the current row buffer."""
        if self.open_row is None:
            return RowBufferOutcome.ROW_CLOSED
        if self.open_row == row:
            return RowBufferOutcome.ROW_HIT
        return RowBufferOutcome.ROW_CONFLICT

    def next_command_for(self, row: int) -> CommandKind:
        """Which command a request for ``row`` needs next.

        Column direction (READ vs WRITE) is resolved by the caller; this
        returns READ as the generic column placeholder.
        """
        outcome = self.classify(row)
        if outcome is RowBufferOutcome.ROW_HIT:
            return CommandKind.READ
        if outcome is RowBufferOutcome.ROW_CLOSED:
            return CommandKind.ACTIVATE
        return CommandKind.PRECHARGE

    def command_latency(self, kind: CommandKind) -> int:
        """Bank service latency of a command, in CPU cycles."""
        timing = self.timing
        if kind is CommandKind.PRECHARGE:
            return timing.rp
        if kind is CommandKind.ACTIVATE:
            return timing.rcd
        return timing.cl + timing.burst

    def is_ready(self, kind: CommandKind, now: int) -> bool:
        """Whether the bank-side timing constraints allow ``kind`` now.

        The channel additionally checks data-bus availability for column
        commands and enforces one command per DRAM cycle.
        """
        if now < self.busy_until:
            return False
        if kind is CommandKind.PRECHARGE:
            # A row may only be closed tRAS after it was opened.
            return self.open_row is None or now >= self.activated_at + self.timing.ras
        if kind is CommandKind.ACTIVATE:
            return self.open_row is None
        # Column access requires a matching open row; the caller guarantees
        # the row matches (candidates are rebuilt every cycle).
        return self.open_row is not None

    def apply(self, kind: CommandKind, row: int, now: int) -> None:
        """Issue ``kind`` to the bank and advance its state."""
        if kind is CommandKind.PRECHARGE:
            self.open_row = None
            self.busy_until = now + self.timing.rp
        elif kind is CommandKind.ACTIVATE:
            self.open_row = row
            self.activated_at = now
            self.busy_until = now + self.timing.rcd
        else:
            # Column commands pipeline at the burst rate; the data bus
            # reservation (Channel) is what actually limits throughput.
            self.busy_until = now + self.timing.burst

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Bank({self.index}, open_row={self.open_row}, "
            f"busy_until={self.busy_until})"
        )
