"""DRAM channel: a set of banks sharing command and data buses.

The channel enforces the cross-bank resource constraints of Section 2.3:
at most one DRAM command may be issued per DRAM cycle (shared
address/command bus) and a column command reserves the 64-bit data bus for
one burst, ``[issue + tCL, issue + tCL + tBurst)``.
"""

from __future__ import annotations

from repro.dram.bank import Bank
from repro.dram.commands import CommandKind
from repro.dram.timing import DramTiming


class Channel:
    """One independent DRAM channel (Table 2: 6.4 GB/s peak each)."""

    def __init__(self, index: int, num_banks: int, timing: DramTiming) -> None:
        self.index = index
        self.timing = timing
        self.banks = [Bank(b, timing) for b in range(num_banks)]
        self.data_bus_busy_until = 0
        self.last_command_cycle = -1
        # Issue statistics, by command kind.
        self.commands_issued = {kind: 0 for kind in CommandKind}
        self.data_bus_busy_cycles = 0
        # Optional protocol sanitizer (repro.analysis.protocol); when
        # attached it validates every command before state advances.
        self.sanitizer = None

    def command_bus_free(self, now: int) -> bool:
        """One command per DRAM cycle on the shared command bus."""
        return now > self.last_command_cycle

    def column_ready(self, now: int) -> bool:
        """Whether a column command issued now finds the data bus free.

        Data for a column command issued at ``now`` occupies the bus from
        ``now + tCL``; it is ready if the previous burst has drained by
        then (an in-order data bus).
        """
        return now + self.timing.cl >= self.data_bus_busy_until

    def is_ready(self, bank: Bank, kind: CommandKind, now: int) -> bool:
        """Full readiness check for a command (bank + bus constraints)."""
        if not self.command_bus_free(now):
            return False
        if kind.is_column and not self.column_ready(now):
            return False
        return bank.is_ready(kind, now)

    def issue(self, bank: Bank, kind: CommandKind, row: int, now: int) -> int:
        """Issue a command; returns the data-ready time for column commands.

        For PRECHARGE/ACTIVATE the return value is the time the bank
        becomes ready again (informational).
        """
        if self.sanitizer is not None:
            self.sanitizer.observe(self.index, bank.index, kind, row, now)
        self.last_command_cycle = now
        self.commands_issued[kind] += 1
        bank.apply(kind, row, now)
        if kind.is_column:
            data_end = now + self.timing.cl + self.timing.burst
            self.data_bus_busy_until = data_end
            self.data_bus_busy_cycles += self.timing.burst
            return data_end
        return bank.busy_until

    def utilization(self, elapsed_cycles: int) -> float:
        """Fraction of time the data bus carried data."""
        if elapsed_cycles <= 0:
            return 0.0
        return self.data_bus_busy_cycles / elapsed_cycles
