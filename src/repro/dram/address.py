"""Physical-address to DRAM-coordinate mapping.

The mapper decomposes a byte address into (channel, bank, row, column) at
cache-line granularity, using the classic layout ``row | bank | channel |
column | line offset`` with an optional XOR-based bank hash (Frailong et
al. [6], Zhang et al. [32]) as in the paper's baseline controller
("XOR-based addr-to-bank mapping", Table 2).

The inverse operation :meth:`AddressMapper.compose` is used by the
synthetic workload generator to author address streams with a target
row-buffer locality and bank-access balance.
"""

from __future__ import annotations

from dataclasses import dataclass


def _bit_length_of_power_of_two(value: int, name: str) -> int:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{name} must be a positive power of two, got {value}")
    return value.bit_length() - 1


@dataclass(frozen=True)
class DecodedAddress:
    """DRAM coordinates of one cache line."""

    channel: int
    bank: int
    row: int
    column: int


class AddressMapper:
    """Maps byte addresses to DRAM coordinates and back.

    Args:
        num_channels: Independent DRAM channels (scaled with core count in
            the paper: 1/1/2/4 channels for 2/4/8/16 cores).
        num_banks: Banks per channel (8 in the baseline).
        num_rows: Rows per bank (2**14 in the paper's Table 1).
        row_buffer_bytes: Row-buffer size *per DRAM chip* (2 KB baseline;
            Table 5 varies 1/2/4 KB).
        chips_per_dimm: DRAM chips ganged into the 64-bit channel (8).
        line_bytes: Cache-line size (64 B).
        xor_bank_hash: Whether to XOR the low row bits into the bank index.
    """

    def __init__(
        self,
        num_channels: int = 1,
        num_banks: int = 8,
        num_rows: int = 1 << 14,
        row_buffer_bytes: int = 2048,
        chips_per_dimm: int = 8,
        line_bytes: int = 64,
        xor_bank_hash: bool = True,
    ) -> None:
        self.num_channels = num_channels
        self.num_banks = num_banks
        self.num_rows = num_rows
        self.row_buffer_bytes = row_buffer_bytes
        self.chips_per_dimm = chips_per_dimm
        self.line_bytes = line_bytes
        self.xor_bank_hash = xor_bank_hash

        effective_row_bytes = row_buffer_bytes * chips_per_dimm
        if effective_row_bytes % line_bytes:
            raise ValueError("row must hold an integral number of lines")
        self.lines_per_row = effective_row_bytes // line_bytes

        self._offset_bits = _bit_length_of_power_of_two(line_bytes, "line_bytes")
        self._column_bits = _bit_length_of_power_of_two(
            self.lines_per_row, "lines_per_row"
        )
        self._channel_bits = _bit_length_of_power_of_two(
            num_channels, "num_channels"
        )
        self._bank_bits = _bit_length_of_power_of_two(num_banks, "num_banks")
        self._row_bits = _bit_length_of_power_of_two(num_rows, "num_rows")

        self._column_mask = self.lines_per_row - 1
        self._channel_mask = num_channels - 1
        self._bank_mask = num_banks - 1
        self._row_mask = num_rows - 1

    @property
    def capacity_bytes(self) -> int:
        """Total bytes addressable by the mapper."""
        return (
            self.num_channels
            * self.num_banks
            * self.num_rows
            * self.lines_per_row
            * self.line_bytes
        )

    def decode(self, address: int) -> DecodedAddress:
        """Decode a byte address into DRAM coordinates.

        Addresses beyond :attr:`capacity_bytes` wrap (high bits ignored),
        mirroring physical-address truncation.
        """
        line = address >> self._offset_bits
        column = line & self._column_mask
        line >>= self._column_bits
        channel = line & self._channel_mask
        line >>= self._channel_bits
        bank_field = line & self._bank_mask
        line >>= self._bank_bits
        row = line & self._row_mask
        bank = bank_field
        if self.xor_bank_hash:
            bank ^= row & self._bank_mask
        return DecodedAddress(channel=channel, bank=bank, row=row, column=column)

    def compose(self, channel: int, bank: int, row: int, column: int) -> int:
        """Inverse of :meth:`decode`: build the byte address of a line.

        The generator uses this to place accesses on specific banks/rows.
        """
        if not 0 <= channel < self.num_channels:
            raise ValueError(f"channel {channel} out of range")
        if not 0 <= bank < self.num_banks:
            raise ValueError(f"bank {bank} out of range")
        if not 0 <= row < self.num_rows:
            raise ValueError(f"row {row} out of range")
        if not 0 <= column < self.lines_per_row:
            raise ValueError(f"column {column} out of range")
        bank_field = bank
        if self.xor_bank_hash:
            bank_field ^= row & self._bank_mask
        line = row
        line = (line << self._bank_bits) | bank_field
        line = (line << self._channel_bits) | channel
        line = (line << self._column_bits) | column
        return line << self._offset_bits
