"""DRAM substrate: timing, address mapping, banks, channels, commands.

This package models a DDR2-style SDRAM memory system at the granularity the
paper's scheduler operates at: DRAM commands (precharge / activate /
read / write) issued once per DRAM cycle per channel, subject to bank and
bus timing constraints (Section 2 of the paper).
"""

from repro.dram.address import AddressMapper, DecodedAddress
from repro.dram.bank import Bank, RowBufferOutcome
from repro.dram.channel import Channel
from repro.dram.commands import CommandCandidate, CommandKind
from repro.dram.timing import DramTiming

__all__ = [
    "AddressMapper",
    "Bank",
    "Channel",
    "CommandCandidate",
    "CommandKind",
    "DecodedAddress",
    "DramTiming",
    "RowBufferOutcome",
]
