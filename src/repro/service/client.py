"""Thin blocking client for the simulation service.

Stdlib-only (``http.client``), one connection per request — the server
speaks ``Connection: close``.  Used by the ``stfm-sim submit`` /
``status`` CLI verbs, the examples, and the test suite::

    client = ServiceClient("http://127.0.0.1:8765")
    job = client.submit({"kind": "experiment", "experiment": "fig3",
                         "scale": "tiny"})
    done = client.wait(job["id"])
    print(done["result"]["rows"])

The client is hardened for flaky transport: idempotent GETs are retried
with exponential backoff on connection errors, and 429 responses are
retried honoring the server's ``Retry-After`` — both bounded by the
``retries`` budget, after which the original error propagates.

``POST /v1/jobs`` is retried too: :meth:`ServiceClient.submit` stamps
every submission with an ``Idempotency-Key`` header — the spec digest
plus a per-call nonce — that the server dedups on, so a POST whose
response was lost can be resent without creating a duplicate job.  The
nonce makes the key identify the *submission attempt*: retries of one
``submit()`` call land on one job, while a deliberate resubmission of
the same spec later is a fresh attempt and may create a fresh job.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
import uuid

from repro import faults


class ServiceError(RuntimeError):
    """Any non-success HTTP response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class BackpressureError(ServiceError):
    """429: the admission queue is full; retry after ``retry_after``s."""

    def __init__(self, retry_after: int, message: str) -> None:
        super().__init__(429, message)
        self.retry_after = retry_after


class _InjectedDrop(ConnectionError):
    """A pre-send transport fault (``drop`` / ``refused`` / ``latency``):
    the connection 'failed' before any bytes left, so retrying is safe
    for every method."""


class ServiceClient:
    """Talks to one service instance at ``base_url``.

    Args:
        base_url: ``http://host:port`` of the service.
        timeout: Socket timeout per request, seconds.
        retries: Extra attempts for retriable failures — connection
            errors on idempotent GETs, and 429 backpressure responses.
        backoff: Base delay between connection-error retries; attempt
            *n* waits ``backoff * 2^(n-1)`` seconds.
    """

    def __init__(
        self,
        base_url: str = "http://127.0.0.1:8765",
        timeout: float = 60.0,
        retries: int = 2,
        backoff: float = 0.2,
    ) -> None:
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme not in ("http", ""):
            raise ValueError("only http:// service URLs are supported")
        if retries < 0:
            raise ValueError("retries cannot be negative")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 8765
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self._calls = 0  # request() ordinal; scopes transport-fault keys

    # -- low-level ----------------------------------------------------------
    def _request_once(
        self, method: str, path: str, body: "dict | None" = None,
        headers: "dict | None" = None,
    ) -> tuple[int, dict, "dict | str"]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            headers = dict(headers or {})
            if body is not None:
                payload = json.dumps(body).encode()
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            response_headers = {k.lower(): v for k, v in response.getheaders()}
            content_type = response_headers.get("content-type", "")
            if content_type.startswith("application/json"):
                decoded: "dict | str" = json.loads(raw.decode())
            else:
                decoded = raw.decode()
            return response.status, response_headers, decoded
        finally:
            conn.close()

    def request(
        self, method: str, path: str, body: "dict | None" = None,
        headers: "dict | None" = None, idempotent: bool = False,
    ) -> tuple[int, dict, "dict | str"]:
        """One logical round trip → (status, headers, decoded body).

        JSON bodies decode to dicts; anything else (``/metrics``) comes
        back as text.  No status is raised here — the typed helpers
        below do that.  Connection errors are retried (with exponential
        backoff) for GETs and for requests marked ``idempotent`` — a
        POST carrying an ``Idempotency-Key`` the server dedups on is
        safe to resend even when the first attempt may have been
        admitted.  A dropped POST *without* such a key propagates
        immediately.

        Injected transport faults (keyed per request attempt):

        * ``drop`` / ``refused`` / ``latency`` fire *before* the bytes
          leave, so they are safely retriable for any method.
        * ``reset`` fires *after* the request was sent — the server may
          have processed it; the response is lost.  It follows the real
          ``OSError`` rules: retried only for GETs and requests marked
          ``idempotent``.

        ``drop`` keys by ``"METHOD /path #attempt"`` (a fixed stream per
        path, exercised by the bounded-retry tests); the network sites
        additionally scope their keys by this client's call ordinal, so
        one unlucky draw can degrade a call but never permanently
        black-hole a hot path like the runners' lease poll.  Both forms
        contain ``#`` and are therefore excluded from the replay-stable
        decision set (see :data:`repro.faults.REPLAY_STABLE_SITES`).
        """
        self._calls += 1
        for attempt in range(1, self.retries + 2):
            fault_key = f"{method} {path} #{attempt}"
            wire_key = f"{method} {path} #{self._calls}.{attempt}"
            try:
                if faults.fires("drop", fault_key):
                    raise _InjectedDrop("injected connection drop")
                if faults.fires("refused", wire_key):
                    raise _InjectedDrop("injected connection refused")
                if faults.fires("latency", wire_key):
                    raise _InjectedDrop("injected latency past timeout")
                if faults.fires("reset", wire_key):
                    # The request really goes out (the server processes
                    # it); only the response is lost.
                    self._request_once(method, path, body, headers)
                    raise ConnectionResetError("injected connection reset")
                return self._request_once(method, path, body, headers)
            except _InjectedDrop:
                if attempt > self.retries:
                    raise ConnectionError(
                        "injected transport fault (retries exhausted)"
                    ) from None
            except OSError:
                if (method != "GET" and not idempotent) or attempt > self.retries:
                    raise
            time.sleep(self.backoff * (2 ** (attempt - 1)))
        raise AssertionError("unreachable")  # loop always returns or raises

    def _checked(self, method: str, path: str, body=None, ok=(200, 202),
                 headers=None, idempotent=False):
        for attempt in range(1, self.retries + 2):
            status, headers_out, decoded = self.request(
                method, path, body, headers=headers, idempotent=idempotent
            )
            if status != 429 or attempt > self.retries:
                break
            retry_after = int(headers_out.get("retry-after", "1"))
            time.sleep(min(max(retry_after, 0), 5.0))
        if status in ok:
            return status, headers_out, decoded
        message = (
            decoded.get("error", str(decoded))
            if isinstance(decoded, dict)
            else str(decoded)
        )
        if status == 429:
            retry_after = int(headers_out.get("retry-after", "1"))
            raise BackpressureError(retry_after, message)
        raise ServiceError(status, message)

    # -- API ----------------------------------------------------------------
    def idempotency_key(self, spec: dict) -> "str | None":
        """The ``Idempotency-Key`` for one submission attempt of ``spec``:
        the spec digest plus a fresh nonce.  None when the spec does not
        validate locally — the server then rejects it with 400 as before.
        """
        from repro.service.api import SpecError, parse_spec, spec_digest

        try:
            digest = spec_digest(parse_spec(spec))
        except SpecError:
            return None
        return f"{digest}-{uuid.uuid4().hex[:12]}"

    def submit(self, spec: dict, idempotency_key: "str | None" = None) -> dict:
        """POST a job spec; returns the admission view (``id``,
        ``status``, ``deduplicated``).  Raises :class:`BackpressureError`
        on 429 and :class:`ServiceError` on 400/503.

        Every call stamps an ``Idempotency-Key`` (spec digest + nonce)
        so connection-error retries — including a POST whose response
        was lost after the server admitted the job — resolve to the
        *same* job instead of submitting a duplicate.  Pass
        ``idempotency_key`` explicitly to resume a specific prior
        attempt.
        """
        key = idempotency_key or self.idempotency_key(spec)
        headers = {"Idempotency-Key": key} if key else None
        _status, _headers, decoded = self._checked(
            "POST", "/v1/jobs", body=spec, headers=headers,
            idempotent=key is not None,
        )
        return decoded

    def job(self, job_id: str) -> dict:
        _status, _headers, decoded = self._checked("GET", f"/v1/jobs/{job_id}")
        return decoded

    def result(self, job_id: str) -> dict:
        """The job view including its result once terminal; a still
        queued/running job returns its 202 view (no ``result`` key)."""
        _status, _headers, decoded = self._checked(
            "GET", f"/v1/results/{job_id}"
        )
        return decoded

    def results(self) -> list[dict]:
        """``GET /v1/results``: every known job as ``{id, spec_digest,
        status}``, in submission order (no result payloads)."""
        _status, _headers, decoded = self._checked("GET", "/v1/results")
        return decoded["results"]

    def wait(
        self, job_id: str, timeout: float = 300.0, poll: float = 0.1
    ) -> dict:
        """Poll until the job is terminal; returns its result view."""
        deadline = time.monotonic() + timeout
        while True:
            view = self.result(job_id)
            if view["status"] in ("done", "failed"):
                return view
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {view['status']} after {timeout}s"
                )
            time.sleep(poll)

    def health(self) -> dict:
        _status, _headers, decoded = self._checked("GET", "/healthz")
        return decoded

    def metrics(self) -> str:
        _status, _headers, decoded = self._checked("GET", "/metrics")
        return decoded


def parse_metrics(text: str) -> dict[str, float]:
    """Prometheus exposition text → ``{'name{labels}': value}``.

    Series keep their label block verbatim
    (``stfm_service_jobs_total{event="done"}``); unlabelled samples key
    by bare name.  Convenient for tests and ``stfm-sim status``.
    """
    values: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        try:
            values[name] = float(value)
        except ValueError:
            continue
    return values
