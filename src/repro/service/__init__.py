"""repro.service — an async simulation service over the experiment engine.

A stdlib-only (asyncio streams) HTTP JSON API that lets many clients
submit experiment and workload specs to one shared engine:

* ``POST /v1/jobs`` admits a spec into a bounded queue (HTTP 429 plus
  ``Retry-After`` when full — backpressure, not unbounded buffering);
* a worker pool executes jobs through :mod:`repro.engine`, so identical
  run-alone / run-shared sub-jobs are deduplicated across submitters by
  the content-addressed :class:`~repro.engine.ResultStore`;
* ``GET /v1/jobs/<id>`` and ``GET /v1/results/<id>`` report state and
  results, ``/healthz`` and a Prometheus-text ``/metrics`` endpoint
  expose queue depth, in-flight jobs, cache hit/miss counters and
  per-job wall time;
* SIGTERM drains gracefully, and job state is persisted crash-safely so
  a restarted server resumes queued/running work and re-reports
  completed work.

Run it as ``stfm-sim serve``; talk to it with
:class:`~repro.service.client.ServiceClient` or the ``stfm-sim submit``
and ``stfm-sim status`` CLI verbs.  For multi-process scale-out — a
coordinator leasing jobs to N runner processes over HTTP — see
:mod:`repro.cluster`.
"""

from repro.service.api import JobSpec, SpecError, parse_spec, spec_digest
from repro.service.client import (
    BackpressureError,
    ServiceClient,
    ServiceError,
    parse_metrics,
)
from repro.service.queue import AdmissionQueue
from repro.service.server import ServiceConfig, SimulationService, serve
from repro.service.state import Job, JobStore

__all__ = [
    "AdmissionQueue",
    "BackpressureError",
    "Job",
    "JobSpec",
    "JobStore",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "SimulationService",
    "SpecError",
    "parse_metrics",
    "parse_spec",
    "serve",
    "spec_digest",
]
