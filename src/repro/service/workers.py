"""Job execution: the worker pool and the spec → engine bridge.

Workers are asyncio tasks; the simulation itself is synchronous Python,
so each job runs on a thread-pool executor sized to the worker count —
the event loop stays responsive for status queries and metric scrapes
while simulations run.  Every execution builds its own
:class:`~repro.engine.ExperimentRunner` but hands it the service's
*shared* :class:`~repro.engine.ResultStore` instance, which is what
deduplicates identical run-alone / run-shared sub-jobs across
submitters — and whose hit/miss counters make that dedup visible in
``/metrics``.

Worker crashes are contained per job: any exception out of the engine
(including :class:`~repro.engine.JobFailedError` from a crashed or
timed-out simulation process) marks the job FAILED with the error
message — it never takes the worker down or leaves the job hung.  A
per-job deadline watchdog (``job_timeout``) closes the remaining gap: a
job whose thread stops making progress transitions to FAILED with a
``watchdog:`` reason instead of sitting RUNNING forever, and the worker
moves on to the next job.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import time
from dataclasses import replace
from typing import Callable

from repro import faults
from repro.engine import EngineOptions, engine_options
from repro.engine.store import ResultStore
from repro.experiments import run_experiment
from repro.experiments.base import resolve_scale
from repro.experiments.io import result_to_dict
from repro.service.api import JobSpec, parse_spec, workload_result_to_dict
from repro.sim.config import SystemConfig
from repro.sim.runner import ExperimentRunner


def execute_spec(
    spec: "JobSpec | dict",
    store: "ResultStore | None" = None,
    engine_jobs: int = 1,
) -> dict:
    """Run one validated spec to its JSON result payload (blocking).

    This is the single entry point the service's workers call — and the
    function the end-to-end tests call directly to establish the
    bit-identical baseline.
    """
    if isinstance(spec, dict):
        spec = parse_spec(spec)
    if spec.kind == "experiment":
        scale = resolve_scale(spec.scale)
        if spec.seed is not None:
            scale = replace(scale, seed=spec.seed)
        with engine_options(EngineOptions(jobs=engine_jobs, store=store)):
            result = run_experiment(spec.experiment, scale=scale)
        return {"kind": "experiment", **result_to_dict(result)}
    normalized = spec.normalized()
    config = SystemConfig(num_cores=normalized["num_cores"])
    runner = ExperimentRunner(
        config,
        instruction_budget=spec.budget,
        seed=normalized["seed"],
        jobs=engine_jobs,
        store=store,
    )
    result = runner.run_workload(
        list(spec.benchmarks), spec.policy, spec.policy_kwargs or None
    )
    return {"kind": "workload", **workload_result_to_dict(result)}


class WorkerPool:
    """N asyncio workers draining the admission queue through a thread pool.

    Args:
        queue: The :class:`~repro.service.queue.AdmissionQueue` to drain.
        run_job: Called (on the event loop) with a job id when a worker
            picks it up; must return the blocking callable to execute.
        on_done: Called (on the event loop) with
            ``(job_id, result | None, error | None, wall_seconds)``.
        count: Worker tasks (and thread-pool width).  0 is allowed —
            nothing executes, which the backpressure tests rely on.
        job_timeout: Per-job wall-clock deadline in seconds; None (the
            default) disables the watchdog.  A job past its deadline is
            marked FAILED (``watchdog: ...``) and abandoned — threads
            cannot be killed, so its thread keeps running until the
            engine's own per-process timeouts fire, but the worker slot
            is freed and any late result is discarded.
    """

    def __init__(
        self,
        queue,
        run_job: "Callable[[str], Callable[[], dict]]",
        on_done: "Callable[[str, dict | None, str | None, float], None]",
        count: int = 2,
        job_timeout: "float | None" = None,
    ) -> None:
        if count < 0:
            raise ValueError("worker count cannot be negative")
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError("job_timeout must be positive")
        self.queue = queue
        self.run_job = run_job
        self.on_done = on_done
        self.count = count
        self.job_timeout = job_timeout
        self.watchdog_timeouts = 0
        self.inflight: set[str] = set()
        self._tasks: list[asyncio.Task] = []
        self._executor: "concurrent.futures.ThreadPoolExecutor | None" = None

    def start(self) -> None:
        if self.count == 0:
            return
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.count, thread_name_prefix="stfm-sim-worker"
        )
        self._tasks = [
            asyncio.get_running_loop().create_task(
                self._worker(), name=f"stfm-service-worker-{i}"
            )
            for i in range(self.count)
        ]

    async def _worker(self) -> None:
        while True:
            job_id = await self.queue.get()
            try:
                await self._run_one(job_id)
            finally:
                self.queue.task_done()

    async def _run_one(self, job_id: str) -> None:
        self.inflight.add(job_id)
        started = time.perf_counter()
        result = None
        error = None
        try:
            work = self.run_job(job_id)
            if faults.fires("service", job_id):
                raise RuntimeError("injected service worker fault")
            future = asyncio.get_running_loop().run_in_executor(
                self._executor, work
            )
            if self.job_timeout is not None:
                try:
                    result = await asyncio.wait_for(
                        asyncio.shield(future), self.job_timeout
                    )
                except asyncio.TimeoutError:
                    self.watchdog_timeouts += 1
                    error = (
                        f"watchdog: job exceeded {self.job_timeout:g}s "
                        "deadline"
                    )
                    # The thread cannot be killed; discard whatever it
                    # eventually produces (result or exception) so the
                    # orphan never logs "exception was never retrieved".
                    future.add_done_callback(
                        lambda f: f.cancelled() or f.exception()
                    )
            else:
                result = await future
        except asyncio.CancelledError:
            self.inflight.discard(job_id)
            raise
        except BaseException as exc:  # a crash marks the job failed
            error = f"{type(exc).__name__}: {exc}"
        wall = time.perf_counter() - started
        self.inflight.discard(job_id)
        self.queue.observe(wall)
        self.on_done(job_id, result, error, wall)

    async def stop(self) -> None:
        """Cancel idle workers and release the thread pool."""
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks = []
        if self._executor is not None:
            # wait=False: the workers were awaited above, so any thread
            # still running belongs to a watchdog-abandoned hung job —
            # waiting for it would stall the event loop indefinitely.
            self._executor.shutdown(wait=False)
            self._executor = None
