"""The asyncio-streams HTTP server: routing, admission, drain.

A deliberately small HTTP/1.1 implementation (request line + headers +
``Content-Length`` body, one request per connection) on
``asyncio.start_server`` — no ``http.server``, no threads in the
serving path.  Endpoints::

    POST /v1/jobs          submit a spec        202 | 200 (coalesced) |
                                                400 | 429 (+Retry-After) | 503
    GET  /v1/jobs/<id>     job status           200 | 404
    GET  /v1/results/<id>  result payload       200 (terminal) | 202 | 404
    GET  /healthz          liveness + drain state
    GET  /metrics          Prometheus text (version 0.0.4)

Identical specs submitted while one is queued or running coalesce onto
the same job id (cross-client dedup *above* the engine); identical
simulation sub-jobs of *different* specs dedup below, in the shared
content-addressed result store.  On SIGTERM the service stops admitting
(503), finishes every admitted job, persists state, and exits 0.
"""

from __future__ import annotations

import asyncio
import json
import signal
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path

from repro import faults
from repro.engine import session_report
from repro.engine.store import ResultStore
from repro.service import state as jobstate
from repro.service.api import SpecError, parse_spec, spec_digest
from repro.service.metrics import MetricsRegistry
from repro.service.queue import AdmissionQueue, QueueFullError
from repro.service.state import Job, JobStore
from repro.service.workers import WorkerPool, execute_spec

_MAX_REQUEST_LINE = 8192
_MAX_HEADERS = 100
_MAX_BODY = 8 << 20  # store-proxy entry blobs ride POST/PUT bodies too

_STATUS_TEXT = {
    200: "OK", 202: "Accepted", 204: "No Content", 400: "Bad Request",
    404: "Not Found", 405: "Method Not Allowed", 410: "Gone",
    412: "Precondition Failed",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``stfm-sim serve`` needs to stand up a service."""

    host: str = "127.0.0.1"
    port: int = 8765  # 0 = pick a free port (tests)
    workers: int = 2
    queue_limit: int = 32
    engine_jobs: int = 1  # simulation processes per running job
    cache_dir: "str | None" = None  # None disables the shared store
    state_dir: str = "stfm-service-state"
    job_timeout: "float | None" = None  # watchdog deadline per job, seconds


class SimulationService:
    """One service instance: queue, workers, state, metrics, HTTP."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.store = (
            ResultStore(config.cache_dir) if config.cache_dir else None
        )
        self.state = JobStore(config.state_dir)
        self.jobs: dict[str, Job] = {}
        self._active_by_digest: dict[str, str] = {}
        self._by_idempotency: dict[str, str] = {}
        self._seq = 0
        self.queue = AdmissionQueue(config.queue_limit)
        self.pool = WorkerPool(
            self.queue,
            run_job=self._work_for,
            on_done=self._job_done,
            count=config.workers,
            job_timeout=config.job_timeout,
        )
        self.draining = False
        self.resumed_jobs = 0  # non-terminal jobs requeued at startup
        self._stop_requested = asyncio.Event()
        self._server: "asyncio.base_events.Server | None" = None
        self.port = config.port
        self._build_metrics()

    # -- metrics ------------------------------------------------------------
    def _build_metrics(self) -> None:
        m = MetricsRegistry()
        self.metrics = m
        m.gauge(
            "stfm_service_queue_depth",
            "Jobs admitted but not yet picked up by a worker.",
            read=lambda: self.queue.depth,
        )
        m.gauge(
            "stfm_service_inflight_jobs",
            "Jobs currently executing on the worker pool.",
            read=lambda: len(self.pool.inflight),
        )
        m.gauge(
            "stfm_service_draining",
            "1 while the service is draining after SIGTERM.",
            read=lambda: int(self.draining),
        )
        self.m_http = m.counter(
            "stfm_service_http_requests_total",
            "HTTP responses served, by status code.",
        )
        self.m_jobs = m.counter(
            "stfm_service_jobs_total",
            "Job admissions and outcomes, by event.",
        )
        self.m_wall = m.summary(
            "stfm_service_job_wall_seconds",
            "Wall-clock seconds per executed job.",
        )
        m.gauge(
            "stfm_store_hits_total",
            "Result-store lookups answered from disk (cross-client dedup).",
            read=lambda: self.store.hits if self.store else 0,
        )
        m.gauge(
            "stfm_store_misses_total",
            "Result-store lookups that required simulation.",
            read=lambda: self.store.misses if self.store else 0,
        )
        m.gauge(
            "stfm_store_entries",
            "Entries currently in the shared result store.",
            read=lambda: self.store.stats().entries if self.store else 0,
        )
        m.gauge(
            "stfm_engine_jobs_simulated_total",
            "Simulation jobs actually executed by this process's engine.",
            read=lambda: session_report().jobs_run,
        )
        m.gauge(
            "stfm_engine_cache_hits_total",
            "Engine cache hits (memory + disk) in this process.",
            read=lambda: session_report().hits,
        )
        m.gauge(
            "stfm_engine_retries_total",
            "Worker crash/timeout retries by this process's engine.",
            read=lambda: session_report().retries,
        )
        m.gauge(
            "stfm_engine_fallbacks_total",
            "Clean-room fallback attempts after fault-exhausted retries.",
            read=lambda: session_report().fallbacks,
        )
        m.gauge(
            "stfm_store_quarantined_total",
            "Corrupt result-store entries quarantined on read.",
            read=lambda: self.store.quarantined if self.store else 0,
        )
        m.gauge(
            "stfm_store_put_errors_total",
            "Best-effort result-store writes that failed (disk full, EIO).",
            read=lambda: self.store.put_errors if self.store else 0,
        )
        m.gauge(
            "stfm_service_watchdog_timeouts_total",
            "Jobs failed by the per-job deadline watchdog.",
            read=lambda: self.pool.watchdog_timeouts,
        )
        m.gauge(
            "stfm_faults_injected_total",
            "Faults fired by the STFM_SIM_FAULTS injection layer.",
            read=faults.injected_total,
        )
        self._register_extra_metrics(m)

    def _register_extra_metrics(self, m: MetricsRegistry) -> None:
        """Subclass hook: add metrics (the cluster coordinator does)."""

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> None:
        """Recover persisted state, start workers, open the listener."""
        jobs, requeue = self.state.recover()
        for job in jobs:
            self.jobs[job.id] = job
            self._seq = max(self._seq, job.seq)
            if job.idempotency_key:
                self._by_idempotency[job.idempotency_key] = job.id
        self.pool.start()
        self.resumed_jobs = len(requeue)
        for job in requeue:
            self._active_by_digest[job.digest] = job.id
            self.queue.submit(job.id, inflight=len(self.pool.inflight))
        self._server = await asyncio.start_server(
            self._handle, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def request_drain(self) -> None:
        """Signal-safe: stop admitting and let :meth:`run` finish up."""
        self.draining = True
        self._stop_requested.set()

    async def drain_and_stop(self) -> None:
        """Finish every admitted job, then shut everything down."""
        self.draining = True
        if self.pool.count > 0:
            await self.queue.join()
        await self.pool.stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def run(self) -> None:
        """Serve until SIGTERM/SIGINT, then drain gracefully."""
        await self.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, self.request_drain)
        print(
            f"stfm-sim service listening on "
            f"http://{self.config.host}:{self.port}",
            flush=True,
        )
        await self._stop_requested.wait()
        print("draining: finishing admitted jobs ...", flush=True)
        await self.drain_and_stop()
        print("drained; bye", flush=True)

    # -- job plumbing --------------------------------------------------------
    def _work_for(self, job_id: str):
        """Event-loop hook: mark RUNNING and build the blocking closure."""
        job = self.jobs[job_id]
        job.status = jobstate.RUNNING
        self.state.save(job)
        return partial(
            execute_spec,
            job.spec,
            store=self.store,
            engine_jobs=self.config.engine_jobs,
        )

    def _job_done(
        self, job_id: str, result: "dict | None", error: "str | None",
        wall: float,
    ) -> None:
        job = self.jobs[job_id]
        job.wall_time = wall
        if error is None:
            job.status = jobstate.DONE
            job.result = result
            self.m_jobs.inc(event="done")
        else:
            job.status = jobstate.FAILED
            job.error = error
            self.m_jobs.inc(event="failed")
        self.m_wall.observe(wall)
        if self._active_by_digest.get(job.digest) == job_id:
            del self._active_by_digest[job.digest]
        self.state.save(job)

    def _submit(
        self, raw_spec: object, idempotency_key: "str | None" = None
    ) -> tuple[int, dict]:
        spec = parse_spec(raw_spec)  # SpecError → 400 (handled by caller)
        normalized = spec.normalized()
        digest = spec_digest(normalized)
        if idempotency_key is not None:
            # A retried POST (response lost, connection dropped) carries
            # the same key as the original attempt and must land on the
            # job that attempt created — even if it finished meanwhile.
            known = self._by_idempotency.get(idempotency_key)
            if known is not None and known in self.jobs:
                self.m_jobs.inc(event="idempotent_replay")
                view = self.jobs[known].view()
                view["deduplicated"] = True
                return 200, view
        active = self._active_by_digest.get(digest)
        if active is not None:
            self.m_jobs.inc(event="coalesced")
            job = self.jobs[active]
            if idempotency_key is not None:
                self._by_idempotency[idempotency_key] = job.id
            view = job.view()
            view["deduplicated"] = True
            return 200, view
        self._seq += 1
        job = Job(
            id=f"{digest[:12]}-{self._seq:04d}",
            spec=normalized,
            digest=digest,
            seq=self._seq,
            idempotency_key=idempotency_key,
        )
        try:
            self.queue.submit(job.id, inflight=len(self.pool.inflight))
        except QueueFullError:
            self._seq -= 1
            self.m_jobs.inc(event="rejected")
            raise
        self.jobs[job.id] = job
        self._active_by_digest[digest] = job.id
        if idempotency_key is not None:
            self._by_idempotency[idempotency_key] = job.id
        self.state.save(job)
        self.m_jobs.inc(event="submitted")
        view = job.view()
        view["deduplicated"] = False
        view["location"] = f"/v1/jobs/{job.id}"
        return 202, view

    # -- HTTP ---------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        status, headers, body = 500, {}, b""
        try:
            request = await _read_request(reader)
            if request is None:
                writer.close()
                return
            method, path, req_headers, req_body = request
            status, headers, body = self._route(
                method, path, req_headers, req_body
            )
        except _HttpError as exc:
            status, headers, body = _json_response(
                exc.status, {"error": exc.message}
            )
        except Exception as exc:  # never kill the server on one request
            status, headers, body = _json_response(
                500, {"error": f"{type(exc).__name__}: {exc}"}
            )
        try:
            self.m_http.inc(code=str(status))
            writer.write(_serialize_response(status, headers, body))
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _route(
        self, method: str, path: str, headers: dict, body: bytes
    ) -> tuple[int, dict, bytes]:
        if path == "/healthz" and method == "GET":
            return _json_response(200, self._health())
        if path == "/metrics" and method == "GET":
            return (
                200,
                {"Content-Type": "text/plain; version=0.0.4; charset=utf-8"},
                self.metrics.render().encode(),
            )
        if path == "/v1/jobs" and method == "POST":
            return self._route_submit(headers, body)
        if path.startswith("/v1/jobs/") and method == "GET":
            return self._route_job(path[len("/v1/jobs/"):], with_result=False)
        if path == "/v1/results" and method == "GET":
            return self._route_results_index()
        if path.startswith("/v1/results/") and method == "GET":
            return self._route_job(
                path[len("/v1/results/"):], with_result=True
            )
        extra = self._route_extra(method, path, headers, body)
        if extra is not None:
            return extra
        if path in ("/v1/jobs",) or path.startswith(("/v1/", "/healthz", "/metrics")):
            raise _HttpError(405, f"{method} not allowed on {path}")
        raise _HttpError(404, f"no such endpoint: {path}")

    def _route_extra(
        self, method: str, path: str, headers: dict, body: bytes
    ) -> "tuple[int, dict, bytes] | None":
        """Subclass hook: extra endpoints (the coordinator's lease and
        store-proxy routes).  None means 'not mine'."""
        return None

    def _route_submit(
        self, headers: dict, body: bytes
    ) -> tuple[int, dict, bytes]:
        if self.draining:
            raise _HttpError(503, "service is draining; not accepting jobs")
        try:
            raw = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise _HttpError(400, "request body is not valid JSON") from None
        try:
            status, view = self._submit(
                raw, idempotency_key=headers.get("idempotency-key")
            )
        except SpecError as exc:
            raise _HttpError(400, str(exc)) from None
        except QueueFullError as exc:
            status, headers, payload = _json_response(
                429,
                {
                    "error": "admission queue is full",
                    "retry_after": exc.retry_after,
                },
            )
            headers["Retry-After"] = str(exc.retry_after)
            return status, headers, payload
        return _json_response(status, view)

    def _route_job(
        self, job_id: str, with_result: bool
    ) -> tuple[int, dict, bytes]:
        job = self.jobs.get(job_id)
        if job is None:
            raise _HttpError(404, f"unknown job {job_id!r}")
        if not with_result:
            return _json_response(200, job.view())
        if job.status in jobstate.TERMINAL:
            return _json_response(200, job.view(include_result=True))
        return _json_response(202, job.view())

    def _route_results_index(self) -> tuple[int, dict, bytes]:
        """``GET /v1/results``: list every known job (no payloads).

        Submission order (the per-service sequence number), so a client
        can page through history deterministically; results themselves
        stay behind ``/v1/results/<id>``.
        """
        listing = [
            {
                "id": job.id,
                "spec_digest": job.digest,
                "status": job.status,
            }
            for job in sorted(self.jobs.values(), key=lambda j: j.seq)
        ]
        return _json_response(200, {"results": listing, "count": len(listing)})

    def _health(self) -> dict:
        by_status: dict[str, int] = {}
        for job in self.jobs.values():
            by_status[job.status] = by_status.get(job.status, 0) + 1
        return {
            "status": "draining" if self.draining else "ok",
            "queue_depth": self.queue.depth,
            "inflight": len(self.pool.inflight),
            "workers": self.pool.count,
            "jobs": by_status,
            "store": self.store is not None,
        }


# -- HTTP wire helpers -------------------------------------------------------


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


async def _read_request(
    reader: asyncio.StreamReader,
) -> "tuple[str, str, dict, bytes] | None":
    """Parse one request; None for an immediately-closed connection."""
    try:
        line = await reader.readline()
    except (ConnectionError, OSError):
        return None
    if not line:
        return None
    if len(line) > _MAX_REQUEST_LINE:
        raise _HttpError(400, "request line too long")
    parts = line.decode("latin-1").split()
    if len(parts) != 3:
        raise _HttpError(400, "malformed request line")
    method, target, _version = parts
    if method not in ("GET", "POST", "PUT"):
        raise _HttpError(405, f"unsupported method {method}")
    headers = {}
    for _ in range(_MAX_HEADERS):
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        if b":" in line:
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
    else:
        raise _HttpError(400, "too many headers")
    body = b""
    if method in ("POST", "PUT"):
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "bad Content-Length") from None
        if length > _MAX_BODY:
            raise _HttpError(413, "request body too large")
        if length:
            body = await reader.readexactly(length)
    path = target.split("?", 1)[0]
    return method, path, headers, body


def _json_response(status: int, payload: dict) -> tuple[int, dict, bytes]:
    return (
        status,
        {"Content-Type": "application/json"},
        (json.dumps(payload) + "\n").encode(),
    )


def _serialize_response(status: int, headers: dict, body: bytes) -> bytes:
    reason = _STATUS_TEXT.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    headers = {"Connection": "close", "Content-Length": str(len(body)), **headers}
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def serve(config: ServiceConfig) -> int:
    """Blocking entry point for ``stfm-sim serve``."""
    service = SimulationService(config)
    asyncio.run(service.run())
    return 0
