"""The service's API schema: job specs, validation, result payloads.

A *job spec* is the JSON body of ``POST /v1/jobs``.  Two kinds exist:

* ``{"kind": "experiment", "experiment": "fig3", "scale": "tiny"}`` —
  run one registered paper experiment at a named scale (optionally with
  a ``seed`` override, exactly like ``stfm-sim run --seed``);
* ``{"kind": "workload", "benchmarks": ["mcf", "hmmer"],
  "policy": "stfm"}`` — run an ad-hoc multiprogrammed workload
  (optional ``policy_kwargs``, ``budget``, ``seed``, ``num_cores``).

Validation is strict — unknown keys, unknown benchmarks/policies and
out-of-range sizes are rejected with :class:`SpecError` (HTTP 400) at
admission time, so the queue only ever holds runnable work.  A spec's
canonical JSON form yields a stable :func:`spec_digest`, which the
server uses to coalesce identical in-flight submissions across clients.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.experiments import EXPERIMENTS, SCALES
from repro.schedulers.registry import available_policies
from repro.sim.results import WorkloadResult
from repro.workloads.spec2006 import benchmark


class SpecError(ValueError):
    """A submitted job spec is malformed (maps to HTTP 400)."""


#: Admission-time ceilings: a shared service must bound the work a
#: single request can demand.
MAX_BUDGET = 10_000_000
MAX_CORES = 64

_EXPERIMENT_KEYS = frozenset({"kind", "experiment", "scale", "seed"})
_WORKLOAD_KEYS = frozenset(
    {"kind", "benchmarks", "policy", "policy_kwargs", "budget", "seed",
     "num_cores"}
)


@dataclass(frozen=True)
class JobSpec:
    """A validated job submission (either kind; unused fields are None)."""

    kind: str
    experiment: "str | None" = None
    scale: str = "small"
    seed: "int | None" = None
    benchmarks: tuple[str, ...] = ()
    policy: str = "fr-fcfs"
    policy_kwargs: dict = field(default_factory=dict)
    budget: int = 20_000
    num_cores: "int | None" = None

    def normalized(self) -> dict:
        """Canonical JSON-ready form — the identity :func:`spec_digest`
        hashes and the form persisted in job state files."""
        if self.kind == "experiment":
            return {
                "kind": "experiment",
                "experiment": self.experiment,
                "scale": self.scale,
                "seed": self.seed,
            }
        return {
            "kind": "workload",
            "benchmarks": list(self.benchmarks),
            "policy": self.policy,
            "policy_kwargs": self.policy_kwargs,
            "budget": self.budget,
            "seed": 0 if self.seed is None else self.seed,
            "num_cores": self.num_cores or max(len(self.benchmarks), 2),
        }

    def describe(self) -> str:
        if self.kind == "experiment":
            return f"experiment {self.experiment} @{self.scale}"
        return f"workload {'+'.join(self.benchmarks)} under {self.policy}"


def spec_digest(spec: "JobSpec | dict") -> str:
    """SHA-256 of a spec's canonical JSON — stable across key order."""
    normalized = spec.normalized() if isinstance(spec, JobSpec) else spec
    blob = json.dumps(normalized, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _require_int(raw: dict, key: str, minimum: int, maximum: int) -> int:
    value = raw[key]
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(f"'{key}' must be an integer")
    if not minimum <= value <= maximum:
        raise SpecError(f"'{key}' must be in [{minimum}, {maximum}]")
    return value


def parse_spec(raw: object) -> JobSpec:
    """Validate a decoded JSON body into a :class:`JobSpec`.

    Raises:
        SpecError: naming the first problem found.
    """
    if not isinstance(raw, dict):
        raise SpecError("job spec must be a JSON object")
    kind = raw.get("kind")
    if kind == "experiment":
        return _parse_experiment(raw)
    if kind == "workload":
        return _parse_workload(raw)
    raise SpecError("'kind' must be 'experiment' or 'workload'")


def _parse_experiment(raw: dict) -> JobSpec:
    unknown = set(raw) - _EXPERIMENT_KEYS
    if unknown:
        raise SpecError(f"unknown spec key(s): {', '.join(sorted(unknown))}")
    experiment = raw.get("experiment")
    if not isinstance(experiment, str) or experiment.lower() not in EXPERIMENTS:
        raise SpecError(
            f"'experiment' must be one of: {', '.join(EXPERIMENTS)}"
        )
    scale = raw.get("scale", "small")
    if scale not in SCALES:
        raise SpecError(f"'scale' must be one of: {', '.join(SCALES)}")
    seed = None
    if raw.get("seed") is not None:
        seed = _require_int(raw, "seed", 0, 2**32)
    return JobSpec(
        kind="experiment", experiment=experiment.lower(), scale=scale,
        seed=seed,
    )


def _parse_workload(raw: dict) -> JobSpec:
    unknown = set(raw) - _WORKLOAD_KEYS
    if unknown:
        raise SpecError(f"unknown spec key(s): {', '.join(sorted(unknown))}")
    names = raw.get("benchmarks")
    if (
        not isinstance(names, list)
        or not names
        or not all(isinstance(n, str) for n in names)
    ):
        raise SpecError("'benchmarks' must be a non-empty list of names")
    for name in names:
        try:
            benchmark(name)
        except KeyError:
            raise SpecError(f"unknown benchmark {name!r}") from None
    policy = raw.get("policy", "fr-fcfs")
    known = available_policies(include_extensions=True)
    if policy not in known:
        raise SpecError(f"'policy' must be one of: {', '.join(known)}")
    kwargs = raw.get("policy_kwargs", {})
    if not isinstance(kwargs, dict) or not all(
        isinstance(k, str) for k in kwargs
    ):
        raise SpecError("'policy_kwargs' must be an object with string keys")
    budget = 20_000
    if raw.get("budget") is not None:
        budget = _require_int(raw, "budget", 1, MAX_BUDGET)
    seed = 0
    if raw.get("seed") is not None:
        seed = _require_int(raw, "seed", 0, 2**32)
    num_cores = max(len(names), 2)
    if raw.get("num_cores") is not None:
        num_cores = _require_int(raw, "num_cores", len(names), MAX_CORES)
    return JobSpec(
        kind="workload",
        benchmarks=tuple(names),
        policy=policy,
        policy_kwargs=kwargs,
        budget=budget,
        seed=seed,
        num_cores=num_cores,
    )


def workload_result_to_dict(result: WorkloadResult) -> dict:
    """JSON-serializable form of one ad-hoc workload result."""
    return {
        "policy": result.policy,
        "unfairness": result.unfairness,
        "weighted_speedup": result.weighted_speedup,
        "hmean_speedup": result.hmean_speedup,
        "sum_of_ipcs": result.sum_of_ipcs,
        "threads": [
            {
                "name": t.name,
                "ipc_alone": t.ipc_alone,
                "ipc_shared": t.ipc_shared,
                "mcpi_alone": t.mcpi_alone,
                "mcpi_shared": t.mcpi_shared,
                "slowdown": t.slowdown,
                "row_hit_rate_shared": t.row_hit_rate_shared,
            }
            for t in result.threads
        ],
        "extras": {k: _plain(v) for k, v in result.extras.items()},
    }


def _plain(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    return str(value)
