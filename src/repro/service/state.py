"""Crash-safe job-state persistence.

Every job transition (queued → running → done/failed) is written
atomically to ``<state_dir>/<job id>.json`` before it is reported to
clients, so a server that crashes or is restarted can reconstruct its
world from the directory alone: terminal jobs are re-reported as-is,
and jobs that were queued — or *running* when the process died — are
re-queued.  Re-running is safe because execution is deterministic and
goes through the content-addressed result store: a job that had already
finished its sub-simulations resumes from cache hits.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: States a job can rest in; RUNNING recovers to QUEUED on restart.
TERMINAL = (DONE, FAILED)


@dataclass
class Job:
    """One submitted job and everything the service knows about it."""

    id: str
    spec: dict  # the normalized spec (api.JobSpec.normalized())
    digest: str
    status: str = QUEUED
    seq: int = 0
    error: "str | None" = None
    result: "dict | None" = None
    wall_time: "float | None" = None
    resumed: bool = False
    #: Client-supplied Idempotency-Key; retried POSTs with the same key
    #: land on this job instead of creating a duplicate.
    idempotency_key: "str | None" = None
    #: Cluster bookkeeping: delivery attempts (1 = first lease) and the
    #: runner that produced the terminal state.
    attempts: int = 0
    runner: "str | None" = None

    def view(self, include_result: bool = False) -> dict:
        """The JSON shape the HTTP endpoints return."""
        view = {
            "id": self.id,
            "status": self.status,
            "spec": self.spec,
            "spec_digest": self.digest,
            "resumed": self.resumed,
        }
        if self.error is not None:
            view["error"] = self.error
        if self.wall_time is not None:
            view["wall_seconds"] = self.wall_time
        if self.attempts:
            view["attempts"] = self.attempts
        if self.runner is not None:
            view["runner"] = self.runner
        if include_result and self.result is not None:
            view["result"] = self.result
        return view

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "spec": self.spec,
            "digest": self.digest,
            "status": self.status,
            "seq": self.seq,
            "error": self.error,
            "result": self.result,
            "wall_time": self.wall_time,
            "idempotency_key": self.idempotency_key,
            "attempts": self.attempts,
            "runner": self.runner,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "Job":
        return cls(
            id=raw["id"],
            spec=raw["spec"],
            digest=raw["digest"],
            status=raw["status"],
            seq=raw.get("seq", 0),
            error=raw.get("error"),
            result=raw.get("result"),
            wall_time=raw.get("wall_time"),
            idempotency_key=raw.get("idempotency_key"),
            attempts=raw.get("attempts", 0),
            runner=raw.get("runner"),
        )


class JobStore:
    """Atomic one-file-per-job persistence under one directory."""

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)

    def save(self, job: Job) -> None:
        """Persist one job atomically (tmp + rename)."""
        path = self.root / f"{job.id}.json"
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(job.to_dict(), handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def load_all(self) -> list[Job]:
        """Read every job file; corrupt entries are skipped."""
        jobs = []
        for path in sorted(self.root.glob("*.json")):
            try:
                jobs.append(Job.from_dict(json.loads(path.read_text())))
            except (OSError, ValueError, KeyError, TypeError):
                continue
        return jobs

    def recover(self) -> tuple[list[Job], list[Job]]:
        """Load persisted jobs, re-queueing interrupted ones.

        Returns ``(all jobs, jobs to re-enqueue)``; non-terminal jobs
        (queued, or running when the previous process died) come back as
        QUEUED with ``resumed=True`` and are persisted in that state.
        The requeue list is ordered by admission sequence, not file
        name, so a restarted sweep re-dispatches in submission order.
        """
        jobs = self.load_all()
        requeue = []
        for job in jobs:
            if job.status not in TERMINAL:
                job.status = QUEUED
                job.resumed = True
                self.save(job)
                requeue.append(job)
        requeue.sort(key=lambda job: job.seq)
        return jobs, requeue
