"""Prometheus-text metrics for the simulation service.

A minimal registry in the Prometheus exposition format (text version
0.0.4): counters and gauges with optional labels, gauges that read a
callback at scrape time (queue depth, in-flight jobs, store counters),
and a summary-style pair (``_sum``/``_count``) for per-job wall time.

All mutation happens on the event loop; values sampled from other
layers at scrape time (the engine session report, the result store's
hit/miss counters) are plain int reads and need no coordination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable


def _format_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape(str(value))}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


@dataclass
class Metric:
    """Base: a named family of labelled samples."""

    name: str
    help: str
    mtype: str = "untyped"

    def samples(self) -> Iterable[tuple[str, dict, float]]:
        raise NotImplementedError

    def render(self) -> str:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.mtype}",
        ]
        for name, labels, value in self.samples():
            lines.append(f"{name}{_format_labels(labels)} {_format_value(value)}")
        return "\n".join(lines)


@dataclass
class Counter(Metric):
    """Monotonic counter, optionally split by one label set per series."""

    mtype: str = "counter"
    _series: dict[tuple, float] = field(default_factory=dict)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = tuple(sorted(labels.items()))
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self._series.get(tuple(sorted(labels.items())), 0.0)

    def samples(self):
        if not self._series:
            return [(self.name, {}, 0.0)]
        return [
            (self.name, dict(key), value)
            for key, value in sorted(self._series.items())
        ]


@dataclass
class Gauge(Metric):
    """Instantaneous value — set directly or read from a callback."""

    mtype: str = "gauge"
    read: "Callable[[], float] | None" = None
    _value: float = 0.0

    def set(self, value: float) -> None:
        self._value = value

    def samples(self):
        value = self.read() if self.read is not None else self._value
        return [(self.name, {}, float(value))]


@dataclass
class MultiGauge(Metric):
    """Gauge family whose labelled samples come from one callback.

    The callback returns ``(labels, value)`` pairs at scrape time —
    how the coordinator exposes per-runner series (active leases,
    completions) without registering a metric per runner.
    """

    mtype: str = "gauge"
    read: "Callable[[], Iterable[tuple[dict, float]]] | None" = None

    def samples(self):
        if self.read is None:
            return []
        return [
            (self.name, dict(labels), float(value))
            for labels, value in self.read()
        ]


@dataclass
class Summary(Metric):
    """``_sum``/``_count`` pair (a label-less Prometheus summary)."""

    mtype: str = "summary"
    _sum: float = 0.0
    _count: int = 0

    def observe(self, value: float) -> None:
        self._sum += value
        self._count += 1

    def samples(self):
        return [
            (f"{self.name}_sum", {}, self._sum),
            (f"{self.name}_count", {}, float(self._count)),
        ]


class MetricsRegistry:
    """Ordered collection of metrics rendered into one exposition page."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def counter(self, name: str, help: str) -> Counter:
        return self._add(Counter(name=name, help=help))

    def gauge(
        self, name: str, help: str, read: "Callable[[], float] | None" = None
    ) -> Gauge:
        return self._add(Gauge(name=name, help=help, read=read))

    def multi_gauge(
        self,
        name: str,
        help: str,
        read: "Callable[[], Iterable[tuple[dict, float]]] | None" = None,
    ) -> MultiGauge:
        return self._add(MultiGauge(name=name, help=help, read=read))

    def summary(self, name: str, help: str) -> Summary:
        return self._add(Summary(name=name, help=help))

    def _add(self, metric):
        if metric.name in self._metrics:
            raise ValueError(f"duplicate metric {metric.name!r}")
        self._metrics[metric.name] = metric
        return metric

    def render(self) -> str:
        """The whole registry as Prometheus text (version 0.0.4)."""
        return "\n".join(m.render() for m in self._metrics.values()) + "\n"
