"""Bounded admission queue with backpressure and targeted takes.

The service never buffers unbounded work: admission happens on the
event loop (single-threaded, so check-then-put is race-free), and a
full queue rejects the submission — the HTTP layer turns that into
``429 Too Many Requests`` with a ``Retry-After`` estimate derived from
observed job wall times.  Clients that honor the hint converge on the
service's actual throughput instead of timing out deep in a queue.

Two consumers drain the queue: the in-process worker pool ``await``\\ s
:meth:`AdmissionQueue.get` (the single-process ``serve`` path), while
the cluster coordinator grants leases synchronously on lease requests
via :meth:`AdmissionQueue.try_take` — which may pick a *specific*
pending job (cache-affinity routing by spec digest), not just the head.
:meth:`AdmissionQueue.requeue` returns an expired lease's job to the
front without re-counting it, so :meth:`join` still means "every
admitted job reached a terminal state exactly once".
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Callable, Sequence


class QueueFullError(Exception):
    """Admission rejected: the queue is at capacity."""

    def __init__(self, retry_after: int) -> None:
        super().__init__(f"queue full; retry after {retry_after}s")
        self.retry_after = retry_after


class AdmissionQueue:
    """A deque of job ids with explicit admission control.

    Built on a deque plus a wake-up token queue (rather than a plain
    ``asyncio.Queue``) so synchronous consumers can remove arbitrary
    pending entries while async consumers block on :meth:`get`.
    """

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError("queue limit must be at least 1")
        self.limit = limit
        self._pending: deque[str] = deque()
        self._signal: asyncio.Queue = asyncio.Queue()
        self._unfinished = 0
        self._idle = asyncio.Event()
        self._idle.set()
        # Wall-time bookkeeping for the Retry-After estimate.
        self._completed = 0
        self._total_seconds = 0.0

    @property
    def depth(self) -> int:
        """Jobs admitted but not yet picked up by a consumer."""
        return len(self._pending)

    @property
    def full(self) -> bool:
        return len(self._pending) >= self.limit

    @property
    def unfinished(self) -> int:
        """Admitted jobs that have not been marked done yet."""
        return self._unfinished

    def submit(self, job_id: str, inflight: int = 0) -> None:
        """Admit a job id, or raise :class:`QueueFullError`.

        Args:
            job_id: The job to enqueue.
            inflight: Currently-executing jobs, folded into the
                Retry-After estimate of a rejection.
        """
        if self.full:
            raise QueueFullError(self.retry_after(inflight))
        self._pending.append(job_id)
        self._unfinished += 1
        self._idle.clear()
        self._signal.put_nowait(None)

    def requeue(self, job_id: str) -> None:
        """Put a previously-taken job back at the *front* (redelivery
        after a lease expired).  Does not re-count it: ``join`` still
        waits for exactly one completion per admission."""
        self._pending.appendleft(job_id)
        self._signal.put_nowait(None)

    def retry_after(self, inflight: int = 0) -> int:
        """Seconds until a queue slot plausibly frees up.

        Mean observed job wall time scaled by the backlog, clamped to
        [1, 120]; before any job has completed the estimate is 1s.
        """
        if not self._completed:
            return 1
        mean = self._total_seconds / self._completed
        estimate = mean * max(1, self.depth + inflight)
        return max(1, min(120, int(estimate + 0.5)))

    def observe(self, wall_seconds: float) -> None:
        """Record one completed job's wall time."""
        self._completed += 1
        self._total_seconds += wall_seconds

    async def get(self) -> str:
        """Wait for (and remove) the oldest pending job id."""
        while True:
            await self._signal.get()
            if self._pending:
                return self._pending.popleft()
            # A sync consumer stole the entry this token announced;
            # go back to waiting.

    def try_take(
        self,
        chooser: "Callable[[Sequence[str]], str | None] | None" = None,
    ) -> "str | None":
        """Remove and return one pending job id without waiting.

        Args:
            chooser: Given the pending ids (oldest first), returns the
                one to take — or None to take nothing.  Defaults to the
                oldest.

        Returns:
            The taken job id, or None when nothing (acceptable) is
            pending.
        """
        if not self._pending:
            return None
        if chooser is None:
            return self._pending.popleft()
        pick = chooser(tuple(self._pending))
        if pick is None:
            return None
        try:
            self._pending.remove(pick)
        except ValueError:
            return None
        return pick

    def task_done(self) -> None:
        """One admitted job reached a terminal state."""
        if self._unfinished > 0:
            self._unfinished -= 1
        if self._unfinished == 0:
            self._idle.set()

    async def join(self) -> None:
        """Wait until every admitted job has been marked done."""
        await self._idle.wait()
