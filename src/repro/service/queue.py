"""Bounded admission queue with backpressure.

The service never buffers unbounded work: admission happens on the
event loop (single-threaded, so check-then-put is race-free), and a
full queue rejects the submission — the HTTP layer turns that into
``429 Too Many Requests`` with a ``Retry-After`` estimate derived from
observed job wall times.  Clients that honor the hint converge on the
service's actual throughput instead of timing out deep in a queue.
"""

from __future__ import annotations

import asyncio


class QueueFullError(Exception):
    """Admission rejected: the queue is at capacity."""

    def __init__(self, retry_after: int) -> None:
        super().__init__(f"queue full; retry after {retry_after}s")
        self.retry_after = retry_after


class AdmissionQueue:
    """An ``asyncio.Queue`` of job ids with explicit admission control."""

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError("queue limit must be at least 1")
        self.limit = limit
        self._queue: asyncio.Queue[str] = asyncio.Queue(maxsize=limit)
        # Wall-time bookkeeping for the Retry-After estimate.
        self._completed = 0
        self._total_seconds = 0.0

    @property
    def depth(self) -> int:
        """Jobs admitted but not yet picked up by a worker."""
        return self._queue.qsize()

    @property
    def full(self) -> bool:
        return self._queue.full()

    def submit(self, job_id: str, inflight: int = 0) -> None:
        """Admit a job id, or raise :class:`QueueFullError`.

        Args:
            job_id: The job to enqueue.
            inflight: Currently-executing jobs, folded into the
                Retry-After estimate of a rejection.
        """
        if self._queue.full():
            raise QueueFullError(self.retry_after(inflight))
        self._queue.put_nowait(job_id)

    def retry_after(self, inflight: int = 0) -> int:
        """Seconds until a queue slot plausibly frees up.

        Mean observed job wall time scaled by the backlog, clamped to
        [1, 120]; before any job has completed the estimate is 1s.
        """
        if not self._completed:
            return 1
        mean = self._total_seconds / self._completed
        estimate = mean * max(1, self.depth + inflight)
        return max(1, min(120, int(estimate + 0.5)))

    def observe(self, wall_seconds: float) -> None:
        """Record one completed job's wall time."""
        self._completed += 1
        self._total_seconds += wall_seconds

    async def get(self) -> str:
        return await self._queue.get()

    def task_done(self) -> None:
        self._queue.task_done()

    async def join(self) -> None:
        await self._queue.join()
