"""Simulation-kernel selection (event-driven vs. naive per-cycle).

The simulator has two inner-loop implementations that produce
bit-identical results:

* ``event`` (default) — the event-driven kernel: the controller caches
  per-channel candidate scans between state changes and ``CmpSystem.run``
  jumps over provably-inert cycle ranges (see DESIGN.md §3.14).
* ``naive`` — the original tick-every-DRAM-cycle loop with eager
  candidate scans, kept as a differential-testing oracle.

Selection uses the ``STFM_SIM_KERNEL`` environment variable, following
the same pattern as ``STFM_SIM_SANITIZE`` / ``STFM_SIM_FAULTS``: the
toggle is inherited by engine worker processes and never perturbs result
cache keys (results are identical either way, so cross-kernel cache
sharing is sound by construction).
"""

from __future__ import annotations

import os

KERNEL_ENV = "STFM_SIM_KERNEL"

#: Known kernel names.
KERNELS = ("event", "naive")


def kernel_name() -> str:
    """The selected simulation kernel ('event' unless overridden).

    Read at every call (not cached at import) so tests and the CLI can
    flip ``STFM_SIM_KERNEL`` at runtime.
    """
    value = os.environ.get(KERNEL_ENV, "").strip().lower()
    if not value:
        return "event"
    if value not in KERNELS:
        raise ValueError(
            f"{KERNEL_ENV}={value!r} is not a known kernel "
            f"(choose from: {', '.join(KERNELS)})"
        )
    return value


def event_kernel_enabled() -> bool:
    """True when the event-driven fast path should be used."""
    return kernel_name() == "event"
