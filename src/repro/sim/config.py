"""System configuration (the paper's Table 2)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.address import AddressMapper
from repro.dram.timing import DramTiming


#: DRAM channels per core count: "Channels scaled with cores: 1, 1, 2, 4
#: parallel lock-step 64-bit wide channels for respectively 2, 4, 8, 16
#: cores" (Table 2), so bigger systems are not bandwidth-starved by fiat.
_CHANNEL_SCALING = {1: 1, 2: 1, 4: 1, 8: 2, 16: 4}


@dataclass(frozen=True)
class SystemConfig:
    """Processor + DRAM system parameters.

    Defaults reproduce Table 2: 4 GHz cores with a 128-entry window,
    3-wide commit (one memory op per cycle), 64 MSHRs; a 128-entry
    request buffer with a 32-entry write buffer per controller channel;
    DDR2-800 timing; 8 banks with 2 KB per-chip row buffers; channels
    scaled with the core count.
    """

    num_cores: int = 4
    num_channels: int | None = None
    num_banks: int = 8
    num_rows: int = 1 << 14
    row_buffer_bytes: int = 2048
    chips_per_dimm: int = 8
    line_bytes: int = 64
    xor_bank_hash: bool = True
    timing: DramTiming = field(default_factory=DramTiming)
    window_size: int = 128
    commit_width: int = 3
    mshr_count: int = 64
    read_capacity: int = 128
    write_capacity: int = 32
    page_policy: str = "open"
    refresh_enabled: bool = False
    max_cycles: int = 400_000_000

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError("need at least one core")
        if self.page_policy not in ("open", "closed"):
            raise ValueError("page_policy must be 'open' or 'closed'")

    @property
    def channels(self) -> int:
        """Effective channel count (auto-scaled with cores by default)."""
        if self.num_channels is not None:
            return self.num_channels
        if self.num_cores in _CHANNEL_SCALING:
            return _CHANNEL_SCALING[self.num_cores]
        return max(1, self.num_cores // 4)

    def mapper(self) -> AddressMapper:
        return AddressMapper(
            num_channels=self.channels,
            num_banks=self.num_banks,
            num_rows=self.num_rows,
            row_buffer_bytes=self.row_buffer_bytes,
            chips_per_dimm=self.chips_per_dimm,
            line_bytes=self.line_bytes,
            xor_bank_hash=self.xor_bank_hash,
        )

    def memory_key(self) -> tuple:
        """Hashable identity of the *memory system* (for alone-run caching).

        Run-alone baselines depend only on the memory system and core
        microarchitecture, not on which other threads run — two shared
        configurations with the same memory system share baselines.
        """
        return (
            self.channels,
            self.num_banks,
            self.num_rows,
            self.row_buffer_bytes,
            self.chips_per_dimm,
            self.line_bytes,
            self.xor_bank_hash,
            self.timing,
            self.window_size,
            self.commit_width,
            self.mshr_count,
            self.read_capacity,
            self.write_capacity,
            self.page_policy,
            self.refresh_enabled,
        )
