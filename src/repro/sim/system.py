"""The CMP system: cores + memory controller, and the main loop.

The loop advances in DRAM-cycle quanta (10 CPU cycles): the controller
makes its scheduling decisions at the start of each DRAM cycle, then each
core executes the quantum, issuing new requests that become visible to
the controller on the next decision point — matching the paper's
controller, which "only needs to make a decision every DRAM cycle"
(Section 5.1).
"""

from __future__ import annotations

from repro.controller.controller import MemoryController
from repro.controller.request import MemoryRequest
from repro.cpu.core import Core, CoreSnapshot
from repro.cpu.trace import Trace
from repro.schedulers.base import SchedulingPolicy
from repro.sim.config import SystemConfig


class CmpSystem:
    """A chip multiprocessor sharing one DRAM memory controller."""

    def __init__(
        self,
        config: SystemConfig,
        traces: list[Trace],
        policy: SchedulingPolicy,
        instruction_budget: int | list[int],
        mlp_limits: list[int] | None = None,
        sanitize: bool | None = None,
    ) -> None:
        """Build the system.

        Args:
            sanitize: Attach the DRAM protocol sanitizer
                (:mod:`repro.analysis.protocol`) — every issued command
                is validated against DDR2 timing and a violation raises
                ``ProtocolViolation``.  ``None`` (default) defers to the
                ``STFM_SIM_SANITIZE`` environment toggle, which the CLI
                ``--sanitize`` flag sets so engine worker processes
                inherit it.  The sanitizer is observation-only: results
                are bit-identical either way.
        """
        if len(traces) > config.num_cores:
            raise ValueError("more traces than cores")
        if isinstance(instruction_budget, int):
            budgets = [instruction_budget] * len(traces)
        else:
            budgets = list(instruction_budget)
        if len(budgets) != len(traces):
            raise ValueError("need one instruction budget per trace")
        if mlp_limits is None:
            mlp_limits = [config.mshr_count] * len(traces)
        if len(mlp_limits) != len(traces):
            raise ValueError("need one MLP limit per trace")
        self.config = config
        self.mapper = config.mapper()
        self.controller = MemoryController(
            timing=config.timing,
            mapper=self.mapper,
            num_threads=len(traces),
            policy=policy,
            read_capacity=config.read_capacity,
            write_capacity=config.write_capacity,
            page_policy=config.page_policy,
            refresh_enabled=config.refresh_enabled,
        )
        self._finished = 0
        self.cores = [
            Core(
                core_id=i,
                trace=trace,
                submit=self._submit,
                instruction_budget=budgets[i],
                window_size=config.window_size,
                commit_width=config.commit_width,
                mshr_count=config.mshr_count,
                max_outstanding=mlp_limits[i],
                probe=self.controller.can_accept,
                on_snapshot=self._on_core_snapshot,
            )
            for i, trace in enumerate(traces)
        ]
        if sanitize is None:
            from repro.analysis.protocol import sanitize_enabled

            sanitize = sanitize_enabled()
        self.sanitizer = None
        if sanitize:
            from repro.analysis.protocol import ProtocolSanitizer

            self.sanitizer = ProtocolSanitizer(
                config.timing, self.mapper.num_channels, self.mapper.num_banks
            )
            self.controller.attach_sanitizer(self.sanitizer)
        # Wire STFM's Tshared source: the cores' memory-stall counters
        # (the paper communicates these with every memory request).
        if hasattr(policy, "set_tshared_source"):
            policy.set_tshared_source(
                lambda thread_id: self.cores[thread_id].memory_stall_cycles
            )
        self.now = 0

    def _submit(
        self, thread_id: int, address: int, is_write: bool, now: int
    ) -> MemoryRequest | None:
        request = self.controller.make_request(thread_id, address, is_write, now)
        if self.controller.submit(request, now):
            return request
        return None

    def _on_core_snapshot(self, core: Core) -> None:
        """O(1) finish detection: count budget crossings as they happen
        instead of polling every core's snapshot each quantum."""
        self._finished += 1

    def run(self) -> list[CoreSnapshot]:
        """Run until every core reaches its instruction budget.

        Traces loop by default, so early finishers keep applying memory
        pressure (their statistics are frozen at their own budget
        crossing).  A ``max_cycles`` safety net bounds runaway runs.

        Two kernels produce bit-identical results (DESIGN.md Section
        3.14): the *naive* kernel ticks every DRAM cycle; the *event*
        kernel (default) additionally proves windows of ticks inert and
        jumps over them.  ``STFM_SIM_KERNEL=naive`` selects the former.
        """
        from repro.sim.kernel import event_kernel_enabled

        if event_kernel_enabled():
            return self._run_event()
        return self._run_naive()

    def _run_naive(self) -> list[CoreSnapshot]:
        """Reference kernel: one controller decision every DRAM cycle."""
        quantum = self.config.timing.dram_cycle
        controller = self.controller
        cores = self.cores
        max_cycles = self.config.max_cycles
        num_cores = len(cores)
        now = self.now
        while now < max_cycles:
            controller.tick(now)
            for core in cores:
                core.step(now, quantum)
            now += quantum
            if self._finished >= num_cores:
                break
        self.now = now
        return [core.force_snapshot(now) for core in cores]

    def _run_event(self) -> list[CoreSnapshot]:
        """Event-driven kernel: skip provably inert DRAM cycles.

        After each live tick the loop asks every component for the first
        future time it could act — cores via :meth:`Core.quiet_state`,
        the controller via its in-service completion heap, refresh
        deadlines, and per-channel readiness bounds.  If that horizon
        lies beyond the next tick, the skipped window is replayed in
        closed form: the policy's per-cycle decision via
        ``fast_forward`` (exact-replay for STFM, collapse-to-one for
        PAR-BS, no-op for the stateless policies), the cores' stall/idle
        counters via ``bulk_advance``, and the controller's write-drain
        hysteresis via ``fast_forward_drain``.  Every replay is
        bit-identical to having ticked, so both kernels produce the same
        results (enforced by tests/test_event_kernel.py).
        """
        quantum = self.config.timing.dram_cycle
        controller = self.controller
        policy = controller.policy
        cores = self.cores
        max_cycles = self.config.max_cycles
        num_cores = len(cores)
        now = self.now
        states: list[str | None] = [None] * num_cores
        while now < max_cycles:
            issued_before = controller.commands_issued
            controller.tick(now)
            for core in cores:
                core.step(now, quantum)
            now += quantum
            if self._finished >= num_cores:
                break
            if controller.commands_issued != issued_before:
                # Issue-gate heuristic: a tick that issued a command is
                # usually followed by more issue ticks (bursts stream
                # back-to-back), so the jump analysis would almost
                # always fail — skip it and retry on the first quiet
                # tick.  Purely a performance gate: which ticks run
                # live never changes what they compute.
                continue
            horizon = self._quiet_horizon(now, quantum, max_cycles, states)
            if horizon > now:
                ticks = (horizon - now) // quantum
                slopes = [1 if s == "stall" else 0 for s in states]
                policy.fast_forward(now, ticks, slopes)
                span = ticks * quantum
                for core, state in zip(cores, states):
                    if state == "compute":
                        core.advance_compute(now, span, quantum)
                    else:
                        core.bulk_advance(state, span)
                controller.fast_forward_drain(ticks)
                now += span
                if self._finished >= num_cores:
                    # The last budget crossing can land exactly on the
                    # end of a replayed compute window; stop here like
                    # the naive loop does, not one live tick later.
                    break
        self.now = now
        return [core.force_snapshot(now) for core in cores]

    def _quiet_horizon(
        self,
        now: int,
        quantum: int,
        max_cycles: int,
        states: list,
    ) -> int:
        """Latest tick before which no scheduling decision can change.

        Ticks ``now .. horizon - quantum`` are inert; the tick at the
        returned horizon runs live.  Returns ``now`` when any component
        might act this tick.  ``states`` receives each core's
        classification ("idle"/"stall"/"compute") for the replay.

        Per-core constraints: the window must end before any core's
        earliest possible submit (so requests arrive only around live
        ticks, preserving the naive kernel's core interleaving), and
        before any committing core can cross its instruction budget (so
        the run loop's finish check fires on the same quantum).
        """
        controller = self.controller
        horizon = max_cycles
        # Channels first: a ready candidate is the most common reason a
        # tick must run live, and the check rides the warm candidate
        # caches — cheaper than classifying every core only to bail.
        for channel in controller.channels:
            bound = controller.channel_quiet_bound(channel, now, quantum)
            if bound <= now:
                return now
            if bound < horizon:
                horizon = bound
        uses_slopes = controller.policy.uses_stall_slopes
        for i, core in enumerate(self.cores):
            state, bound = core.inertia(now)
            if state is None:
                return now
            states[i] = state
            if state == "compute":
                if uses_slopes and core.window_has_inflight(now):
                    return now
                if core.snapshot is None:
                    # Budget-crossing cap: commits cannot outpace the
                    # commit width, so the crossing quantum is live.
                    remaining = (
                        core.instruction_budget - core.committed_instructions
                    )
                    width = core.commit_width
                    cap = now + (
                        ((remaining + width - 1) // width) // quantum
                    ) * quantum
                    if cap <= now:
                        return now
                    if cap < horizon:
                        horizon = cap
            if bound < horizon:
                # Stop before the quantum containing the earliest submit.
                bound = (bound // quantum) * quantum
                if bound <= now:
                    return now
                if bound < horizon:
                    horizon = bound
        heap = controller._in_service
        if heap:
            # Every pending completion sits in this heap; a core may wake
            # mid-quantum, so bound by the *floor* tick of the earliest.
            bound = (heap[0][0] // quantum) * quantum
            if bound <= now:
                return now
            if bound < horizon:
                horizon = bound
        if controller.refresh_enabled:
            for deadline in controller._next_refresh:
                bound = -(-deadline // quantum) * quantum
                if bound <= now:
                    return now
                if bound < horizon:
                    horizon = bound
        return horizon
