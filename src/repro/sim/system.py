"""The CMP system: cores + memory controller, and the main loop.

The loop advances in DRAM-cycle quanta (10 CPU cycles): the controller
makes its scheduling decisions at the start of each DRAM cycle, then each
core executes the quantum, issuing new requests that become visible to
the controller on the next decision point — matching the paper's
controller, which "only needs to make a decision every DRAM cycle"
(Section 5.1).
"""

from __future__ import annotations

from repro.controller.controller import MemoryController
from repro.controller.request import MemoryRequest
from repro.cpu.core import Core, CoreSnapshot
from repro.cpu.trace import Trace
from repro.schedulers.base import SchedulingPolicy
from repro.sim.config import SystemConfig


class CmpSystem:
    """A chip multiprocessor sharing one DRAM memory controller."""

    def __init__(
        self,
        config: SystemConfig,
        traces: list[Trace],
        policy: SchedulingPolicy,
        instruction_budget: int | list[int],
        mlp_limits: list[int] | None = None,
        sanitize: bool | None = None,
    ) -> None:
        """Build the system.

        Args:
            sanitize: Attach the DRAM protocol sanitizer
                (:mod:`repro.analysis.protocol`) — every issued command
                is validated against DDR2 timing and a violation raises
                ``ProtocolViolation``.  ``None`` (default) defers to the
                ``STFM_SIM_SANITIZE`` environment toggle, which the CLI
                ``--sanitize`` flag sets so engine worker processes
                inherit it.  The sanitizer is observation-only: results
                are bit-identical either way.
        """
        if len(traces) > config.num_cores:
            raise ValueError("more traces than cores")
        if isinstance(instruction_budget, int):
            budgets = [instruction_budget] * len(traces)
        else:
            budgets = list(instruction_budget)
        if len(budgets) != len(traces):
            raise ValueError("need one instruction budget per trace")
        if mlp_limits is None:
            mlp_limits = [config.mshr_count] * len(traces)
        if len(mlp_limits) != len(traces):
            raise ValueError("need one MLP limit per trace")
        self.config = config
        self.mapper = config.mapper()
        self.controller = MemoryController(
            timing=config.timing,
            mapper=self.mapper,
            num_threads=len(traces),
            policy=policy,
            read_capacity=config.read_capacity,
            write_capacity=config.write_capacity,
            page_policy=config.page_policy,
            refresh_enabled=config.refresh_enabled,
        )
        self.cores = [
            Core(
                core_id=i,
                trace=trace,
                submit=self._submit,
                instruction_budget=budgets[i],
                window_size=config.window_size,
                commit_width=config.commit_width,
                mshr_count=config.mshr_count,
                max_outstanding=mlp_limits[i],
            )
            for i, trace in enumerate(traces)
        ]
        if sanitize is None:
            from repro.analysis.protocol import sanitize_enabled

            sanitize = sanitize_enabled()
        self.sanitizer = None
        if sanitize:
            from repro.analysis.protocol import ProtocolSanitizer

            self.sanitizer = ProtocolSanitizer(
                config.timing, self.mapper.num_channels, self.mapper.num_banks
            )
            self.controller.attach_sanitizer(self.sanitizer)
        # Wire STFM's Tshared source: the cores' memory-stall counters
        # (the paper communicates these with every memory request).
        if hasattr(policy, "set_tshared_source"):
            policy.set_tshared_source(
                lambda thread_id: self.cores[thread_id].memory_stall_cycles
            )
        self.now = 0

    def _submit(
        self, thread_id: int, address: int, is_write: bool, now: int
    ) -> MemoryRequest | None:
        request = self.controller.make_request(thread_id, address, is_write, now)
        if self.controller.submit(request, now):
            return request
        return None

    def run(self) -> list[CoreSnapshot]:
        """Run until every core reaches its instruction budget.

        Traces loop by default, so early finishers keep applying memory
        pressure (their statistics are frozen at their own budget
        crossing).  A ``max_cycles`` safety net bounds runaway runs.
        """
        quantum = self.config.timing.dram_cycle
        controller = self.controller
        cores = self.cores
        max_cycles = self.config.max_cycles
        now = self.now
        unfinished = list(cores)
        while now < max_cycles:
            controller.tick(now)
            for core in cores:
                core.step(now, quantum)
            now += quantum
            if any(core.snapshot is not None for core in unfinished):
                unfinished = [c for c in unfinished if c.snapshot is None]
                if not unfinished:
                    break
        self.now = now
        return [core.force_snapshot(now) for core in cores]
