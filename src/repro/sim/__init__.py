"""Full-system simulation: configuration, the CMP system, and the
run-alone/run-shared experiment methodology (Section 6)."""

from repro.sim.config import SystemConfig
from repro.sim.results import ThreadResult, WorkloadResult
from repro.sim.runner import ExperimentRunner
from repro.sim.system import CmpSystem

__all__ = [
    "CmpSystem",
    "ExperimentRunner",
    "SystemConfig",
    "ThreadResult",
    "WorkloadResult",
]
