"""Time-series telemetry for simulation runs.

A :class:`TelemetrySampler` periodically records per-thread state while
a :class:`~repro.sim.system.CmpSystem` runs: committed instructions,
memory stall cycles, and — when the scheduler is STFM — its *estimated*
slowdowns.  This is how we validate the paper's central mechanism: the
hardware slowdown estimate (Section 3.2.2) tracking the measured
slowdown over time, and how phase changes interact with the
IntervalLength register resets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.system import CmpSystem


@dataclass
class TelemetrySample:
    """One snapshot of the system."""

    cycle: int
    instructions: list[int]
    stall_cycles: list[int]
    estimated_slowdowns: list[float] | None
    queued_reads: int
    fairness_mode: bool | None


@dataclass
class Telemetry:
    """A recorded run: samples plus simple access helpers."""

    samples: list[TelemetrySample] = field(default_factory=list)

    def series(self, attribute: str, thread: int | None = None) -> list:
        """Extract one per-sample series.

        Args:
            attribute: Sample field name.
            thread: For list-valued fields, which thread's element.
        """
        values = []
        for sample in self.samples:
            value = getattr(sample, attribute)
            if thread is not None and value is not None:
                value = value[thread]
            values.append(value)
        return values

    @property
    def cycles(self) -> list[int]:
        return [s.cycle for s in self.samples]

    def counter_samples(
        self, prefix: str = "stfm_sim"
    ) -> list[tuple[str, dict, float]]:
        """Final cumulative counters as ``(name, labels, value)`` samples.

        The shape :mod:`repro.service.metrics` renders, so a recorded
        run can be exported next to the service's own counters::

            stfm_sim_instructions_total{thread="0"} 4000
            stfm_sim_stall_cycles_total{thread="0"} 1212
            stfm_sim_cycles_total 51250
        """
        if not self.samples:
            return []
        last = self.samples[-1]
        samples: list[tuple[str, dict, float]] = []
        for i, value in enumerate(last.instructions):
            samples.append(
                (f"{prefix}_instructions_total", {"thread": str(i)}, float(value))
            )
        for i, value in enumerate(last.stall_cycles):
            samples.append(
                (f"{prefix}_stall_cycles_total", {"thread": str(i)}, float(value))
            )
        samples.append((f"{prefix}_cycles_total", {}, float(last.cycle)))
        return samples


class TelemetrySampler:
    """Samples a system every ``period`` CPU cycles while it runs."""

    def __init__(self, system: CmpSystem, period: int = 10_000) -> None:
        if period < system.config.timing.dram_cycle:
            raise ValueError("period must be at least one DRAM cycle")
        self.system = system
        self.period = period
        self.telemetry = Telemetry()

    def run(self) -> Telemetry:
        """Run the system to completion, sampling along the way.

        Equivalent to ``system.run()`` but interleaves sampling; returns
        the recorded telemetry (snapshots are also available on the
        system/cores as usual).
        """
        system = self.system
        quantum = system.config.timing.dram_cycle
        next_sample = 0
        max_cycles = system.config.max_cycles
        while system.now < max_cycles:
            if system.now >= next_sample:
                self._sample()
                next_sample += self.period
            system.controller.tick(system.now)
            for core in system.cores:
                core.step(system.now, quantum)
            system.now += quantum
            if all(core.snapshot is not None for core in system.cores):
                break
        self._sample()
        for core in system.cores:
            core.force_snapshot(system.now)
        return self.telemetry

    def _sample(self) -> None:
        system = self.system
        policy = system.controller.policy
        estimated = None
        fairness_mode = None
        if hasattr(policy, "slowdown_of"):
            estimated = [
                policy.slowdown_of(i) for i in range(len(system.cores))
            ]
            fairness_mode = policy.fairness_mode
        self.telemetry.samples.append(
            TelemetrySample(
                cycle=system.now,
                instructions=[c.committed_instructions for c in system.cores],
                stall_cycles=[c.memory_stall_cycles for c in system.cores],
                estimated_slowdowns=estimated,
                queued_reads=system.controller.queues.total_reads(),
                fairness_mode=fairness_mode,
            )
        )
