"""Result records of shared-workload runs and their formatting."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.fairness import unfairness_index
from repro.metrics.throughput import hmean_speedup, sum_of_ipcs, weighted_speedup


@dataclass(frozen=True)
class ThreadResult:
    """Per-thread outcome of one shared run (vs. its alone baseline)."""

    name: str
    ipc_alone: float
    ipc_shared: float
    mcpi_alone: float
    mcpi_shared: float
    slowdown: float
    row_hit_rate_shared: float = 0.0

    @property
    def relative_ipc(self) -> float:
        return self.ipc_shared / self.ipc_alone if self.ipc_alone else 0.0


@dataclass(frozen=True)
class WorkloadResult:
    """Outcome of one workload under one scheduling policy."""

    policy: str
    threads: tuple[ThreadResult, ...]
    extras: dict = field(default_factory=dict)

    @property
    def slowdowns(self) -> list[float]:
        return [t.slowdown for t in self.threads]

    @property
    def unfairness(self) -> float:
        return unfairness_index(self.slowdowns)

    @property
    def weighted_speedup(self) -> float:
        return weighted_speedup(
            [t.ipc_shared for t in self.threads],
            [t.ipc_alone for t in self.threads],
        )

    @property
    def hmean_speedup(self) -> float:
        return hmean_speedup(
            [t.ipc_shared for t in self.threads],
            [t.ipc_alone for t in self.threads],
        )

    @property
    def sum_of_ipcs(self) -> float:
        return sum_of_ipcs([t.ipc_shared for t in self.threads])

    def summary_row(self) -> dict:
        """Flat metric row, convenient for table printing."""
        return {
            "policy": self.policy,
            "unfairness": self.unfairness,
            "weighted_speedup": self.weighted_speedup,
            "hmean_speedup": self.hmean_speedup,
            "sum_of_ipcs": self.sum_of_ipcs,
        }


def format_table(headers: list[str], rows: list[list], precision: int = 2) -> str:
    """Simple monospace table used by the experiment harness output."""

    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.{precision}f}"
        return str(value)

    str_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in str_rows)) if str_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * width for width in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)
