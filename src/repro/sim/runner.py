"""Run-alone / run-shared experiment methodology (Section 6.2).

A thread's memory slowdown compares its shared-run MCPI against the MCPI
it achieves *running alone in the same memory system under FR-FCFS*.
The runner generates one trace per (benchmark, core slot), reuses it for
both the alone baseline and the shared run, and caches alone baselines
across workloads — the baseline depends only on the memory system, not
on the co-runners.
"""

from __future__ import annotations

from repro.cpu.core import CoreSnapshot
from repro.schedulers.base import SchedulingPolicy
from repro.schedulers.registry import make_policy
from repro.sim.config import SystemConfig
from repro.sim.results import ThreadResult, WorkloadResult
from repro.sim.system import CmpSystem
from repro.workloads.spec2006 import BenchmarkSpec, benchmark
from repro.workloads.synthetic import SyntheticTraceGenerator

Workload = list["str | BenchmarkSpec"]


def resolve_spec(item: "str | BenchmarkSpec") -> BenchmarkSpec:
    """Accept either a registry name or an explicit spec."""
    if isinstance(item, BenchmarkSpec):
        return item
    return benchmark(item)


class ExperimentRunner:
    """Runs workloads under scheduling policies and computes slowdowns."""

    def __init__(
        self,
        config: SystemConfig,
        instruction_budget: int = 20_000,
        seed: int = 0,
        min_reads: int = 100,
        max_budget_factor: int = 50,
    ) -> None:
        """Create a runner.

        Args:
            config: The system under test.
            instruction_budget: Base per-thread instruction budget.
            seed: Workload-generation seed.
            min_reads: Non-memory-intensive benchmarks get their budget
                extended so their trace contains at least this many demand
                reads — otherwise their MCPI (and thus slowdown) would be
                statistical noise.  The paper's uniform 100M-instruction
                budgets provide this implicitly.
            max_budget_factor: Cap on the budget extension.
        """
        if instruction_budget < 1:
            raise ValueError("instruction budget must be positive")
        self.config = config
        self.instruction_budget = instruction_budget
        self.seed = seed
        self.min_reads = min_reads
        self.max_budget_factor = max_budget_factor
        self._alone_cache: dict[tuple, CoreSnapshot] = {}
        self._trace_cache: dict[tuple, object] = {}

    def budget_for(self, name: "str | BenchmarkSpec") -> int:
        """Per-benchmark instruction budget (see ``min_reads``)."""
        spec = resolve_spec(name)
        base = self.instruction_budget
        if spec.mpki <= 0:
            return base
        needed = int(self.min_reads * 1000.0 / spec.mpki)
        return min(max(base, needed), base * self.max_budget_factor)

    # -- trace management ---------------------------------------------------
    def trace_for(
        self, name: "str | BenchmarkSpec", partition: int, num_partitions: int
    ):
        spec = resolve_spec(name)
        key = (spec, partition, num_partitions)
        trace = self._trace_cache.get(key)
        if trace is None:
            generator = SyntheticTraceGenerator(self.config.mapper(), self.seed)
            trace = generator.trace_for(
                spec,
                self.budget_for(name),
                partition=partition,
                num_partitions=num_partitions,
            )
            self._trace_cache[key] = trace
        return trace

    # -- alone baselines ------------------------------------------------------
    def alone_snapshot(
        self, name: "str | BenchmarkSpec", partition: int, num_partitions: int
    ) -> CoreSnapshot:
        """Run (or recall) the benchmark alone under FR-FCFS."""
        spec = resolve_spec(name)
        budget = self.budget_for(spec)
        key = (
            spec,
            partition,
            num_partitions,
            budget,
            self.seed,
            self.config.memory_key(),
        )
        snapshot = self._alone_cache.get(key)
        if snapshot is None:
            trace = self.trace_for(spec, partition, num_partitions)
            policy = make_policy("fr-fcfs", num_threads=1)
            system = CmpSystem(
                self.config,
                [trace],
                policy,
                budget,
                mlp_limits=[spec.mlp],
            )
            snapshot = system.run()[0]
            self._alone_cache[key] = snapshot
        return snapshot

    # -- shared runs ---------------------------------------------------------
    def run_workload(
        self,
        names: Workload,
        policy: str | SchedulingPolicy = "fr-fcfs",
        policy_kwargs: dict | None = None,
    ) -> WorkloadResult:
        """Run a multiprogrammed workload and compute all metrics.

        Args:
            names: Benchmark names or explicit specs, one per core
                (duplicates allowed — each core slot gets its own
                address partition).
            policy: Policy name (see :func:`repro.schedulers.make_policy`)
                or an already-constructed policy instance.
            policy_kwargs: Extra options for the policy factory.
        """
        if not names:
            raise ValueError("workload cannot be empty")
        if len(names) > self.config.num_cores:
            raise ValueError(
                f"{len(names)} benchmarks for {self.config.num_cores} cores"
            )
        specs = [resolve_spec(name) for name in names]
        num = len(specs)
        traces = [self.trace_for(spec, i, num) for i, spec in enumerate(specs)]
        if isinstance(policy, SchedulingPolicy):
            policy_obj = policy
            policy_name = policy.name
        else:
            policy_obj = make_policy(policy, num_threads=num, **(policy_kwargs or {}))
            policy_name = policy_obj.name
        budgets = [self.budget_for(spec) for spec in specs]
        mlp_limits = [spec.mlp for spec in specs]
        system = CmpSystem(
            self.config, traces, policy_obj, budgets, mlp_limits=mlp_limits
        )
        snapshots = system.run()

        threads = []
        for i, spec in enumerate(specs):
            alone = self.alone_snapshot(spec, i, num)
            shared = snapshots[i]
            mem_stats = system.controller.thread_stats[i]
            threads.append(
                ThreadResult(
                    name=spec.name,
                    ipc_alone=alone.ipc,
                    ipc_shared=shared.ipc,
                    mcpi_alone=alone.mcpi,
                    mcpi_shared=shared.mcpi,
                    slowdown=_slowdown(shared.mcpi, alone.mcpi),
                    row_hit_rate_shared=mem_stats.row_hit_rate,
                )
            )
        extras = {"cycles": system.now}
        if hasattr(policy_obj, "fairness_rule_fraction"):
            extras["fairness_rule_fraction"] = policy_obj.fairness_rule_fraction
        return WorkloadResult(
            policy=policy_name, threads=tuple(threads), extras=extras
        )

    def run_policies(
        self,
        names: Workload,
        policies: list[str],
        policy_kwargs: dict[str, dict] | None = None,
    ) -> dict[str, WorkloadResult]:
        """Run one workload under several policies (the case-study shape)."""
        kwargs = policy_kwargs or {}
        return {
            policy: self.run_workload(names, policy, kwargs.get(policy))
            for policy in policies
        }


def _slowdown(mcpi_shared: float, mcpi_alone: float) -> float:
    from repro.metrics.fairness import memory_slowdown

    return memory_slowdown(mcpi_shared, mcpi_alone)
