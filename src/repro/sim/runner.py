"""Run-alone / run-shared experiment methodology (Section 6.2).

A thread's memory slowdown compares its shared-run MCPI against the MCPI
it achieves *running alone in the same memory system under FR-FCFS*.
The runner decomposes workloads into simulation jobs and routes them
through the :mod:`repro.engine` subsystem: alone baselines are
deduplicated across workloads and policies (the baseline depends only on
the memory system, not on the co-runners), jobs run on a worker pool
when ``jobs > 1``, and payloads are memoized in memory and — when a
``cache_dir`` is given — in a content-addressed on-disk store shared
across processes and invocations.  ``jobs=1`` (the default) is the
serial in-process degenerate case, bit-identical to parallel execution.
"""

from __future__ import annotations

from repro.cpu.core import CoreSnapshot
from repro.engine.api import ExperimentEngine
from repro.engine.graph import ExperimentPlan
from repro.engine.jobs import (
    AloneJob,
    budget_for,
    build_trace,
    resolve_spec,
    snapshot_from_payload,
)
from repro.engine.store import ResultStore
from repro.schedulers.base import SchedulingPolicy
from repro.sim.config import SystemConfig
from repro.sim.results import ThreadResult, WorkloadResult
from repro.sim.system import CmpSystem
from repro.workloads.spec2006 import BenchmarkSpec

Workload = list["str | BenchmarkSpec"]


class ExperimentRunner:
    """Runs workloads under scheduling policies and computes slowdowns."""

    def __init__(
        self,
        config: SystemConfig,
        instruction_budget: int = 20_000,
        seed: int = 0,
        min_reads: int = 100,
        max_budget_factor: int = 50,
        jobs: int = 1,
        cache_dir: "str | None" = None,
        store: "ResultStore | None" = None,
        timeout: "float | None" = None,
        retries: int = 1,
    ) -> None:
        """Create a runner.

        Args:
            config: The system under test.
            instruction_budget: Base per-thread instruction budget.
            seed: Workload-generation seed.
            min_reads: Non-memory-intensive benchmarks get their budget
                extended so their trace contains at least this many demand
                reads — otherwise their MCPI (and thus slowdown) would be
                statistical noise.  The paper's uniform 100M-instruction
                budgets provide this implicitly.
            max_budget_factor: Cap on the budget extension.
            jobs: Simulation worker processes (1 = serial, in-process).
            cache_dir: Persist job results in this directory (see
                :class:`repro.engine.ResultStore`); None keeps results
                in memory only.
            store: An existing result store (overrides ``cache_dir``).
            timeout: Per-job wall-clock limit in seconds (parallel only).
            retries: Extra attempts after a worker crash or timeout.
        """
        if instruction_budget < 1:
            raise ValueError("instruction budget must be positive")
        self.config = config
        self.instruction_budget = instruction_budget
        self.seed = seed
        self.min_reads = min_reads
        self.max_budget_factor = max_budget_factor
        self.engine = ExperimentEngine(
            jobs=jobs,
            cache_dir=cache_dir,
            store=store,
            timeout=timeout,
            retries=retries,
        )
        # Identity caches on top of the engine's payload caches: repeat
        # calls return the *same* trace / snapshot objects.
        self._alone_cache: dict[str, CoreSnapshot] = {}
        self._trace_cache: dict[tuple, object] = {}

    @property
    def report(self):
        """Cumulative engine activity (jobs run / cached / failed ...)."""
        return self.engine.report

    def budget_for(self, name: "str | BenchmarkSpec") -> int:
        """Per-benchmark instruction budget (see ``min_reads``)."""
        return budget_for(
            resolve_spec(name),
            self.instruction_budget,
            self.min_reads,
            self.max_budget_factor,
        )

    def _plan(self) -> ExperimentPlan:
        return ExperimentPlan(
            self.config,
            instruction_budget=self.instruction_budget,
            seed=self.seed,
            min_reads=self.min_reads,
            max_budget_factor=self.max_budget_factor,
        )

    # -- trace management ---------------------------------------------------
    def trace_for(
        self, name: "str | BenchmarkSpec", partition: int, num_partitions: int
    ):
        spec = resolve_spec(name)
        budget = self.budget_for(spec)
        # The key carries everything the trace depends on — budget, seed
        # and memory system included — so entries stay valid if shared.
        key = (
            spec,
            partition,
            num_partitions,
            budget,
            self.seed,
            self.config.memory_key(),
        )
        trace = self._trace_cache.get(key)
        if trace is None:
            trace = build_trace(
                self.config, self.seed, spec, budget, partition, num_partitions
            )
            self._trace_cache[key] = trace
        return trace

    # -- alone baselines ------------------------------------------------------
    def alone_snapshot(
        self, name: "str | BenchmarkSpec", partition: int, num_partitions: int
    ) -> CoreSnapshot:
        """Run (or recall) the benchmark alone under FR-FCFS."""
        spec = resolve_spec(name)
        job = AloneJob(
            spec=spec,
            partition=partition,
            num_partitions=num_partitions,
            budget=self.budget_for(spec),
            seed=self.seed,
            config=self.config,
        )
        key = job.cache_key()
        snapshot = self._alone_cache.get(key)
        if snapshot is None:
            payloads = self.engine.run_jobs([job])
            snapshot = snapshot_from_payload(payloads[key])
            self._alone_cache[key] = snapshot
        return snapshot

    # -- shared runs ---------------------------------------------------------
    def run_workload(
        self,
        names: Workload,
        policy: str | SchedulingPolicy = "fr-fcfs",
        policy_kwargs: dict | None = None,
    ) -> WorkloadResult:
        """Run a multiprogrammed workload and compute all metrics.

        Args:
            names: Benchmark names or explicit specs, one per core
                (duplicates allowed — each core slot gets its own
                address partition).
            policy: Policy name (see :func:`repro.schedulers.make_policy`)
                or an already-constructed policy instance.
            policy_kwargs: Extra options for the policy factory.
        """
        if isinstance(policy, SchedulingPolicy):
            # A live policy object cannot be content-addressed or shipped
            # to a worker; run it directly in-process.
            return self._run_workload_direct(names, policy)
        plan = self._plan()
        plan.add(names, policy, policy_kwargs)
        return self.engine.execute(plan)[0]

    def run_policies(
        self,
        names: Workload,
        policies: list[str],
        policy_kwargs: dict[str, dict] | None = None,
    ) -> dict[str, WorkloadResult]:
        """Run one workload under several policies (the case-study shape).

        All policies' jobs form one batch: the workload's alone baselines
        are simulated once, and the shared runs execute concurrently when
        the runner has ``jobs > 1``.
        """
        kwargs = policy_kwargs or {}
        plan = self._plan()
        order = []
        for policy in policies:
            if policy in order:
                continue
            order.append(policy)
            plan.add(names, policy, kwargs.get(policy))
        results = self.engine.execute(plan)
        return dict(zip(order, results))

    def run_sweep(
        self,
        workloads: list[Workload],
        policies: list[str],
        policy_kwargs: dict[str, dict] | None = None,
    ) -> dict[str, dict[str, WorkloadResult]]:
        """Run many workloads × policies as one deduplicated job batch.

        Returns ``{workload label: {policy: result}}`` with labels from
        :func:`repro.workloads.mixes.workload_name`.  This is the sweep
        shape (Figures 9/11/12): the whole cross product executes as one
        engine batch, so alone baselines shared between workloads are
        simulated exactly once and all shared runs parallelize.
        """
        from repro.workloads.mixes import workload_name

        kwargs = policy_kwargs or {}
        plan = self._plan()
        labels = []
        for workload in workloads:
            specs = [resolve_spec(name) for name in workload]
            labels.append(workload_name([spec.name for spec in specs]))
            for policy in policies:
                plan.add(workload, policy, kwargs.get(policy))
        results = self.engine.execute(plan)
        sweep: dict[str, dict[str, WorkloadResult]] = {}
        index = 0
        for label in labels:
            per_policy = sweep.setdefault(label, {})
            for policy in policies:
                per_policy[policy] = results[index]
                index += 1
        return sweep

    # -- legacy direct path ---------------------------------------------------
    def _run_workload_direct(
        self, names: Workload, policy: SchedulingPolicy
    ) -> WorkloadResult:
        """The pre-engine serial path, kept for live policy instances."""
        if not names:
            raise ValueError("workload cannot be empty")
        if len(names) > self.config.num_cores:
            raise ValueError(
                f"{len(names)} benchmarks for {self.config.num_cores} cores"
            )
        specs = [resolve_spec(name) for name in names]
        num = len(specs)
        traces = [self.trace_for(spec, i, num) for i, spec in enumerate(specs)]
        budgets = [self.budget_for(spec) for spec in specs]
        mlp_limits = [spec.mlp for spec in specs]
        system = CmpSystem(
            self.config, traces, policy, budgets, mlp_limits=mlp_limits
        )
        snapshots = system.run()

        threads = []
        for i, spec in enumerate(specs):
            alone = self.alone_snapshot(spec, i, num)
            shared = snapshots[i]
            mem_stats = system.controller.thread_stats[i]
            threads.append(
                ThreadResult(
                    name=spec.name,
                    ipc_alone=alone.ipc,
                    ipc_shared=shared.ipc,
                    mcpi_alone=alone.mcpi,
                    mcpi_shared=shared.mcpi,
                    slowdown=_slowdown(shared.mcpi, alone.mcpi),
                    row_hit_rate_shared=mem_stats.row_hit_rate,
                )
            )
        extras = {"cycles": system.now}
        if hasattr(policy, "fairness_rule_fraction"):
            extras["fairness_rule_fraction"] = policy.fairness_rule_fraction
        return WorkloadResult(
            policy=policy.name, threads=tuple(threads), extras=extras
        )


def _slowdown(mcpi_shared: float, mcpi_alone: float) -> float:
    from repro.metrics.fairness import memory_slowdown

    return memory_slowdown(mcpi_shared, mcpi_alone)
