"""repro — Stall-Time Fair Memory Access Scheduling for CMPs (MICRO 2007).

A complete, trace-driven reproduction of Mutlu & Moscibroda's STFM memory
scheduler and its evaluation: a DDR2 DRAM + memory-controller model, the
five scheduling policies compared in the paper (FR-FCFS, FCFS,
FR-FCFS+Cap, NFQ, STFM), an analytical out-of-order core model, synthetic
SPEC CPU2006 / desktop workloads, and a harness regenerating every figure
and table of the paper's evaluation.

Quick start::

    from repro import ExperimentRunner, SystemConfig

    runner = ExperimentRunner(SystemConfig(num_cores=4), instruction_budget=20_000)
    result = runner.run_workload(
        ["mcf", "libquantum", "GemsFDTD", "astar"], policy="stfm"
    )
    print(result.unfairness, result.weighted_speedup)
"""

from repro.core.stfm import StfmPolicy
from repro.metrics import (
    hmean_speedup,
    memory_slowdown,
    sum_of_ipcs,
    unfairness_index,
    weighted_speedup,
)
from repro.schedulers import (
    FcfsPolicy,
    FrFcfsCapPolicy,
    FrFcfsPolicy,
    NfqPolicy,
    available_policies,
    make_policy,
)
from repro.sim import (
    CmpSystem,
    ExperimentRunner,
    SystemConfig,
    ThreadResult,
    WorkloadResult,
)
from repro.workloads import BenchmarkSpec, SPEC2006, benchmark, generate_trace

__version__ = "1.0.0"

__all__ = [
    "BenchmarkSpec",
    "CmpSystem",
    "ExperimentRunner",
    "FcfsPolicy",
    "FrFcfsCapPolicy",
    "FrFcfsPolicy",
    "NfqPolicy",
    "SPEC2006",
    "StfmPolicy",
    "SystemConfig",
    "ThreadResult",
    "WorkloadResult",
    "available_policies",
    "benchmark",
    "generate_trace",
    "hmean_speedup",
    "make_policy",
    "memory_slowdown",
    "sum_of_ipcs",
    "unfairness_index",
    "weighted_speedup",
]
