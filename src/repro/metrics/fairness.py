"""Fairness metrics.

The paper's unfairness index is the ratio between the maximum and the
minimum memory-related slowdown among the threads sharing the DRAM
system (Section 6.2); 1 is perfectly fair.  A thread's memory slowdown
is its memory stall time per instruction (MCPI) running shared, divided
by its MCPI running alone in the same memory system under FR-FCFS.
"""

from __future__ import annotations

from typing import Sequence


def memory_slowdown(mcpi_shared: float, mcpi_alone: float) -> float:
    """``MemSlowdown_i = MCPI_shared / MCPI_alone``.

    Threads with (near-)zero alone stall time are clamped to avoid
    division blow-ups from simulation noise; such threads barely touch
    memory and their slowdown is dominated by measurement granularity.
    """
    if mcpi_shared < 0 or mcpi_alone < 0:
        raise ValueError("MCPI cannot be negative")
    floor = 1e-6
    return max(mcpi_shared, floor) / max(mcpi_alone, floor)


def unfairness_index(slowdowns: Sequence[float]) -> float:
    """``max_i MemSlowdown_i / min_i MemSlowdown_i`` (>= 1)."""
    if not slowdowns:
        raise ValueError("need at least one slowdown")
    if any(s <= 0 for s in slowdowns):
        raise ValueError("slowdowns must be positive")
    return max(slowdowns) / min(slowdowns)
