"""Fairness and throughput metrics (Section 6.2 of the paper)."""

from repro.metrics.fairness import memory_slowdown, unfairness_index
from repro.metrics.throughput import (
    hmean_speedup,
    sum_of_ipcs,
    weighted_speedup,
)
from repro.metrics.stats import geometric_mean

__all__ = [
    "geometric_mean",
    "hmean_speedup",
    "memory_slowdown",
    "sum_of_ipcs",
    "unfairness_index",
    "weighted_speedup",
]
