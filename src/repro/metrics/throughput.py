"""System-throughput metrics (Section 6.2).

* **Weighted speedup** [Snavely & Tullsen]: sum of per-thread relative
  IPCs — the paper's primary throughput metric.
* **Hmean speedup** [Luo et al.]: harmonic mean of relative IPCs,
  balancing fairness and throughput.
* **Sum of IPCs**: raw IPC total; reported by the paper only to expose
  schedulers that pump non-memory-intensive threads, and to be
  "interpreted with extreme caution".
"""

from __future__ import annotations

from typing import Sequence


def _validate(shared: Sequence[float], alone: Sequence[float]) -> None:
    if len(shared) != len(alone):
        raise ValueError("need one alone IPC per shared IPC")
    if not shared:
        raise ValueError("need at least one thread")
    if any(ipc <= 0 for ipc in alone):
        raise ValueError("alone IPCs must be positive")
    if any(ipc < 0 for ipc in shared):
        raise ValueError("shared IPCs cannot be negative")


def weighted_speedup(
    ipc_shared: Sequence[float], ipc_alone: Sequence[float]
) -> float:
    """``sum_i IPC_i^shared / IPC_i^alone``."""
    _validate(ipc_shared, ipc_alone)
    return sum(s / a for s, a in zip(ipc_shared, ipc_alone))


def hmean_speedup(
    ipc_shared: Sequence[float], ipc_alone: Sequence[float]
) -> float:
    """``NumThreads / sum_i (IPC_i^alone / IPC_i^shared)``."""
    _validate(ipc_shared, ipc_alone)
    floor = 1e-9
    return len(ipc_shared) / sum(
        a / max(s, floor) for s, a in zip(ipc_shared, ipc_alone)
    )


def sum_of_ipcs(ipc_shared: Sequence[float]) -> float:
    """``sum_i IPC_i^shared`` — throughput only, fairness-blind."""
    if not ipc_shared:
        raise ValueError("need at least one thread")
    return sum(ipc_shared)
