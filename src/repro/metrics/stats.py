"""Small statistics helpers used when aggregating over workloads."""

from __future__ import annotations

import math
from typing import Sequence


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, the paper's aggregate over workloads (GMEAN)."""
    if not values:
        raise ValueError("need at least one value")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("need at least one value")
    return sum(values) / len(values)
