"""Job execution: cache resolution, worker pool, timeout, retry, report.

The executor resolves every requested job against its two cache layers
(per-executor memory, then the on-disk :class:`ResultStore`) and runs
the misses — in-process when ``jobs == 1`` (the serial degenerate case,
bit-identical to the pre-engine code path and friendly to debuggers),
or on a pool of worker processes otherwise.

Parallel execution is process-per-job with bounded concurrency rather
than ``multiprocessing.Pool``: a dedicated process per job is what makes
a *per-job timeout* (terminate the process) and *crash detection* (exit
without a result on the pipe) robust — a crashed pool worker cannot hang
the queue, it just costs one bounded retry.  Worker *exceptions* are
deterministic simulation bugs and fail fast instead of retrying.

Hardening (exercised by :mod:`repro.faults` under ``--inject``):

* retry attempts are spaced by exponential backoff with deterministic
  jitter, so a struggling machine is not hammered in lockstep;
* reaping escalates SIGTERM → SIGKILL for workers that ignore
  ``terminate()``, so a wedged worker can never hang the batch;
* when process *spawning* itself fails repeatedly (fd/PID exhaustion),
  the executor degrades gracefully to in-process serial execution;
* when fault injection is active and a job burns its whole retry
  budget on crashes/timeouts, one final "clean-room" attempt runs with
  injection disabled — injected chaos can delay a sweep but never
  fail it, while a genuinely crashing job still fails the batch.

Results travel back over a pipe as JSON-serializable payloads, so the
parallel path returns exactly what the serial path computes.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable

from repro import faults
from repro.engine.jobs import execute_job
from repro.engine.store import ResultStore

#: Exit status of a worker killed by an injected crash (tests assert it).
INJECTED_CRASH_EXIT = 73

#: Seconds to wait for a terminated worker before escalating to kill().
_REAP_GRACE = 5.0

#: Consecutive process-spawn failures before degrading to serial.
_SPAWN_FAILURE_LIMIT = 3


class JobFailedError(RuntimeError):
    """A job failed permanently (exception, or crash/timeout past retry)."""

    def __init__(self, job: Any, reason: str) -> None:
        super().__init__(f"job '{job.describe()}' failed: {reason}")
        self.job = job
        self.reason = reason


@dataclass
class EngineReport:
    """Counters of one executor's (or the whole session's) activity."""

    jobs_total: int = 0
    jobs_run: int = 0
    hits_memory: int = 0
    hits_disk: int = 0
    jobs_failed: int = 0
    retries: int = 0
    fallbacks: int = 0
    wall_time: float = 0.0
    sim_time: float = 0.0

    @property
    def hits(self) -> int:
        return self.hits_memory + self.hits_disk

    @property
    def speedup(self) -> float:
        """Aggregate simulation time over wall time — parallelism plus
        caching folded into one 'vs cold serial' factor."""
        return self.sim_time / self.wall_time if self.wall_time > 0 else 0.0

    def add(self, other: "EngineReport") -> None:
        self.jobs_total += other.jobs_total
        self.jobs_run += other.jobs_run
        self.hits_memory += other.hits_memory
        self.hits_disk += other.hits_disk
        self.jobs_failed += other.jobs_failed
        self.retries += other.retries
        self.fallbacks += other.fallbacks
        self.wall_time += other.wall_time
        self.sim_time += other.sim_time

    def snapshot(self) -> "EngineReport":
        return replace(self)

    def since(self, earlier: "EngineReport") -> "EngineReport":
        return EngineReport(
            jobs_total=self.jobs_total - earlier.jobs_total,
            jobs_run=self.jobs_run - earlier.jobs_run,
            hits_memory=self.hits_memory - earlier.hits_memory,
            hits_disk=self.hits_disk - earlier.hits_disk,
            jobs_failed=self.jobs_failed - earlier.jobs_failed,
            retries=self.retries - earlier.retries,
            fallbacks=self.fallbacks - earlier.fallbacks,
            wall_time=self.wall_time - earlier.wall_time,
            sim_time=self.sim_time - earlier.sim_time,
        )

    def summary(self) -> str:
        parts = [
            f"{self.jobs_total} job(s): {self.jobs_run} simulated, "
            f"{self.hits} cached ({self.hits_disk} disk, "
            f"{self.hits_memory} memory)"
        ]
        if self.retries:
            parts.append(f"{self.retries} retried")
        if self.fallbacks:
            parts.append(f"{self.fallbacks} fallback(s)")
        if self.jobs_failed:
            parts.append(f"{self.jobs_failed} FAILED")
        parts.append(
            f"sim {self.sim_time:.1f}s in {self.wall_time:.1f}s wall"
            + (f" ({self.speedup:.1f}x)" if self.speedup else "")
        )
        return "; ".join(parts)


#: Process-wide aggregate across every executor — lets the CLI report
#: engine activity without threading runner objects through the
#: experiment registry.  Updated under a lock: the simulation service
#: runs several executors on concurrent worker threads.
_SESSION = EngineReport()
_SESSION_LOCK = threading.Lock()


def session_report() -> EngineReport:
    return _SESSION


def reset_session_report() -> None:
    global _SESSION
    with _SESSION_LOCK:
        _SESSION = EngineReport()


def _worker_main(job, conn, attempt: int = 1, inject: bool = True) -> None:
    try:
        if inject:
            key = f"{job.cache_key()}:{attempt}"
            if faults.fires("crash", key):
                conn.close()
                os._exit(INJECTED_CRASH_EXIT)
            if faults.fires("hang", key):
                time.sleep(faults.HANG_SECONDS)
        else:
            # Clean-room fallback attempt: strip the injection toggle so
            # a fault-induced retry storm cannot fail the batch.
            os.environ.pop(faults.FAULTS_ENV, None)
        started = time.perf_counter()
        payload = execute_job(job)
        conn.send(("ok", payload, time.perf_counter() - started))
    except BaseException as exc:  # report, never propagate out of a worker
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}", 0.0))
        except Exception:  # simlint: disable=SIM007
            pass
    finally:
        conn.close()


@dataclass
class _Running:
    proc: Any
    conn: Any
    job: Any
    started: float
    attempt: int = 1
    inject: bool = True


@dataclass
class _Pending:
    """A job waiting for a worker slot (possibly backing off)."""

    key: str
    job: Any
    not_before: float = 0.0  # perf_counter() timestamp
    clean: bool = False  # run the next attempt with injection disabled


class JobExecutor:
    """Runs batches of jobs through the cache layers and a worker pool.

    Args:
        jobs: Worker processes; 1 = serial in-process execution.
        store: Optional on-disk :class:`ResultStore` (or a directory).
        timeout: Per-job wall-clock limit in seconds (parallel mode
            only — the serial path cannot interrupt a job).
        retries: Extra attempts after a worker crash or timeout.
        backoff: Base delay (seconds) between retry attempts; attempt
            *n* waits ``backoff * 2^(n-1)``, scaled by a deterministic
            jitter in [0.5, 1.5) and capped at ``backoff_cap``.
        progress: Optional callable receiving one line per finished job.
    """

    def __init__(
        self,
        jobs: int = 1,
        store: "ResultStore | str | None" = None,
        timeout: "float | None" = None,
        retries: int = 1,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
        progress: "Callable[[str], None] | None" = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("need at least one worker")
        if retries < 0:
            raise ValueError("retries cannot be negative")
        if backoff < 0:
            raise ValueError("backoff cannot be negative")
        self.jobs = jobs
        if store is not None and not isinstance(store, ResultStore):
            store = ResultStore(store)
        self.store = store
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.progress = progress
        self.memory: dict[str, dict] = {}
        self.report = EngineReport()

    # -- public API ---------------------------------------------------------
    def run(self, job_list: Iterable[Any]) -> dict[str, dict]:
        """Execute jobs (deduplicated by cache key) → {cache_key: payload}.

        Raises :class:`JobFailedError` as soon as any job fails
        permanently; outstanding workers are terminated.
        """
        started = time.perf_counter()
        unique: dict[str, Any] = {}
        for job in job_list:
            unique.setdefault(job.cache_key(), job)

        payloads: dict[str, dict] = {}
        to_run: list[tuple[str, Any]] = []
        batch = EngineReport(jobs_total=len(unique))
        for key, job in unique.items():
            if key in self.memory:
                payloads[key] = self.memory[key]
                batch.hits_memory += 1
                continue
            stored = self.store.get(key) if self.store is not None else None
            if stored is not None:
                payloads[key] = self.memory[key] = stored
                batch.hits_disk += 1
            else:
                to_run.append((key, job))

        try:
            if to_run:
                if self.jobs == 1:
                    fresh = self._run_serial(to_run, batch)
                else:
                    fresh = self._run_parallel(to_run, batch)
                for key, payload in fresh.items():
                    payloads[key] = self.memory[key] = payload
                    if self.store is not None:
                        job = unique[key]
                        self.store.put(
                            key, payload,
                            describe=job.describe(), kind=job.kind,
                        )
        finally:
            batch.wall_time = time.perf_counter() - started
            self.report.add(batch)
            with _SESSION_LOCK:
                _SESSION.add(batch)
        return payloads

    # -- serial path --------------------------------------------------------
    def _run_inline(self, job, batch: EngineReport) -> dict:
        """Execute one job in this process, with report bookkeeping."""
        started = time.perf_counter()
        try:
            payload = execute_job(job)
        except Exception as exc:
            batch.jobs_failed += 1
            raise JobFailedError(
                job, f"{type(exc).__name__}: {exc}"
            ) from exc
        batch.sim_time += time.perf_counter() - started
        batch.jobs_run += 1
        return payload

    def _run_serial(
        self, to_run: list[tuple[str, Any]], batch: EngineReport
    ) -> dict[str, dict]:
        results: dict[str, dict] = {}
        for key, job in to_run:
            results[key] = self._run_inline(job, batch)
            self._note(job, "done", batch)
        return results

    # -- parallel path ------------------------------------------------------
    def _run_parallel(
        self, to_run: list[tuple[str, Any]], batch: EngineReport
    ) -> dict[str, dict]:
        ctx = self._context()
        pending = deque(_Pending(key, job) for key, job in to_run)
        attempts: dict[str, int] = {}
        running: dict[str, _Running] = {}
        results: dict[str, dict] = {}
        failure: "JobFailedError | None" = None
        spawn_failures = 0
        degraded = False

        try:
            while (pending or running) and failure is None:
                while pending and len(running) < self.jobs:
                    entry = self._next_eligible(pending)
                    if entry is None:
                        break
                    if degraded:
                        results[entry.key] = self._run_inline(
                            entry.job, batch
                        )
                        self._note(entry.job, "done (degraded)", batch)
                        continue
                    attempts[entry.key] = attempts.get(entry.key, 0) + 1
                    try:
                        running[entry.key] = self._spawn(
                            ctx, entry.job, attempts[entry.key],
                            inject=not entry.clean,
                        )
                    except OSError as exc:
                        spawn_failures += 1
                        attempts[entry.key] -= 1
                        pending.appendleft(entry)
                        if spawn_failures >= _SPAWN_FAILURE_LIMIT:
                            degraded = True
                            self._note(
                                entry.job,
                                f"worker spawn failing ({exc}); "
                                "degrading to serial execution",
                                batch,
                            )
                        break
                    spawn_failures = 0
                progressed = False
                for key in list(running):
                    state = running[key]
                    outcome = self._poll(state)
                    if outcome is None:
                        continue
                    progressed = True
                    del running[key]
                    self._reap(state)
                    status, value, duration = outcome
                    if status == "ok":
                        results[key] = value
                        batch.jobs_run += 1
                        batch.sim_time += duration
                        self._note(state.job, "done", batch)
                    elif status == "error":
                        # Deterministic simulation exception: retrying
                        # would fail identically — fail fast.
                        batch.jobs_failed += 1
                        failure = JobFailedError(state.job, value)
                        break
                    elif attempts[key] <= self.retries:
                        batch.retries += 1
                        self._note(state.job, f"retrying ({value})", batch)
                        pending.append(
                            self._backed_off(key, state.job, attempts[key])
                        )
                    elif faults.active_plan() is not None and state.inject:
                        # Retry budget burned under fault injection: one
                        # final attempt with injection disabled, so chaos
                        # can delay a sweep but never fail it.
                        batch.fallbacks += 1
                        self._note(
                            state.job, f"clean-room fallback ({value})", batch
                        )
                        pending.append(
                            self._backed_off(
                                key, state.job, attempts[key], clean=True
                            )
                        )
                    else:
                        batch.jobs_failed += 1
                        failure = JobFailedError(state.job, value)
                        break
                if not progressed:
                    time.sleep(0.005)
        finally:
            for state in running.values():
                state.proc.terminate()
                self._reap(state)
        if failure is not None:
            raise failure
        return results

    def _next_eligible(self, pending: "deque[_Pending]") -> "_Pending | None":
        """Pop the first pending job whose backoff window has passed."""
        now = time.perf_counter()
        for _ in range(len(pending)):
            if pending[0].not_before <= now:
                return pending.popleft()
            pending.rotate(-1)
        return None

    def _backed_off(
        self, key: str, job, attempt: int, clean: bool = False
    ) -> _Pending:
        """Requeue entry with exponential backoff + deterministic jitter."""
        exponent = max(0, attempt - 1)
        delay = self.backoff * (2 ** exponent)
        # Deterministic jitter in [0.5, 1.5): a pure function of the
        # (key, attempt) pair, so replayed runs pace identically.
        jitter = 0.5 + random.Random(f"{key}:{exponent}:backoff").random()
        delay = min(delay * jitter, self.backoff_cap)
        return _Pending(
            key, job, not_before=time.perf_counter() + delay, clean=clean
        )

    @staticmethod
    def _context():
        # fork is both the cheapest start method and the one that lets
        # worker processes inherit registered custom job kinds.
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def _spawn(self, ctx, job, attempt: int = 1, inject: bool = True) -> _Running:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_worker_main,
            args=(job, child_conn, attempt, inject),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return _Running(
            proc, parent_conn, job, time.perf_counter(),
            attempt=attempt, inject=inject,
        )

    def _poll(self, state: _Running):
        """One look at a worker: result tuple, crash/timeout tuple, or
        None while it is still running."""
        if state.inject and faults.fires(
            "timeout", f"{state.job.cache_key()}:{state.attempt}"
        ):
            state.proc.terminate()
            return ("timeout", "injected timeout", 0.0)
        if state.conn.poll(0):
            return self._recv(state)
        if not state.proc.is_alive():
            # The worker may have exited right after flushing its result;
            # give the pipe one short grace poll before declaring a crash.
            if state.conn.poll(0.2):
                return self._recv(state)
            return (
                "crash",
                f"worker crashed (exit code {state.proc.exitcode})",
                0.0,
            )
        if (
            self.timeout is not None
            and time.perf_counter() - state.started > self.timeout
        ):
            state.proc.terminate()
            return ("timeout", f"timed out after {self.timeout:g}s", 0.0)
        return None

    def _recv(self, state: _Running):
        try:
            return state.conn.recv()
        except (EOFError, OSError):
            return (
                "crash",
                f"worker crashed (pipe closed, exit code {state.proc.exitcode})",
                0.0,
            )

    @staticmethod
    def _reap(state: _Running) -> None:
        """Join a finished/terminated worker, escalating to SIGKILL.

        ``terminate()`` sends SIGTERM, which a worker stuck in native
        code — or one that installed a SIGTERM handler — can ignore; a
        bounded join followed by ``kill()`` guarantees the reap returns.
        """
        state.conn.close()
        state.proc.join(_REAP_GRACE)
        if state.proc.is_alive():
            state.proc.kill()
            state.proc.join(_REAP_GRACE)

    def _note(self, job, status: str, batch: EngineReport) -> None:
        if self.progress is not None:
            done = batch.jobs_run + batch.hits
            self.progress(
                f"[{done}/{batch.jobs_total}] {job.describe()}: {status}"
            )
