"""Job execution: cache resolution, worker pool, timeout, retry, report.

The executor resolves every requested job against its two cache layers
(per-executor memory, then the on-disk :class:`ResultStore`) and runs
the misses — in-process when ``jobs == 1`` (the serial degenerate case,
bit-identical to the pre-engine code path and friendly to debuggers),
or on a pool of worker processes otherwise.

Parallel execution is process-per-job with bounded concurrency rather
than ``multiprocessing.Pool``: a dedicated process per job is what makes
a *per-job timeout* (terminate the process) and *crash detection* (exit
without a result on the pipe) robust — a crashed pool worker cannot hang
the queue, it just costs one bounded retry.  Worker *exceptions* are
deterministic simulation bugs and fail fast instead of retrying.

Results travel back over a pipe as JSON-serializable payloads, so the
parallel path returns exactly what the serial path computes.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterable

from repro.engine.jobs import execute_job
from repro.engine.store import ResultStore


class JobFailedError(RuntimeError):
    """A job failed permanently (exception, or crash/timeout past retry)."""

    def __init__(self, job: Any, reason: str) -> None:
        super().__init__(f"job '{job.describe()}' failed: {reason}")
        self.job = job
        self.reason = reason


@dataclass
class EngineReport:
    """Counters of one executor's (or the whole session's) activity."""

    jobs_total: int = 0
    jobs_run: int = 0
    hits_memory: int = 0
    hits_disk: int = 0
    jobs_failed: int = 0
    retries: int = 0
    wall_time: float = 0.0
    sim_time: float = 0.0

    @property
    def hits(self) -> int:
        return self.hits_memory + self.hits_disk

    @property
    def speedup(self) -> float:
        """Aggregate simulation time over wall time — parallelism plus
        caching folded into one 'vs cold serial' factor."""
        return self.sim_time / self.wall_time if self.wall_time > 0 else 0.0

    def add(self, other: "EngineReport") -> None:
        self.jobs_total += other.jobs_total
        self.jobs_run += other.jobs_run
        self.hits_memory += other.hits_memory
        self.hits_disk += other.hits_disk
        self.jobs_failed += other.jobs_failed
        self.retries += other.retries
        self.wall_time += other.wall_time
        self.sim_time += other.sim_time

    def snapshot(self) -> "EngineReport":
        return replace(self)

    def since(self, earlier: "EngineReport") -> "EngineReport":
        return EngineReport(
            jobs_total=self.jobs_total - earlier.jobs_total,
            jobs_run=self.jobs_run - earlier.jobs_run,
            hits_memory=self.hits_memory - earlier.hits_memory,
            hits_disk=self.hits_disk - earlier.hits_disk,
            jobs_failed=self.jobs_failed - earlier.jobs_failed,
            retries=self.retries - earlier.retries,
            wall_time=self.wall_time - earlier.wall_time,
            sim_time=self.sim_time - earlier.sim_time,
        )

    def summary(self) -> str:
        parts = [
            f"{self.jobs_total} job(s): {self.jobs_run} simulated, "
            f"{self.hits} cached ({self.hits_disk} disk, "
            f"{self.hits_memory} memory)"
        ]
        if self.retries:
            parts.append(f"{self.retries} retried")
        if self.jobs_failed:
            parts.append(f"{self.jobs_failed} FAILED")
        parts.append(
            f"sim {self.sim_time:.1f}s in {self.wall_time:.1f}s wall"
            + (f" ({self.speedup:.1f}x)" if self.speedup else "")
        )
        return "; ".join(parts)


#: Process-wide aggregate across every executor — lets the CLI report
#: engine activity without threading runner objects through the
#: experiment registry.  Updated under a lock: the simulation service
#: runs several executors on concurrent worker threads.
_SESSION = EngineReport()
_SESSION_LOCK = threading.Lock()


def session_report() -> EngineReport:
    return _SESSION


def reset_session_report() -> None:
    global _SESSION
    _SESSION = EngineReport()


def _worker_main(job, conn) -> None:
    try:
        started = time.perf_counter()
        payload = execute_job(job)
        conn.send(("ok", payload, time.perf_counter() - started))
    except BaseException as exc:  # report, never propagate out of a worker
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}", 0.0))
        except Exception:
            pass
    finally:
        conn.close()


@dataclass
class _Running:
    proc: Any
    conn: Any
    job: Any
    started: float


class JobExecutor:
    """Runs batches of jobs through the cache layers and a worker pool.

    Args:
        jobs: Worker processes; 1 = serial in-process execution.
        store: Optional on-disk :class:`ResultStore` (or a directory).
        timeout: Per-job wall-clock limit in seconds (parallel mode
            only — the serial path cannot interrupt a job).
        retries: Extra attempts after a worker crash or timeout.
        progress: Optional callable receiving one line per finished job.
    """

    def __init__(
        self,
        jobs: int = 1,
        store: "ResultStore | str | None" = None,
        timeout: "float | None" = None,
        retries: int = 1,
        progress: "Callable[[str], None] | None" = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("need at least one worker")
        if retries < 0:
            raise ValueError("retries cannot be negative")
        self.jobs = jobs
        if store is not None and not isinstance(store, ResultStore):
            store = ResultStore(store)
        self.store = store
        self.timeout = timeout
        self.retries = retries
        self.progress = progress
        self.memory: dict[str, dict] = {}
        self.report = EngineReport()

    # -- public API ---------------------------------------------------------
    def run(self, job_list: Iterable[Any]) -> dict[str, dict]:
        """Execute jobs (deduplicated by cache key) → {cache_key: payload}.

        Raises :class:`JobFailedError` as soon as any job fails
        permanently; outstanding workers are terminated.
        """
        started = time.perf_counter()
        unique: dict[str, Any] = {}
        for job in job_list:
            unique.setdefault(job.cache_key(), job)

        payloads: dict[str, dict] = {}
        to_run: list[tuple[str, Any]] = []
        batch = EngineReport(jobs_total=len(unique))
        for key, job in unique.items():
            if key in self.memory:
                payloads[key] = self.memory[key]
                batch.hits_memory += 1
                continue
            stored = self.store.get(key) if self.store is not None else None
            if stored is not None:
                payloads[key] = self.memory[key] = stored
                batch.hits_disk += 1
            else:
                to_run.append((key, job))

        try:
            if to_run:
                if self.jobs == 1:
                    fresh = self._run_serial(to_run, batch)
                else:
                    fresh = self._run_parallel(to_run, batch)
                for key, payload in fresh.items():
                    payloads[key] = self.memory[key] = payload
                    if self.store is not None:
                        job = unique[key]
                        self.store.put(
                            key, payload,
                            describe=job.describe(), kind=job.kind,
                        )
        finally:
            batch.wall_time = time.perf_counter() - started
            self.report.add(batch)
            with _SESSION_LOCK:
                _SESSION.add(batch)
        return payloads

    # -- serial path --------------------------------------------------------
    def _run_serial(
        self, to_run: list[tuple[str, Any]], batch: EngineReport
    ) -> dict[str, dict]:
        results: dict[str, dict] = {}
        for key, job in to_run:
            started = time.perf_counter()
            try:
                payload = execute_job(job)
            except Exception as exc:
                batch.jobs_failed += 1
                raise JobFailedError(
                    job, f"{type(exc).__name__}: {exc}"
                ) from exc
            batch.sim_time += time.perf_counter() - started
            batch.jobs_run += 1
            results[key] = payload
            self._note(job, "done", batch)
        return results

    # -- parallel path ------------------------------------------------------
    def _run_parallel(
        self, to_run: list[tuple[str, Any]], batch: EngineReport
    ) -> dict[str, dict]:
        ctx = self._context()
        pending = deque(to_run)
        attempts: dict[str, int] = {}
        running: dict[str, _Running] = {}
        results: dict[str, dict] = {}
        failure: JobFailedError | None = None

        try:
            while (pending or running) and failure is None:
                while pending and len(running) < self.jobs:
                    key, job = pending.popleft()
                    attempts[key] = attempts.get(key, 0) + 1
                    running[key] = self._spawn(ctx, job)
                progressed = False
                for key in list(running):
                    state = running[key]
                    outcome = self._poll(state)
                    if outcome is None:
                        continue
                    progressed = True
                    del running[key]
                    self._reap(state)
                    status, value, duration = outcome
                    if status == "ok":
                        results[key] = value
                        batch.jobs_run += 1
                        batch.sim_time += duration
                        self._note(state.job, "done", batch)
                    elif status == "error":
                        # Deterministic simulation exception: retrying
                        # would fail identically — fail fast.
                        batch.jobs_failed += 1
                        failure = JobFailedError(state.job, value)
                        break
                    elif attempts[key] <= self.retries:
                        batch.retries += 1
                        self._note(state.job, f"retrying ({value})", batch)
                        pending.append((key, state.job))
                    else:
                        batch.jobs_failed += 1
                        failure = JobFailedError(state.job, value)
                        break
                if not progressed:
                    time.sleep(0.005)
        finally:
            for state in running.values():
                state.proc.terminate()
                self._reap(state)
        if failure is not None:
            raise failure
        return results

    @staticmethod
    def _context():
        # fork is both the cheapest start method and the one that lets
        # worker processes inherit registered custom job kinds.
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def _spawn(self, ctx, job) -> _Running:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_worker_main, args=(job, child_conn), daemon=True
        )
        proc.start()
        child_conn.close()
        return _Running(proc, parent_conn, job, time.perf_counter())

    def _poll(self, state: _Running):
        """One look at a worker: result tuple, crash/timeout tuple, or
        None while it is still running."""
        if state.conn.poll(0):
            return self._recv(state)
        if not state.proc.is_alive():
            # The worker may have exited right after flushing its result;
            # give the pipe one short grace poll before declaring a crash.
            if state.conn.poll(0.2):
                return self._recv(state)
            return (
                "crash",
                f"worker crashed (exit code {state.proc.exitcode})",
                0.0,
            )
        if (
            self.timeout is not None
            and time.perf_counter() - state.started > self.timeout
        ):
            state.proc.terminate()
            return ("timeout", f"timed out after {self.timeout:g}s", 0.0)
        return None

    def _recv(self, state: _Running):
        try:
            return state.conn.recv()
        except (EOFError, OSError):
            return (
                "crash",
                f"worker crashed (pipe closed, exit code {state.proc.exitcode})",
                0.0,
            )

    @staticmethod
    def _reap(state: _Running) -> None:
        state.conn.close()
        state.proc.join()

    def _note(self, job, status: str, batch: EngineReport) -> None:
        if self.progress is not None:
            done = batch.jobs_run + batch.hits
            self.progress(
                f"[{done}/{batch.jobs_total}] {job.describe()}: {status}"
            )
