"""Filesystem store backend: a sharded directory of JSON entries.

The original (and default) layout, unchanged from the pre-backend
``ResultStore``: entries live at ``<root>/<key[:2]>/<key>.json``, are
written atomically (tmp + rename) so concurrent engine processes
sharing one cache directory never observe a torn entry, and corrupt
entries are preserved under ``<root>/quarantine/`` for inspection.
Existing cache directories keep working byte-for-byte.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

from repro.engine.backends.base import StoreBackend, StoreStats

#: Subdirectory of the store root where corrupt entries are preserved.
QUARANTINE_DIR = "quarantine"


class FsBackend(StoreBackend):
    """Entry blobs as ``<root>/<key[:2]>/<key>.json`` files."""

    scheme = "fs"

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)

    def path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def location(self) -> str:
        return f"fs:{self.root}"

    def read(self, key: str) -> "bytes | None":
        try:
            return self.path(key).read_bytes()
        except OSError:
            return None

    def write(self, key: str, blob: bytes) -> None:
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass  # never existed, or raced with cleanup
            raise

    def quarantine(self, key: str) -> None:
        path = self.path(key)
        target = self.root / QUARANTINE_DIR / path.name
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass  # already gone (concurrent reader quarantined it)

    def contains(self, key: str) -> bool:
        return self.path(key).exists()

    def count(self) -> int:
        return sum(
            1
            for path in self.root.glob("*/*.json")
            if path.parent.name != QUARANTINE_DIR
        )

    def stats(self) -> StoreStats:
        entries = 0
        total = 0
        for path in self.root.glob("*/*.json"):
            if path.parent.name == QUARANTINE_DIR:
                continue
            try:
                total += path.stat().st_size
            except OSError:
                continue
            entries += 1
        return StoreStats(entries=entries, total_bytes=total)

    def prune(self) -> StoreStats:
        removed = 0
        freed = 0
        for path in self.root.glob("*/*.json"):
            try:
                size = path.stat().st_size
                path.unlink()
            except OSError:
                continue
            removed += 1
            freed += size
        for shard in self.root.glob("*"):
            if shard.is_dir():
                try:
                    shard.rmdir()
                except OSError:
                    pass  # not empty (concurrent writer) — keep it
        return StoreStats(entries=removed, total_bytes=freed)
