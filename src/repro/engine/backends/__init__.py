"""repro.engine.backends — pluggable transports for the result store.

The content-addressed result store is split into a policy layer
(:class:`repro.engine.store.CacheStore`: checksums, quarantine,
best-effort writes, hit/miss accounting) and a transport *backend*
selected by :func:`create_backend` from a location string:

==========================  =============================================
``/path/to/dir``            :class:`~repro.engine.backends.fs.FsBackend`
                            (sharded JSON files — the default and the
                            pre-backend on-disk layout)
``/path/to/store.sqlite``   :class:`~repro.engine.backends.sqlite
                            .SqliteBackend` (by ``.sqlite``/``.db``
                            suffix)
``sqlite:/path/to/file``    ditto, explicit scheme (``sqlite://...``
                            also accepted)
``http://host:port``        :class:`~repro.engine.backends.http
                            .HttpStoreBackend` — the cluster
                            coordinator's store proxy
==========================  =============================================

Every consumer that used to take a cache *directory* (engine options,
the service, the CLI) now takes any of these, so ``--cache-dir
sqlite:/tmp/store.sqlite`` works everywhere a path did.
"""

from __future__ import annotations

from repro.engine.backends.base import StoreBackend, StoreStats
from repro.engine.backends.fs import QUARANTINE_DIR, FsBackend
from repro.engine.backends.sqlite import SqliteBackend

__all__ = [
    "FsBackend",
    "HttpStoreBackend",
    "QUARANTINE_DIR",
    "SqliteBackend",
    "StoreBackend",
    "StoreStats",
    "create_backend",
]


def __getattr__(name: str):
    # Lazy: the HTTP backend pulls in http.client/urllib, which most
    # engine consumers (pure local runs) never need.
    if name == "HttpStoreBackend":
        from repro.engine.backends.http import HttpStoreBackend

        return HttpStoreBackend
    raise AttributeError(name)


def create_backend(location: "str | StoreBackend") -> StoreBackend:
    """Build the right backend for a location string (see module doc)."""
    if isinstance(location, StoreBackend):
        return location
    location = str(location)
    if location.startswith(("http://", "https://")):
        from repro.engine.backends.http import HttpStoreBackend

        return HttpStoreBackend(location)
    if location.startswith("sqlite:"):
        path = location[len("sqlite:"):]
        if path.startswith("//"):  # sqlite://PATH — tolerate the // form
            path = path[2:]
        if not path:
            raise ValueError(f"sqlite store location {location!r} has no path")
        return SqliteBackend(path)
    if location.endswith((".sqlite", ".db")):
        return SqliteBackend(location)
    return FsBackend(location)
