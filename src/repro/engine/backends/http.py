"""HTTP store backend: a client for the coordinator's store proxy.

Remote runners cannot mount the coordinator's cache directory, so the
cluster coordinator serves its own store over five tiny endpoints
(see :mod:`repro.cluster.coordinator`)::

    GET  /v1/store/<key>             entry blob        200 | 404
    PUT  /v1/store/<key>             persist blob      204 | 412
    POST /v1/store/<key>/quarantine  move entry aside  204
    GET  /v1/store                   stats JSON        200
    POST /v1/store/prune             delete everything 200 (removed stats)

This backend is deliberately *not* built on
:class:`repro.service.client.ServiceClient` — the engine must not
import the service package (the service imports the engine) — so it
carries its own minimal ``http.client`` plumbing.

Failure semantics match the backend contract, with one cluster-grade
refinement: **the proxy degrades, it never fails**.

* Every PUT is *conditional* (``If-None-Match: *``): the blob store is
  content-addressed, so a key that already exists needs no second
  upload.  The coordinator answers ``412 Precondition Failed`` and the
  backend counts it as a successful (skipped) write — which is what
  keeps ``stfm_store_proxy_duplicate_puts_total`` at zero under retry
  storms.
* When the proxy is unreachable — a real connection error, or an
  injected ``refused`` / ``latency`` / ``partition`` fault — the
  backend enters **degraded local-cache-only mode**: reads are served
  from a small in-process cache of entries this backend has already
  seen (anything else is a miss — cold-cache semantics, the runner
  just re-simulates), and writes are buffered.  After a cooldown one
  half-open probe request is allowed through; on success the buffered
  writes are flushed (conditionally) and normal service resumes.
* An injected ``reset`` fires *after* the request was sent: the
  coordinator processed the PUT but the response is lost.  The retry
  is a conditional PUT, so settling it costs a 412, not a duplicate
  blob.
* An injected ``truncate`` hands the caller a torn GET body; the
  checksum layer above (:class:`repro.engine.store.CacheStore`)
  detects and quarantines it exactly like on-disk corruption.

Fault decisions are consulted *up front* on every read/write with
content-derived keys (``store-read:<key>`` / ``store-write:<key>``),
before any degraded-mode short-circuit — so the set of consulted
decisions is a pure function of which entries the run touched, and a
chaos replay reproduces it exactly regardless of timing.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.parse
from collections import OrderedDict

from repro import faults
from repro.engine.backends.base import StoreBackend, StoreStats

#: Sites consulted per operation, in consult order (order matters only
#: for spool readability; decisions are independent streams).
_READ_SITES = ("refused", "latency", "partition", "truncate")
_WRITE_SITES = ("refused", "latency", "partition", "reset")

#: Sites that make the proxy unreachable for this operation.
_UNREACHABLE = frozenset({"refused", "latency", "partition"})


class HttpStoreBackend(StoreBackend):
    """Entry blobs proxied to a cluster coordinator over HTTP."""

    scheme = "http"

    #: Entries kept locally for degraded-mode reads.  Small on purpose:
    #: the local cache is a brown-out shim, not a second store tier.
    LOCAL_CACHE_ENTRIES = 128

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retries: int = 1,
        backoff: float = 0.1,
        probe_cooldown: float = 0.25,
    ) -> None:
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme not in ("http", ""):
            raise ValueError("only http:// store URLs are supported")
        self.base_url = base_url
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 8765
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.probe_cooldown = probe_cooldown
        # Degraded-mode state, all under one lock: the runner executes
        # leased jobs on several threads against one shared backend.
        self._lock = threading.Lock()
        self._degraded = False
        self._probe_at = 0.0
        self._local: "OrderedDict[str, bytes]" = OrderedDict()
        self._pending: "OrderedDict[str, bytes]" = OrderedDict()
        self.partitions = 0  # degraded windows entered
        self.flushed = 0  # buffered writes flushed on recovery
        self.conditional_skips = 0  # 412s observed (blob already there)

    def location(self) -> str:
        return f"http://{self.host}:{self.port}/v1/store"

    # -- wire plumbing -------------------------------------------------------
    def _request(
        self, method: str, path: str, body: "bytes | None" = None,
        retriable: bool = True, headers: "dict[str, str] | None" = None,
    ) -> "tuple[int, bytes]":
        """One request with bounded connection-error retries.

        GETs (and conditional PUTs of content-addressed blobs) are safe
        to retry; the last error propagates as OSError.
        """
        last: "Exception | None" = None
        for attempt in range(1, self.retries + 2):
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            try:
                conn.request(method, path, body=body, headers=headers or {})
                response = conn.getresponse()
                return response.status, response.read()
            except OSError as exc:
                last = exc
                if not retriable or attempt > self.retries:
                    raise
                time.sleep(self.backoff * attempt)
            finally:
                conn.close()
        raise OSError(f"store proxy unreachable: {last}")  # pragma: no cover

    # -- fault consultation --------------------------------------------------
    def _injected(self, op: str, key: str) -> "set[str]":
        """Consult every network site for this operation, up front.

        Unconditional on purpose: degraded-mode short-circuits must not
        change *which* decisions get consulted, or a chaos replay's
        fired set would depend on partition-window timing.
        """
        sites = _READ_SITES if op == "read" else _WRITE_SITES
        return {s for s in sites if faults.fires(s, f"store-{op}:{key}")}

    # -- degraded mode -------------------------------------------------------
    def _enter_degraded(self, now: float) -> None:
        with self._lock:
            if not self._degraded:
                self._degraded = True
                self.partitions += 1
            self._probe_at = now + self.probe_cooldown

    def _may_probe(self, now: float) -> bool:
        """True when this call should try the wire: healthy, or degraded
        with the half-open cooldown elapsed (claims the probe slot)."""
        with self._lock:
            if not self._degraded:
                return True
            if now >= self._probe_at:
                # Claim the probe: concurrent callers stay local until
                # this one settles (success resets, failure re-arms).
                self._probe_at = now + self.probe_cooldown
                return True
            return False

    def _recovered(self) -> None:
        """A probe succeeded: leave degraded mode and flush the buffer."""
        with self._lock:
            if not self._degraded:
                return
            self._degraded = False
            pending = list(self._pending.items())
            self._pending.clear()
        for key, blob in pending:
            try:
                self._put(key, blob, retriable=False)
            except OSError:
                # Mid-flush relapse: re-buffer what's left and back off.
                with self._lock:
                    self._pending.setdefault(key, blob)
                self._enter_degraded(time.monotonic())
            else:
                with self._lock:
                    self.flushed += 1

    def _local_put(self, key: str, blob: bytes) -> None:
        with self._lock:
            self._local[key] = blob
            self._local.move_to_end(key)
            while len(self._local) > self.LOCAL_CACHE_ENTRIES:
                self._local.popitem(last=False)

    def _local_get(self, key: str) -> "bytes | None":
        with self._lock:
            return self._local.get(key)

    @property
    def degraded(self) -> bool:
        with self._lock:
            return self._degraded

    # -- backend contract ----------------------------------------------------
    def read(self, key: str) -> "bytes | None":
        injected = self._injected("read", key)
        now = time.monotonic()
        if injected & _UNREACHABLE:
            self._enter_degraded(now)
            return self._local_get(key)
        if not self._may_probe(now):
            return self._local_get(key)  # degraded: local-only, a miss
        try:
            status, body = self._request("GET", f"/v1/store/{key}")
        except OSError:
            self._enter_degraded(time.monotonic())
            return self._local_get(key)
        self._recovered()
        if status != 200:
            return None
        self._local_put(key, body)
        if "truncate" in injected:
            return body[: len(body) // 2]  # torn read; checksum layer
        return body

    def _put(self, key: str, blob: bytes, retriable: bool = True) -> None:
        """One conditional PUT; 412 means the blob is already there."""
        status, body = self._request(
            "PUT", f"/v1/store/{key}", body=blob, retriable=retriable,
            headers={"If-None-Match": "*"},
        )
        if status == 412:
            with self._lock:
                self.conditional_skips += 1
            return
        if status not in (200, 204):
            raise OSError(
                f"store proxy rejected put for {key[:12]}: HTTP {status} "
                f"{body[:120]!r}"
            )

    def write(self, key: str, blob: bytes) -> None:
        injected = self._injected("write", key)
        now = time.monotonic()
        self._local_put(key, blob)  # degraded reads must see own writes
        if injected & _UNREACHABLE:
            self._enter_degraded(now)
            with self._lock:
                self._pending[key] = blob
            return
        if not self._may_probe(now):
            with self._lock:
                self._pending[key] = blob
            return
        if "reset" in injected:
            # The request goes out and the coordinator processes it,
            # but the response is "lost".  Retry below settles it with
            # a conditional PUT → 412, never a duplicate upload.
            try:
                self._request(
                    "PUT", f"/v1/store/{key}", body=blob, retriable=False,
                    headers={"If-None-Match": "*"},
                )
            except OSError:
                pass  # genuinely unreachable; fall through to retry
        try:
            self._put(key, blob)
        except OSError:
            self._enter_degraded(time.monotonic())
            with self._lock:
                self._pending[key] = blob
            return
        self._recovered()

    def quarantine(self, key: str) -> None:
        try:
            self._request("POST", f"/v1/store/{key}/quarantine")
        except OSError:
            pass  # best-effort; the coordinator may be briefly away

    def contains(self, key: str) -> bool:
        return self.read(key) is not None

    def _stats_payload(self, method: str, path: str) -> StoreStats:
        try:
            status, body = self._request(method, path)
            if status != 200:
                return StoreStats(entries=0, total_bytes=0)
            decoded = json.loads(body.decode("utf-8"))
            return StoreStats(
                entries=int(decoded["entries"]),
                total_bytes=int(decoded["total_bytes"]),
            )
        except (OSError, ValueError, KeyError, TypeError):
            return StoreStats(entries=0, total_bytes=0)

    def count(self) -> int:
        return self._stats_payload("GET", "/v1/store").entries

    def stats(self) -> StoreStats:
        return self._stats_payload("GET", "/v1/store")

    def prune(self) -> StoreStats:
        return self._stats_payload("POST", "/v1/store/prune")
