"""HTTP store backend: a client for the coordinator's store proxy.

Remote runners cannot mount the coordinator's cache directory, so the
cluster coordinator serves its own store over five tiny endpoints
(see :mod:`repro.cluster.coordinator`)::

    GET  /v1/store/<key>             entry blob        200 | 404
    PUT  /v1/store/<key>             persist blob      204
    POST /v1/store/<key>/quarantine  move entry aside  204
    GET  /v1/store                   stats JSON        200
    POST /v1/store/prune             delete everything 200 (removed stats)

This backend is deliberately *not* built on
:class:`repro.service.client.ServiceClient` — the engine must not
import the service package (the service imports the engine) — so it
carries its own minimal ``http.client`` plumbing.

Failure semantics match the backend contract: an unreachable proxy
turns reads into misses (the runner re-simulates; the shared cache is
an optimization, never a dependency) and writes into :class:`OSError`
(counted as best-effort put errors by the policy layer).  Reads are
retried once on connection errors to ride out a coordinator restart.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse

from repro.engine.backends.base import StoreBackend, StoreStats


class HttpStoreBackend(StoreBackend):
    """Entry blobs proxied to a cluster coordinator over HTTP."""

    scheme = "http"

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retries: int = 1,
        backoff: float = 0.1,
    ) -> None:
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme not in ("http", ""):
            raise ValueError("only http:// store URLs are supported")
        self.base_url = base_url
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 8765
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff

    def location(self) -> str:
        return f"http://{self.host}:{self.port}/v1/store"

    # -- wire plumbing -------------------------------------------------------
    def _request(
        self, method: str, path: str, body: "bytes | None" = None,
        retriable: bool = True,
    ) -> "tuple[int, bytes]":
        """One request with bounded connection-error retries.

        GETs (and the idempotent PUT of a content-addressed blob) are
        safe to retry; the last error propagates as OSError.
        """
        last: "Exception | None" = None
        for attempt in range(1, self.retries + 2):
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            try:
                conn.request(method, path, body=body)
                response = conn.getresponse()
                return response.status, response.read()
            except OSError as exc:
                last = exc
                if not retriable or attempt > self.retries:
                    raise
                time.sleep(self.backoff * attempt)
            finally:
                conn.close()
        raise OSError(f"store proxy unreachable: {last}")  # pragma: no cover

    # -- backend contract ----------------------------------------------------
    def read(self, key: str) -> "bytes | None":
        try:
            status, body = self._request("GET", f"/v1/store/{key}")
        except OSError:
            return None  # unreachable proxy is a miss, not a failure
        return body if status == 200 else None

    def write(self, key: str, blob: bytes) -> None:
        status, body = self._request("PUT", f"/v1/store/{key}", body=blob)
        if status not in (200, 204):
            raise OSError(
                f"store proxy rejected put for {key[:12]}: HTTP {status} "
                f"{body[:120]!r}"
            )

    def quarantine(self, key: str) -> None:
        try:
            self._request("POST", f"/v1/store/{key}/quarantine")
        except OSError:
            pass  # best-effort; the coordinator may be briefly away

    def contains(self, key: str) -> bool:
        return self.read(key) is not None

    def _stats_payload(self, method: str, path: str) -> StoreStats:
        try:
            status, body = self._request(method, path)
            if status != 200:
                return StoreStats(entries=0, total_bytes=0)
            decoded = json.loads(body.decode("utf-8"))
            return StoreStats(
                entries=int(decoded["entries"]),
                total_bytes=int(decoded["total_bytes"]),
            )
        except (OSError, ValueError, KeyError, TypeError):
            return StoreStats(entries=0, total_bytes=0)

    def count(self) -> int:
        return self._stats_payload("GET", "/v1/store").entries

    def stats(self) -> StoreStats:
        return self._stats_payload("GET", "/v1/store")

    def prune(self) -> StoreStats:
        return self._stats_payload("POST", "/v1/store/prune")
