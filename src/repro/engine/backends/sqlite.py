"""SQLite store backend: one file, WAL mode, multi-process safe.

All entries land in a single ``.sqlite`` file, which makes the store a
unit — one artifact to copy, back up, or point N runner processes on
the same host at.  WAL journaling gives single-writer/multi-reader
concurrency without reader stalls, and a generous busy timeout absorbs
writer contention between runners (every write is a single upsert, so
transactions are short).

Connections are per-thread (SQLite connections must not be shared
across threads without serializing): each thread lazily opens and
caches its own handle, and forked engine workers get fresh handles
because the cache is keyed by pid as well.

SQLite errors on the write path surface as :class:`OSError` so the
policy layer's best-effort ``put`` semantics apply uniformly: a locked
or full database is counted and logged, never fatal.
"""

from __future__ import annotations

import os
import sqlite3
import threading
from pathlib import Path

from repro.engine.backends.base import StoreBackend, StoreStats

_SCHEMA = """
CREATE TABLE IF NOT EXISTS entries (
    key    TEXT PRIMARY KEY,
    nbytes INTEGER NOT NULL,
    blob   BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS quarantine (
    seq  INTEGER PRIMARY KEY AUTOINCREMENT,
    key  TEXT NOT NULL,
    blob BLOB NOT NULL
);
"""


class SqliteBackend(StoreBackend):
    """Entry blobs in a single WAL-mode SQLite file."""

    scheme = "sqlite"

    def __init__(self, path: "str | Path", timeout: float = 30.0) -> None:
        self.path = Path(path).expanduser()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.timeout = timeout
        self._local = threading.local()
        with self._guarded() as conn:
            conn.executescript(_SCHEMA)

    # -- connection plumbing -------------------------------------------------
    def _conn(self) -> sqlite3.Connection:
        """This thread's connection (fresh after fork: keyed by pid)."""
        pid = os.getpid()
        conn = getattr(self._local, "conn", None)
        if conn is None or getattr(self._local, "pid", None) != pid:
            conn = sqlite3.connect(
                str(self.path), timeout=self.timeout, isolation_level=None
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(f"PRAGMA busy_timeout={int(self.timeout * 1000)}")
            self._local.conn = conn
            self._local.pid = pid
        return conn

    def _guarded(self) -> sqlite3.Connection:
        """A connection whose sqlite errors surface as OSError."""
        try:
            return self._conn()
        except sqlite3.Error as exc:
            raise OSError(f"sqlite store unavailable: {exc}") from exc

    def close(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def location(self) -> str:
        return f"sqlite:{self.path}"

    # -- backend contract ----------------------------------------------------
    def read(self, key: str) -> "bytes | None":
        try:
            row = self._conn().execute(
                "SELECT blob FROM entries WHERE key = ?", (key,)
            ).fetchone()
        except (sqlite3.Error, OSError):
            return None
        return bytes(row[0]) if row else None

    def write(self, key: str, blob: bytes) -> None:
        try:
            self._guarded().execute(
                "INSERT OR REPLACE INTO entries (key, nbytes, blob) "
                "VALUES (?, ?, ?)",
                (key, len(blob), sqlite3.Binary(blob)),
            )
        except sqlite3.Error as exc:
            raise OSError(f"sqlite store write failed: {exc}") from exc

    def quarantine(self, key: str) -> None:
        try:
            conn = self._conn()
            conn.execute("BEGIN IMMEDIATE")
            try:
                conn.execute(
                    "INSERT INTO quarantine (key, blob) "
                    "SELECT key, blob FROM entries WHERE key = ?",
                    (key,),
                )
                conn.execute("DELETE FROM entries WHERE key = ?", (key,))
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
        except (sqlite3.Error, OSError):
            pass  # best-effort; a locked db just delays the quarantine

    def contains(self, key: str) -> bool:
        try:
            row = self._conn().execute(
                "SELECT 1 FROM entries WHERE key = ?", (key,)
            ).fetchone()
        except (sqlite3.Error, OSError):
            return False
        return row is not None

    def count(self) -> int:
        try:
            row = self._conn().execute(
                "SELECT COUNT(*) FROM entries"
            ).fetchone()
        except (sqlite3.Error, OSError):
            return 0
        return int(row[0])

    def stats(self) -> StoreStats:
        try:
            row = self._conn().execute(
                "SELECT COUNT(*), COALESCE(SUM(nbytes), 0) FROM entries"
            ).fetchone()
        except (sqlite3.Error, OSError):
            return StoreStats(entries=0, total_bytes=0)
        return StoreStats(entries=int(row[0]), total_bytes=int(row[1]))

    def prune(self) -> StoreStats:
        try:
            conn = self._guarded()
            row = conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(nbytes), 0) FROM entries"
            ).fetchone()
            conn.execute("DELETE FROM entries")
            conn.execute("DELETE FROM quarantine")
        except (sqlite3.Error, OSError):
            return StoreStats(entries=0, total_bytes=0)
        return StoreStats(entries=int(row[0]), total_bytes=int(row[1]))
