"""The store-backend contract.

A backend is the *transport* half of the result store: it moves opaque
entry blobs (the JSON envelope ``CacheStore`` builds — payload plus
checksum) in and out of some medium, keyed by the content hash.  All
*policy* — checksum verification, quarantine decisions, best-effort
writes, hit/miss accounting, fault injection — lives above it in
:class:`repro.engine.store.CacheStore`, so every backend gets identical
integrity semantics for free and the conformance suite can run one set
of assertions against all of them.

Three implementations exist:

* :class:`~repro.engine.backends.fs.FsBackend` — sharded directory of
  ``<sha256>.json`` files (the original layout; the default).
* :class:`~repro.engine.backends.sqlite.SqliteBackend` — one SQLite
  file in WAL mode, safe for concurrent runner processes on one host.
* :class:`~repro.engine.backends.http.HttpStoreBackend` — a client for
  the cluster coordinator's store proxy, so runners on other machines
  share one cache.

Error contract: ``read`` returns ``None`` for *any* failure to produce
bytes (missing entry, I/O error, unreachable proxy) — the caller treats
it as a miss and re-simulates.  ``write`` raises :class:`OSError` on
failure so the caller can count a best-effort put error.  ``quarantine``
and ``prune`` are best-effort and never raise.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass


@dataclass(frozen=True)
class StoreStats:
    """Size of (or amount removed from) a result store."""

    entries: int
    total_bytes: int


class StoreBackend(abc.ABC):
    """Transport for content-addressed entry blobs (see module doc)."""

    #: URL scheme this backend answers to (``fs``, ``sqlite``, ``http``).
    scheme: str = "?"

    @abc.abstractmethod
    def read(self, key: str) -> "bytes | None":
        """Entry blob for ``key``, or None when absent/unreadable."""

    @abc.abstractmethod
    def write(self, key: str, blob: bytes) -> None:
        """Atomically persist ``blob`` under ``key``.

        Raises:
            OSError: when the blob could not be persisted (disk full,
                read-only medium, unreachable proxy ...).
        """

    @abc.abstractmethod
    def quarantine(self, key: str) -> None:
        """Move ``key``'s entry aside (or drop it) so the next read is
        a clean miss.  Best-effort: never raises."""

    @abc.abstractmethod
    def contains(self, key: str) -> bool:
        """Whether an entry (possibly corrupt) exists for ``key``."""

    @abc.abstractmethod
    def count(self) -> int:
        """Number of live (non-quarantined) entries."""

    @abc.abstractmethod
    def stats(self) -> StoreStats:
        """Live entry count and total stored bytes."""

    @abc.abstractmethod
    def prune(self) -> StoreStats:
        """Delete every entry (quarantined ones too); returns what was
        removed.  Best-effort: skips what it cannot delete."""

    @abc.abstractmethod
    def location(self) -> str:
        """Human-readable ``scheme:where`` string for reports."""

    def close(self) -> None:
        """Release any held resources (connections).  Optional."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.location()}>"
