"""Content-addressed on-disk result store.

Payloads are filed under the SHA-256 of the job's canonical key (see
``jobs.cache_key``): the filename *is* the identity, so two runners — in
different processes, or days apart — that build the same job read and
write the same entry, and any change to an input (seed, budget, policy
kwargs, memory timing ...) lands on a different file instead of
poisoning an old one.

Entries are small JSON files sharded by hash prefix, written atomically
(tmp + rename) so concurrent engine processes sharing one cache
directory never observe a torn entry.  Integrity is verified end to
end: every entry carries a SHA-256 checksum of its payload, written on
``put`` and checked on ``get`` — a corrupt entry (torn JSON, bit rot,
a checksum mismatch, a missing ``payload``) counts as a miss and is
*quarantined* to ``<root>/quarantine/`` rather than deleted, so the
evidence survives for inspection while the job simply re-simulates.

Writes are best-effort: a ``put`` that fails with ``OSError`` (disk
full, read-only mount, I/O error) is counted and logged, never raised —
a full disk must not discard a simulation that already succeeded.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path

from repro import faults

_log = logging.getLogger("repro.engine.store")

#: Subdirectory of the store root where corrupt entries are preserved.
QUARANTINE_DIR = "quarantine"


def payload_checksum(payload: dict) -> str:
    """Canonical SHA-256 of a payload (key-order independent)."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class StoreStats:
    """Size of (or amount removed from) a result store."""

    entries: int
    total_bytes: int


class ResultStore:
    """A directory of ``<sha256>.json`` job payloads.

    One store instance may be shared by concurrent consumers (the
    simulation service hands the same object to every worker thread):
    reads and writes go straight to the filesystem, and the ``hits`` /
    ``misses`` / ``quarantined`` / ``put_errors`` counters are updated
    under a lock so cross-client cache behaviour can be observed
    accurately.
    """

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        self.put_errors = 0
        self._lock = threading.Lock()

    def _path(self, cache_key: str) -> Path:
        return self.root / cache_key[:2] / f"{cache_key}.json"

    def _count(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.hits += 1
            else:
                self.misses += 1

    def _quarantine(self, path: Path, cache_key: str, reason: str) -> None:
        """Move a corrupt entry aside (fall back to deleting it) so the
        next ``get`` is a clean miss instead of a repeated parse error."""
        target = self.root / QUARANTINE_DIR / path.name
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass  # already gone (concurrent reader quarantined it)
        with self._lock:
            self.quarantined += 1
        _log.warning(
            "quarantined corrupt store entry %s (%s): %s",
            cache_key[:12], reason, target,
        )

    def get(self, cache_key: str) -> "dict | None":
        """Payload for a key, or None on miss.

        A corrupt entry — unparseable JSON, a missing ``payload``, or a
        payload that no longer matches its recorded checksum — is
        quarantined and reported as a miss.
        """
        path = self._path(cache_key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            self._count(hit=False)
            return None
        except OSError:
            self._count(hit=False)
            return None
        if faults.fires("corrupt", cache_key):
            raw = raw[: len(raw) // 2]  # a torn write, deterministically
        try:
            entry = json.loads(raw.decode("utf-8"))
            payload = entry["payload"]
        except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
            self._quarantine(path, cache_key, f"{type(exc).__name__}: {exc}")
            self._count(hit=False)
            return None
        recorded = entry.get("sha256")
        if recorded is not None and recorded != payload_checksum(payload):
            self._quarantine(path, cache_key, "payload checksum mismatch")
            self._count(hit=False)
            return None
        self._count(hit=True)
        return payload

    def stats(self) -> StoreStats:
        """Entry count and total payload bytes currently on disk
        (quarantined entries excluded)."""
        entries = 0
        total = 0
        for path in self.root.glob("*/*.json"):
            if path.parent.name == QUARANTINE_DIR:
                continue
            try:
                total += path.stat().st_size
            except OSError:
                continue
            entries += 1
        return StoreStats(entries=entries, total_bytes=total)

    def prune(self) -> StoreStats:
        """Delete every entry (quarantined ones too); returns what was
        removed."""
        removed = 0
        freed = 0
        for path in self.root.glob("*/*.json"):
            try:
                size = path.stat().st_size
                path.unlink()
            except OSError:
                continue
            removed += 1
            freed += size
        for shard in self.root.glob("*"):
            if shard.is_dir():
                try:
                    shard.rmdir()
                except OSError:
                    pass  # not empty (concurrent writer) — keep it
        return StoreStats(entries=removed, total_bytes=freed)

    def put(self, cache_key: str, payload: dict, describe: str = "",
            kind: str = "") -> bool:
        """Atomically persist a payload under its key (best-effort).

        Returns True when the entry landed on disk.  An ``OSError``
        (disk full, read-only directory, I/O error) is downgraded to a
        counted warning — by the time ``put`` runs the simulation has
        already succeeded, and losing the *cache* entry must not fail
        the batch.  Non-I/O errors (an unserializable payload) still
        propagate: those are bugs.
        """
        path = self._path(cache_key)
        entry = {
            "kind": kind,
            "describe": describe,
            "sha256": payload_checksum(payload),
            "payload": payload,
        }
        tmp = None
        try:
            if faults.fires("write", cache_key):
                raise OSError(28, "injected ENOSPC")  # errno.ENOSPC
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".json"
            )
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle)
            os.replace(tmp, path)
            tmp = None
        except OSError as exc:
            self._discard_tmp(tmp)
            with self._lock:
                self.put_errors += 1
            _log.warning(
                "best-effort store put failed for %s (%s): %s",
                cache_key[:12], describe or kind or "entry", exc,
            )
            return False
        except BaseException:
            self._discard_tmp(tmp)
            raise
        return True

    @staticmethod
    def _discard_tmp(tmp: "str | None") -> None:
        if tmp is not None:
            try:
                os.unlink(tmp)
            except OSError:
                pass  # never existed, or raced with cleanup

    def __contains__(self, cache_key: str) -> bool:
        return self._path(cache_key).exists()

    def __len__(self) -> int:
        return sum(
            1
            for path in self.root.glob("*/*.json")
            if path.parent.name != QUARANTINE_DIR
        )
