"""Content-addressed result store: integrity policy over a backend.

Payloads are filed under the SHA-256 of the job's canonical key (see
``jobs.cache_key``): the key *is* the identity, so two runners — in
different processes, on different hosts, or days apart — that build the
same job read and write the same entry, and any change to an input
(seed, budget, policy kwargs, memory timing ...) lands on a different
entry instead of poisoning an old one.

Since the cluster PR the store is split in two:

* :class:`CacheStore` (this module) is the *policy* layer every
  consumer talks to.  It owns the entry envelope (payload + SHA-256
  checksum written on ``put`` and verified on ``get``), quarantines
  corrupt entries rather than deleting them, downgrades write failures
  to counted warnings (a full disk must not discard a simulation that
  already succeeded), and keeps the ``hits`` / ``misses`` /
  ``quarantined`` / ``put_errors`` counters that make cross-client
  dedup observable in ``/metrics``.

* a :class:`~repro.engine.backends.StoreBackend` moves the opaque entry
  blobs: sharded JSON files (default), a WAL-mode SQLite file, or the
  cluster coordinator's HTTP store proxy — chosen by
  :func:`~repro.engine.backends.create_backend` from the location
  string, so ``CacheStore("~/.cache/stfm-sim")``,
  ``CacheStore("sqlite:/tmp/store.sqlite")`` and
  ``CacheStore("http://coordinator:8765")`` behave identically.

``ResultStore`` remains as an alias of :class:`CacheStore` for existing
imports.
"""

from __future__ import annotations

import hashlib
import json
import logging
import threading
from pathlib import Path

from repro import faults
from repro.engine.backends import (
    QUARANTINE_DIR,
    FsBackend,
    StoreBackend,
    StoreStats,
    create_backend,
)

__all__ = [
    "CacheStore",
    "QUARANTINE_DIR",
    "ResultStore",
    "StoreStats",
    "payload_checksum",
]

_log = logging.getLogger("repro.engine.store")


def payload_checksum(payload: dict) -> str:
    """Canonical SHA-256 of a payload (key-order independent)."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class CacheStore:
    """Checksummed job payloads over a pluggable backend.

    One store instance may be shared by concurrent consumers (the
    simulation service hands the same object to every worker thread):
    reads and writes go straight to the backend, and the ``hits`` /
    ``misses`` / ``quarantined`` / ``put_errors`` counters are updated
    under a lock so cross-client cache behaviour can be observed
    accurately.

    Args:
        location: A backend location string — a directory (sharded-file
            store, the default), a ``sqlite:`` path or ``.sqlite`` file,
            or an ``http://`` store-proxy URL — or an already-built
            :class:`~repro.engine.backends.StoreBackend`.
    """

    def __init__(self, location: "str | Path | StoreBackend") -> None:
        self.backend = create_backend(
            location if isinstance(location, StoreBackend) else str(location)
        )
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        self.put_errors = 0
        self._lock = threading.Lock()

    # -- filesystem-compat helpers (tests, tooling) --------------------------
    @property
    def root(self) -> Path:
        """The store directory — filesystem backend only."""
        backend = self.backend
        if not isinstance(backend, FsBackend):
            raise AttributeError(
                f"store backend {backend.location()} has no root directory"
            )
        return backend.root

    def _path(self, cache_key: str) -> Path:
        """On-disk path of an entry — filesystem backend only."""
        backend = self.backend
        if not isinstance(backend, FsBackend):
            raise AttributeError(
                f"store backend {backend.location()} has no entry paths"
            )
        return backend.path(cache_key)

    def location(self) -> str:
        return self.backend.location()

    def close(self) -> None:
        self.backend.close()

    # -- counters ------------------------------------------------------------
    def _count(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.hits += 1
            else:
                self.misses += 1

    def _quarantine(self, cache_key: str, reason: str) -> None:
        """Move a corrupt entry aside so the next ``get`` is a clean
        miss instead of a repeated parse error."""
        self.backend.quarantine(cache_key)
        with self._lock:
            self.quarantined += 1
        _log.warning(
            "quarantined corrupt store entry %s (%s) in %s",
            cache_key[:12], reason, self.backend.location(),
        )

    # -- store API -----------------------------------------------------------
    def get(self, cache_key: str) -> "dict | None":
        """Payload for a key, or None on miss.

        A corrupt entry — unparseable JSON, a missing ``payload``, or a
        payload that no longer matches its recorded checksum — is
        quarantined and reported as a miss.
        """
        raw = self.backend.read(cache_key)
        if raw is None:
            self._count(hit=False)
            return None
        if faults.fires("corrupt", cache_key):
            raw = raw[: len(raw) // 2]  # a torn write, deterministically
        try:
            entry = json.loads(raw.decode("utf-8"))
            payload = entry["payload"]
        except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
            self._quarantine(cache_key, f"{type(exc).__name__}: {exc}")
            self._count(hit=False)
            return None
        recorded = entry.get("sha256")
        if recorded is not None and recorded != payload_checksum(payload):
            self._quarantine(cache_key, "payload checksum mismatch")
            self._count(hit=False)
            return None
        self._count(hit=True)
        return payload

    def put(self, cache_key: str, payload: dict, describe: str = "",
            kind: str = "") -> bool:
        """Atomically persist a payload under its key (best-effort).

        Returns True when the entry landed in the backend.  An
        ``OSError`` (disk full, read-only directory, unreachable store
        proxy) is downgraded to a counted warning — by the time ``put``
        runs the simulation has already succeeded, and losing the
        *cache* entry must not fail the batch.  Non-I/O errors (an
        unserializable payload) still propagate: those are bugs.
        """
        entry = {
            "kind": kind,
            "describe": describe,
            "sha256": payload_checksum(payload),
            "payload": payload,
        }
        blob = json.dumps(entry).encode("utf-8")
        try:
            if faults.fires("write", cache_key):
                raise OSError(28, "injected ENOSPC")  # errno.ENOSPC
            self.backend.write(cache_key, blob)
        except OSError as exc:
            with self._lock:
                self.put_errors += 1
            _log.warning(
                "best-effort store put failed for %s (%s): %s",
                cache_key[:12], describe or kind or "entry", exc,
            )
            return False
        return True

    def stats(self) -> StoreStats:
        """Entry count and total entry bytes currently stored
        (quarantined entries excluded) — identical schema for every
        backend."""
        return self.backend.stats()

    def prune(self) -> StoreStats:
        """Delete every entry (quarantined ones too); returns what was
        removed."""
        return self.backend.prune()

    def __contains__(self, cache_key: str) -> bool:
        return self.backend.contains(cache_key)

    def __len__(self) -> int:
        return self.backend.count()


#: Pre-cluster name, kept for existing imports.
ResultStore = CacheStore
