"""Content-addressed on-disk result store.

Payloads are filed under the SHA-256 of the job's canonical key (see
``jobs.cache_key``): the filename *is* the identity, so two runners — in
different processes, or days apart — that build the same job read and
write the same entry, and any change to an input (seed, budget, policy
kwargs, memory timing ...) lands on a different file instead of
poisoning an old one.

Entries are small JSON files sharded by hash prefix, written atomically
(tmp + rename) so concurrent engine processes sharing one cache
directory never observe a torn entry.  Corrupt or unreadable entries are
treated as misses and re-simulated.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path


class ResultStore:
    """A directory of ``<sha256>.json`` job payloads."""

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, cache_key: str) -> Path:
        return self.root / cache_key[:2] / f"{cache_key}.json"

    def get(self, cache_key: str) -> dict | None:
        """Payload for a key, or None on miss (or corrupt entry)."""
        path = self._path(cache_key)
        try:
            with path.open() as handle:
                entry = json.load(handle)
            return entry["payload"]
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def put(self, cache_key: str, payload: dict, describe: str = "",
            kind: str = "") -> None:
        """Atomically persist a payload under its key."""
        path = self._path(cache_key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"kind": kind, "describe": describe, "payload": payload}
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, cache_key: str) -> bool:
        return self._path(cache_key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))
