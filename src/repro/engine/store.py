"""Content-addressed on-disk result store.

Payloads are filed under the SHA-256 of the job's canonical key (see
``jobs.cache_key``): the filename *is* the identity, so two runners — in
different processes, or days apart — that build the same job read and
write the same entry, and any change to an input (seed, budget, policy
kwargs, memory timing ...) lands on a different file instead of
poisoning an old one.

Entries are small JSON files sharded by hash prefix, written atomically
(tmp + rename) so concurrent engine processes sharing one cache
directory never observe a torn entry.  Corrupt or unreadable entries are
treated as misses and re-simulated.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path


@dataclass(frozen=True)
class StoreStats:
    """Size of (or amount removed from) a result store."""

    entries: int
    total_bytes: int


class ResultStore:
    """A directory of ``<sha256>.json`` job payloads.

    One store instance may be shared by concurrent consumers (the
    simulation service hands the same object to every worker thread):
    reads and writes go straight to the filesystem, and the ``hits`` /
    ``misses`` counters are updated under a lock so cross-client cache
    behaviour can be observed accurately.
    """

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()

    def _path(self, cache_key: str) -> Path:
        return self.root / cache_key[:2] / f"{cache_key}.json"

    def _count(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.hits += 1
            else:
                self.misses += 1

    def get(self, cache_key: str) -> dict | None:
        """Payload for a key, or None on miss (or corrupt entry)."""
        path = self._path(cache_key)
        try:
            with path.open() as handle:
                entry = json.load(handle)
            payload = entry["payload"]
        except FileNotFoundError:
            self._count(hit=False)
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self._count(hit=False)
            return None
        self._count(hit=True)
        return payload

    def stats(self) -> StoreStats:
        """Entry count and total payload bytes currently on disk."""
        entries = 0
        total = 0
        for path in self.root.glob("*/*.json"):
            try:
                total += path.stat().st_size
            except OSError:
                continue
            entries += 1
        return StoreStats(entries=entries, total_bytes=total)

    def prune(self) -> StoreStats:
        """Delete every entry; returns what was removed."""
        removed = 0
        freed = 0
        for path in self.root.glob("*/*.json"):
            try:
                size = path.stat().st_size
                path.unlink()
            except OSError:
                continue
            removed += 1
            freed += size
        for shard in self.root.glob("*"):
            if shard.is_dir():
                try:
                    shard.rmdir()
                except OSError:
                    pass  # not empty (concurrent writer) — keep it
        return StoreStats(entries=removed, total_bytes=freed)

    def put(self, cache_key: str, payload: dict, describe: str = "",
            kind: str = "") -> None:
        """Atomically persist a payload under its key."""
        path = self._path(cache_key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"kind": kind, "describe": describe, "payload": payload}
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, cache_key: str) -> bool:
        return self._path(cache_key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))
