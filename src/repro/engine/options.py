"""Engine options and their context plumbing.

The experiment registry's entry points (``run(scale)``) construct their
own runners, so the CLI cannot hand each of them an engine directly.
Instead it installs :class:`EngineOptions` for the duration of the run
via :func:`engine_options`, and :func:`repro.experiments.common.make_runner`
picks up :func:`current_options` when building runners.

The installed stack is a :class:`contextvars.ContextVar`, so it is
*context-local*: concurrent consumers — the simulation service's worker
threads, or asyncio tasks — each see only the options they installed
themselves, never a sibling's.
"""

from __future__ import annotations

import contextvars
import os
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.store import ResultStore


@dataclass(frozen=True)
class EngineOptions:
    """How runners should execute and cache their simulation jobs.

    Attributes:
        jobs: Worker processes (1 = serial in-process execution).
        cache_dir: Result-store directory; None disables persistence.
        store: An already-constructed :class:`ResultStore` instance
            (overrides ``cache_dir``).  Passing the instance — rather
            than a directory — lets several runners share one store
            object, and with it its hit/miss counters: this is how the
            simulation service observes cross-client dedup.
        timeout: Per-job wall-clock limit in seconds (parallel only).
        retries: Extra attempts after a worker crash or timeout.
    """

    jobs: int = 1
    cache_dir: "str | None" = None
    store: "ResultStore | None" = None
    timeout: "float | None" = None
    retries: int = 1


_STACK: contextvars.ContextVar[tuple[EngineOptions, ...]] = contextvars.ContextVar(
    "repro_engine_options", default=(EngineOptions(),)
)


def current_options() -> EngineOptions:
    """The options installed by the innermost :func:`engine_options`."""
    return _STACK.get()[-1]


@contextmanager
def engine_options(options: "EngineOptions | None" = None, **overrides):
    """Install engine options for the dynamic extent of a with-block."""
    base = options if options is not None else current_options()
    if overrides:
        base = replace(base, **overrides)
    token = _STACK.set(_STACK.get() + (base,))
    try:
        yield base
    finally:
        _STACK.reset(token)


def default_cache_dir() -> str:
    """Where ``stfm-sim run`` persists results unless told otherwise."""
    override = os.environ.get("STFM_SIM_CACHE_DIR")
    if override:
        return override
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "stfm-sim")
