"""The job graph: decomposing experiments into deduplicated jobs.

An :class:`ExperimentPlan` collects (workload, policy) requests and
decomposes each into its simulation jobs — one :class:`AloneJob` per
core slot plus one :class:`SharedJob` — deduplicating by content
address as it goes.  The dedup is what makes batching pay: within one
workload, all policies share the same alone baselines; across
workloads, any benchmark appearing in the same core slot shares its
baseline too (it depends only on the memory system, Section 6.2), and
identical (workload, policy) pairs collapse into a single shared job.

Alone jobs are *assembly-time* dependencies of shared results, not
execution-time ones — a shared run never reads its baselines — so every
job in the plan can execute concurrently; :meth:`assemble` joins the
payloads into :class:`~repro.sim.results.WorkloadResult` objects
afterwards, in request order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.fairness import memory_slowdown
from repro.sim.config import SystemConfig
from repro.sim.results import ThreadResult, WorkloadResult
from repro.engine.jobs import (
    AloneJob,
    SharedJob,
    budget_for,
    freeze_kwargs,
    resolve_spec,
    snapshot_from_payload,
)
from repro.workloads.spec2006 import BenchmarkSpec


@dataclass(frozen=True)
class WorkloadRequest:
    """One (workload, policy) request and the jobs that realize it."""

    specs: tuple[BenchmarkSpec, ...]
    policy: str
    shared_key: str
    alone_keys: tuple[str, ...]


class ExperimentPlan:
    """Builds the deduplicated job graph for a batch of requests."""

    def __init__(
        self,
        config: SystemConfig,
        instruction_budget: int = 20_000,
        seed: int = 0,
        min_reads: int = 100,
        max_budget_factor: int = 50,
    ) -> None:
        self.config = config
        self.instruction_budget = instruction_budget
        self.seed = seed
        self.min_reads = min_reads
        self.max_budget_factor = max_budget_factor
        self._jobs: dict[str, object] = {}  # cache_key -> job, insertion order
        self.requests: list[WorkloadRequest] = []
        #: Times a requested job was already in the plan — the work the
        #: dedup avoided (before any cache is even consulted).
        self.dedup_hits = 0

    def budget_for(self, spec: "str | BenchmarkSpec") -> int:
        return budget_for(
            resolve_spec(spec),
            self.instruction_budget,
            self.min_reads,
            self.max_budget_factor,
        )

    def _admit(self, job) -> str:
        key = job.cache_key()
        if key in self._jobs:
            self.dedup_hits += 1
        else:
            self._jobs[key] = job
        return key

    def add(
        self,
        names: "list[str | BenchmarkSpec]",
        policy: str = "fr-fcfs",
        policy_kwargs: dict | None = None,
    ) -> int:
        """Add one (workload, policy) request; returns its index."""
        if not names:
            raise ValueError("workload cannot be empty")
        if len(names) > self.config.num_cores:
            raise ValueError(
                f"{len(names)} benchmarks for {self.config.num_cores} cores"
            )
        specs = tuple(resolve_spec(name) for name in names)
        num = len(specs)
        budgets = tuple(self.budget_for(spec) for spec in specs)
        alone_keys = tuple(
            self._admit(
                AloneJob(
                    spec=spec,
                    partition=i,
                    num_partitions=num,
                    budget=budgets[i],
                    seed=self.seed,
                    config=self.config,
                )
            )
            for i, spec in enumerate(specs)
        )
        shared_key = self._admit(
            SharedJob(
                specs=specs,
                policy=policy,
                policy_kwargs=freeze_kwargs(policy_kwargs),
                budgets=budgets,
                seed=self.seed,
                config=self.config,
            )
        )
        self.requests.append(
            WorkloadRequest(
                specs=specs,
                policy=policy,
                shared_key=shared_key,
                alone_keys=alone_keys,
            )
        )
        return len(self.requests) - 1

    def jobs(self) -> list:
        """All unique jobs, in first-needed order."""
        return list(self._jobs.values())

    def __len__(self) -> int:
        return len(self._jobs)

    def assemble(self, payloads: dict[str, dict]) -> list[WorkloadResult]:
        """Join job payloads into one WorkloadResult per request."""
        results = []
        for request in self.requests:
            shared = payloads[request.shared_key]
            threads = []
            for i, spec in enumerate(request.specs):
                alone = snapshot_from_payload(payloads[request.alone_keys[i]])
                entry = shared["threads"][i]
                shared_snap = snapshot_from_payload(entry)
                threads.append(
                    ThreadResult(
                        name=spec.name,
                        ipc_alone=alone.ipc,
                        ipc_shared=shared_snap.ipc,
                        mcpi_alone=alone.mcpi,
                        mcpi_shared=shared_snap.mcpi,
                        slowdown=memory_slowdown(shared_snap.mcpi, alone.mcpi),
                        row_hit_rate_shared=entry["row_hit_rate"],
                    )
                )
            extras = {"cycles": shared["cycles"], **shared.get("extras", {})}
            results.append(
                WorkloadResult(
                    policy=shared["policy_name"],
                    threads=tuple(threads),
                    extras=extras,
                )
            )
        return results
