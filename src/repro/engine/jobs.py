"""Simulation jobs: the unit of work of the experiment engine.

The run-alone / run-shared methodology (Section 6.2) decomposes into two
job kinds:

* an :class:`AloneJob` runs one benchmark alone under FR-FCFS — the
  slowdown baseline.  It depends only on the memory system, the trace
  seed and the instruction budget, *not* on co-runners, so one alone job
  feeds every workload (and every policy) that contains the benchmark in
  the same core slot.
* a :class:`SharedJob` runs a multiprogrammed workload under one
  scheduling policy.

Both are frozen dataclasses built from frozen dataclasses
(:class:`~repro.workloads.spec2006.BenchmarkSpec`,
:class:`~repro.sim.config.SystemConfig`), which makes them hashable,
picklable, and — crucially — gives them a *canonical identity*:
:meth:`cache_key` hashes every input the simulation result depends on
(spec, partition, budget, seed, policy + kwargs, memory system, safety
ceiling), so results can be persisted on disk and shared across
processes and invocations safely.

Jobs execute to JSON-serializable *payloads* (plain dicts of ints,
floats and strings), never to live simulator objects: payloads survive
the round-trips through worker pipes and the on-disk result store
bit-identically (Python floats round-trip exactly through ``repr`` and
therefore through JSON).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields
from typing import Any, Callable, ClassVar

from repro.cpu.core import CoreSnapshot
from repro.cpu.trace import Trace
from repro.schedulers.registry import make_policy
from repro.sim.config import SystemConfig
from repro.sim.system import CmpSystem
from repro.workloads.spec2006 import BenchmarkSpec, benchmark
from repro.workloads.synthetic import SyntheticTraceGenerator


def resolve_spec(item: "str | BenchmarkSpec") -> BenchmarkSpec:
    """Accept either a registry name or an explicit spec."""
    if isinstance(item, BenchmarkSpec):
        return item
    return benchmark(item)


def budget_for(
    spec: BenchmarkSpec,
    instruction_budget: int,
    min_reads: int = 100,
    max_budget_factor: int = 50,
) -> int:
    """Per-benchmark instruction budget.

    Non-memory-intensive benchmarks get their budget extended so their
    trace contains at least ``min_reads`` demand reads — otherwise their
    MCPI (and thus slowdown) would be statistical noise.
    """
    if spec.mpki <= 0:
        return instruction_budget
    needed = int(min_reads * 1000.0 / spec.mpki)
    return min(
        max(instruction_budget, needed), instruction_budget * max_budget_factor
    )


# -- canonical keys ---------------------------------------------------------


def _canonical(value: Any) -> Any:
    """Reduce a value to nested tuples of primitives with stable repr."""
    if isinstance(value, dict):
        return tuple(sorted((k, _canonical(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(v) for v in value)
    if hasattr(value, "__dataclass_fields__"):
        return tuple(
            (f.name, _canonical(getattr(value, f.name))) for f in fields(value)
        )
    return value


def spec_key(spec: BenchmarkSpec) -> tuple:
    return _canonical(spec)


def config_key(config: SystemConfig) -> tuple:
    """Everything about the system a simulation result depends on.

    ``memory_key()`` deliberately excludes ``num_cores`` (baselines are
    shared across core counts with the same memory system); the safety
    ceiling ``max_cycles`` is included because a run that hits it is
    truncated.
    """
    return _canonical(config.memory_key()) + (("max_cycles", config.max_cycles),)


def freeze_kwargs(kwargs: dict | None) -> tuple:
    """Canonicalize policy kwargs into a hashable, ordered form."""
    return _canonical(kwargs or {})


def thaw_kwargs(frozen: tuple) -> dict:
    """Back to constructor form.  Sequence values stay tuples — every
    policy option (``weights``, ``shares``) only indexes its sequence."""
    return {key: value for key, value in frozen}


def _digest(key: tuple) -> str:
    return hashlib.sha256(repr(key).encode()).hexdigest()


# -- the two job kinds ------------------------------------------------------


@dataclass(frozen=True)
class AloneJob:
    """Run one benchmark alone under FR-FCFS (the slowdown baseline)."""

    spec: BenchmarkSpec
    partition: int
    num_partitions: int
    budget: int
    seed: int
    config: SystemConfig

    kind: ClassVar[str] = "alone"

    def key(self) -> tuple:
        return (
            self.kind,
            spec_key(self.spec),
            self.partition,
            self.num_partitions,
            self.budget,
            self.seed,
            config_key(self.config),
        )

    def cache_key(self) -> str:
        return _digest(self.key())

    def describe(self) -> str:
        return f"alone {self.spec.name} [{self.partition}/{self.num_partitions}]"


@dataclass(frozen=True)
class SharedJob:
    """Run a multiprogrammed workload under one scheduling policy."""

    specs: tuple[BenchmarkSpec, ...]
    policy: str
    policy_kwargs: tuple  # output of freeze_kwargs()
    budgets: tuple[int, ...]
    seed: int
    config: SystemConfig

    kind: ClassVar[str] = "shared"

    def key(self) -> tuple:
        return (
            self.kind,
            tuple(spec_key(spec) for spec in self.specs),
            self.policy,
            self.policy_kwargs,
            self.budgets,
            self.seed,
            config_key(self.config),
        )

    def cache_key(self) -> str:
        return _digest(self.key())

    def describe(self) -> str:
        names = "+".join(spec.name for spec in self.specs)
        return f"shared {names} under {self.policy}"


# -- trace construction -----------------------------------------------------

#: Per-process memo of generated traces.  Trace generation is fully
#: deterministic in (seed, spec, partition) — see SyntheticTraceGenerator
#: — so regenerating in a worker process yields bit-identical traces;
#: this cache only saves time when one process runs many jobs (the
#: serial path, or an alone baseline followed by its shared runs).
_TRACE_CACHE: dict[tuple, Trace] = {}
_TRACE_CACHE_LIMIT = 256


def build_trace(
    config: SystemConfig,
    seed: int,
    spec: BenchmarkSpec,
    budget: int,
    partition: int,
    num_partitions: int,
) -> Trace:
    key = (
        spec_key(spec),
        budget,
        partition,
        num_partitions,
        seed,
        config_key(config),
    )
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        generator = SyntheticTraceGenerator(config.mapper(), seed)
        trace = generator.trace_for(
            spec, budget, partition=partition, num_partitions=num_partitions
        )
        if len(_TRACE_CACHE) >= _TRACE_CACHE_LIMIT:
            _TRACE_CACHE.clear()
        _TRACE_CACHE[key] = trace
    return trace


# -- execution --------------------------------------------------------------


def snapshot_payload(snapshot: CoreSnapshot) -> dict:
    return {
        "instructions": snapshot.instructions,
        "cycles": snapshot.cycles,
        "memory_stall_cycles": snapshot.memory_stall_cycles,
        "reads_issued": snapshot.reads_issued,
    }


def snapshot_from_payload(payload: dict) -> CoreSnapshot:
    return CoreSnapshot(
        instructions=payload["instructions"],
        cycles=payload["cycles"],
        memory_stall_cycles=payload["memory_stall_cycles"],
        reads_issued=payload["reads_issued"],
    )


def run_alone_job(job: AloneJob) -> dict:
    trace = build_trace(
        job.config, job.seed, job.spec, job.budget, job.partition,
        job.num_partitions,
    )
    policy = make_policy("fr-fcfs", num_threads=1)
    system = CmpSystem(
        job.config, [trace], policy, job.budget, mlp_limits=[job.spec.mlp]
    )
    snapshot = system.run()[0]
    return snapshot_payload(snapshot)


def run_shared_job(job: SharedJob) -> dict:
    num = len(job.specs)
    traces = [
        build_trace(job.config, job.seed, spec, job.budgets[i], i, num)
        for i, spec in enumerate(job.specs)
    ]
    policy = make_policy(
        job.policy, num_threads=num, **thaw_kwargs(job.policy_kwargs)
    )
    system = CmpSystem(
        job.config,
        traces,
        policy,
        list(job.budgets),
        mlp_limits=[spec.mlp for spec in job.specs],
    )
    snapshots = system.run()
    threads = []
    for i in range(num):
        thread = snapshot_payload(snapshots[i])
        thread["row_hit_rate"] = system.controller.thread_stats[i].row_hit_rate
        threads.append(thread)
    payload = {
        "policy_name": policy.name,
        "cycles": system.now,
        "threads": threads,
        "extras": {},
    }
    if hasattr(policy, "fairness_rule_fraction"):
        payload["extras"]["fairness_rule_fraction"] = policy.fairness_rule_fraction
    return payload


#: Job-kind dispatch table.  Tests (and future subsystems) may register
#: additional kinds; with the default ``fork`` start method the registry
#: is inherited by worker processes.
JOB_RUNNERS: dict[str, Callable[[Any], dict]] = {
    AloneJob.kind: run_alone_job,
    SharedJob.kind: run_shared_job,
}


def register_job_kind(kind: str, runner: Callable[[Any], dict]) -> None:
    """Register an executor for a custom job kind.

    A job is any object with ``kind``, ``cache_key()`` and
    ``describe()``; its runner must return a JSON-serializable dict.
    """
    JOB_RUNNERS[kind] = runner


def execute_job(job) -> dict:
    """Run one job to its payload (in the calling process)."""
    try:
        runner = JOB_RUNNERS[job.kind]
    except KeyError:
        raise ValueError(f"unknown job kind {job.kind!r}") from None
    return runner(job)
