"""The engine façade: plan in, WorkloadResults out."""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.engine.executor import JobExecutor
from repro.engine.graph import ExperimentPlan
from repro.engine.store import ResultStore
from repro.sim.results import WorkloadResult


class ExperimentEngine:
    """Executes experiment plans on a worker pool with result caching.

    One engine owns one executor, whose in-memory payload cache persists
    across :meth:`execute` calls — a runner that issues several plans
    (say, one per experiment figure) transparently reuses overlapping
    jobs; the optional on-disk store extends that across processes and
    invocations.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: "str | None" = None,
        store: "ResultStore | None" = None,
        timeout: "float | None" = None,
        retries: int = 1,
        progress: "Callable[[str], None] | None" = None,
    ) -> None:
        if store is None and cache_dir:
            store = ResultStore(cache_dir)
        self.executor = JobExecutor(
            jobs=jobs,
            store=store,
            timeout=timeout,
            retries=retries,
            progress=progress,
        )

    @property
    def report(self):
        """Cumulative :class:`EngineReport` of this engine."""
        return self.executor.report

    @property
    def store(self) -> "ResultStore | None":
        return self.executor.store

    def run_jobs(self, jobs: Iterable[Any]) -> dict[str, dict]:
        """Execute raw jobs → {cache_key: payload}."""
        return self.executor.run(jobs)

    def execute(self, plan: ExperimentPlan) -> list[WorkloadResult]:
        """Run a plan's job graph and assemble results in request order."""
        payloads = self.executor.run(plan.jobs())
        return plan.assemble(payloads)
