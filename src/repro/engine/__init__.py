"""repro.engine — parallel experiment engine with a persistent result store.

Decomposes run-alone / run-shared experiments into a deduplicated job
graph (:mod:`~repro.engine.graph`), executes it serially or on a
multiprocessing worker pool with per-job timeout and bounded crash retry
(:mod:`~repro.engine.executor`), and memoizes payloads both in memory
and in a content-addressed on-disk store (:mod:`~repro.engine.store`)
so repeated runs and cross-experiment overlaps never re-simulate.

Typical use goes through :class:`~repro.sim.runner.ExperimentRunner`,
which plans and assembles via this package; direct use::

    from repro.engine import ExperimentEngine, ExperimentPlan

    plan = ExperimentPlan(SystemConfig(num_cores=4), instruction_budget=20_000)
    for policy in ("fr-fcfs", "stfm"):
        plan.add(["mcf", "libquantum", "GemsFDTD", "astar"], policy)
    engine = ExperimentEngine(jobs=4, cache_dir="~/.cache/stfm-sim")
    results = engine.execute(plan)
    print(engine.report.summary())
"""

from repro.engine.api import ExperimentEngine
from repro.engine.executor import (
    EngineReport,
    JobExecutor,
    JobFailedError,
    reset_session_report,
    session_report,
)
from repro.engine.graph import ExperimentPlan, WorkloadRequest
from repro.engine.jobs import (
    AloneJob,
    SharedJob,
    budget_for,
    execute_job,
    register_job_kind,
    resolve_spec,
)
from repro.engine.options import (
    EngineOptions,
    current_options,
    default_cache_dir,
    engine_options,
)
from repro.engine.backends import StoreBackend, create_backend
from repro.engine.store import CacheStore, ResultStore, StoreStats

__all__ = [
    "AloneJob",
    "CacheStore",
    "EngineOptions",
    "EngineReport",
    "ExperimentEngine",
    "ExperimentPlan",
    "JobExecutor",
    "JobFailedError",
    "ResultStore",
    "StoreBackend",
    "SharedJob",
    "StoreStats",
    "WorkloadRequest",
    "budget_for",
    "create_backend",
    "current_options",
    "default_cache_dir",
    "engine_options",
    "execute_job",
    "register_job_kind",
    "reset_session_report",
    "resolve_spec",
    "session_report",
]
