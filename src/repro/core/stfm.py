"""The STFM scheduling policy (Sections 3.2.1, 3.3 and 5.2).

Every DRAM cycle the policy:

1. computes each active thread's (weighted) memory slowdown
   ``S = Tshared / (Tshared - Tinterference)`` from the register file,
2. computes system unfairness ``Smax / Smin`` over threads that currently
   have requests in the buffer,
3. if unfairness exceeds the threshold ``alpha``, switches to the
   *fairness rule* — commands of the most-slowed-down thread first, then
   column-first, then oldest-first; otherwise applies plain FR-FCFS to
   maximize throughput.

``Tshared`` is supplied by the cores (cycles the oldest instruction was a
pending L2 miss); the simulator wires a ``tshared_source`` callable in
place of the paper's counter communicated with each memory request.
"""

from __future__ import annotations

from typing import Callable

from repro.core.estimator import InterferenceEstimator
from repro.core.registers import StfmRegisters
from repro.dram.commands import CommandCandidate
from repro.schedulers.base import SchedulingPolicy


class StfmPolicy(SchedulingPolicy):
    """Stall-Time Fair Memory scheduler."""

    name = "STFM"
    uses_stall_slopes = True  # exact per-cycle Tshared replay

    def __init__(
        self,
        num_threads: int,
        alpha: float = 1.10,
        gamma: float = 1.0,
        interval_length: int = 1 << 24,
        weights: list[float] | None = None,
        interference_basis: str = "waiting",
    ) -> None:
        """Create the policy.

        Args:
            num_threads: Threads sharing the memory system.
            alpha: Maximum tolerable unfairness (Section 6.3 uses 1.10;
                system software may set it, a very large value disables
                hardware fairness — Section 3.3).
            gamma: Bank-parallelism scaling factor of the interference
                estimate.  The paper tuned gamma = 1/2 empirically for
                its accounting; our waiting-basis accounting at DRAM
                command granularity calibrates best at 1.0 (estimates
                track measured slowdowns within ~20% — see the
                ``ablate-gamma`` experiment and DESIGN.md).
            interval_length: Register reset period in cycles.
            weights: Per-thread weights; higher weight means the thread
                tolerates less slowdown and is prioritized sooner.
            interference_basis: 'waiting' (default) or 'ready' — see
                :class:`repro.core.estimator.InterferenceEstimator`.
        """
        super().__init__()
        if alpha < 1.0:
            raise ValueError("alpha below 1.0 is meaningless (Smax >= Smin)")
        self.num_threads = num_threads
        self.alpha = alpha
        self.gamma = gamma
        self.interference_basis = interference_basis
        self.registers = StfmRegisters(
            num_threads, interval_length=interval_length, weights=weights
        )
        self.estimator: InterferenceEstimator | None = None
        self._tshared_source: Callable[[int], int] = lambda thread_id: 0
        # Decision state recomputed each DRAM cycle.
        self.fairness_mode = False
        self.max_slowdown_thread: int | None = None
        self.last_unfairness = 1.0
        # Diagnostics.
        self.fairness_cycles = 0
        self.total_cycles = 0

    def bind(self, controller) -> None:
        super().bind(controller)
        self.estimator = InterferenceEstimator(
            self.registers,
            controller,
            gamma=self.gamma,
            basis=self.interference_basis,
        )

    def set_tshared_source(self, source: Callable[[int], int]) -> None:
        """Wire the per-thread memory-stall counters of the cores."""
        self._tshared_source = source

    # -- system-software interface (Section 3.3) -------------------------
    def set_alpha(self, alpha: float) -> None:
        """Privileged update of the maximum tolerable unfairness.

        A very large value effectively disables hardware-enforced
        fairness (the controller then always applies FR-FCFS).
        """
        if alpha < 1.0:
            raise ValueError("alpha below 1.0 is meaningless (Smax >= Smin)")
        self.alpha = alpha

    def set_thread_weight(self, thread_id: int, weight: float) -> None:
        """Convey a new thread weight from the system software."""
        self.registers.set_weight(thread_id, weight)

    def notify_context_switch(self, thread_id: int) -> None:
        """Reset the hardware thread's registers at a context switch."""
        self.registers.context_switch(
            thread_id, self._tshared_source(thread_id)
        )

    # -- per-cycle decision --------------------------------------------------
    def begin_cycle(self, now: int) -> None:
        assert self.controller is not None
        self.total_cycles += 1
        counters = [self._tshared_source(t) for t in range(self.num_threads)]
        self.registers.advance_interval(
            self.controller.timing.dram_cycle, counters
        )
        self._decide(counters)

    def fast_forward(self, start, ticks, stall_slopes) -> None:
        """Inert-window replay: run the per-cycle decision ``ticks`` times.

        The decision depends on float slowdowns crossing ``alpha``, so
        there is no closed form — but during an inert window the stall
        counters are exactly ``base + slope * elapsed`` (slope 1 for a
        memory-stalled core, 0 for an idle one) and the queues are
        frozen, so replaying :meth:`begin_cycle`'s arithmetic with the
        reconstructed counters is bit-identical to having ticked.  The
        replay costs O(threads) per cycle instead of the full
        scan-and-schedule tick.
        """
        assert self.controller is not None
        dram_cycle = self.controller.timing.dram_cycle
        threads = range(self.num_threads)
        bases = [self._tshared_source(t) for t in threads]
        counters = list(bases)
        for tick in range(ticks):
            if tick:
                elapsed = tick * dram_cycle
                for t in threads:
                    if stall_slopes[t]:
                        counters[t] = bases[t] + elapsed
            self.total_cycles += 1
            self.registers.advance_interval(dram_cycle, counters)
            self._decide(counters)

    def _decide(self, counters: list[int]) -> None:
        """The fairness-mode decision for one DRAM cycle.

        ``counters`` are the threads' cumulative stall counters as of
        this cycle (live during normal ticks, reconstructed during
        fast-forward replay).
        """
        active = self.controller.queues.threads_with_reads()
        if len(active) < 2:
            self.fairness_mode = False
            self.max_slowdown_thread = active[0] if active else None
            self.last_unfairness = 1.0
            return
        slowdowns = [
            (self.registers.weighted_slowdown(t, counters[t]), t)
            for t in active
        ]
        s_max, t_max = max(slowdowns)
        s_min, _ = min(slowdowns)
        self.last_unfairness = s_max / max(s_min, 1e-9)
        self.fairness_mode = self.last_unfairness > self.alpha
        self.max_slowdown_thread = t_max
        if self.fairness_mode:
            self.fairness_cycles += 1

    def slowdown_of(self, thread_id: int) -> float:
        """Current raw slowdown estimate of a thread (diagnostics)."""
        return self.registers.slowdown(thread_id, self._tshared_source(thread_id))

    def priority_key(self, candidate: CommandCandidate, now: int):
        favored = (
            1
            if self.fairness_mode
            and candidate.thread_id == self.max_slowdown_thread
            else 0
        )
        return (favored, 1 if candidate.is_column else 0, -candidate.arrival)

    # -- event hooks -----------------------------------------------------------
    def on_command_issued(self, candidate, scan, now) -> None:
        assert self.estimator is not None
        self.estimator.on_command_issued(candidate, scan, now)

    @property
    def fairness_rule_fraction(self) -> float:
        """Fraction of DRAM cycles spent under the fairness rule."""
        if not self.total_cycles:
            return 0.0
        return self.fairness_cycles / self.total_cycles
