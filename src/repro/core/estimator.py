"""The ``TInterference`` update rules of Section 3.2.2.

Whenever the scheduler issues a DRAM command ``R`` from thread ``C``, the
estimator updates every thread's extra-stall-time estimate:

1. **Other threads, DRAM bus** — a read/write command occupies the data
   bus for ``tBus`` cycles; every other thread that had a ready column
   command gains ``tBus`` of interference.
2. **Other threads, DRAM bank** — threads with a ready command waiting
   for the same bank are delayed by ``R``'s service latency, amortized
   over the thread's ``BankWaitingParallelism`` (requests waiting in
   different banks overlap), scaled by ``gamma``:
   ``Latency(R) / (gamma * BankWaitingParallelism)`` with
   ``gamma = 1/2``.
3. **The own thread** — if the serviced request's row-buffer outcome
   differs from what it would have been had the thread run alone (tracked
   via ``LastRowAddress``), the latency difference — positive for e.g. a
   conflict that would have been a hit, negative for constructive sharing
   (footnote 10) — is charged, amortized over the thread's
   ``BankAccessParallelism``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.registers import StfmRegisters
from repro.dram.bank import RowBufferOutcome

if TYPE_CHECKING:
    from repro.controller.controller import MemoryController, ScanInfo
    from repro.dram.commands import CommandCandidate


class InterferenceEstimator:
    """Applies the interference updates against a register file.

    Args:
        registers: The STFM register file to update.
        controller: The owning memory controller (timing, queues).
        gamma: Bank-parallelism scaling factor (the paper used 1/2;
            our default is 1.0 — see StfmPolicy).
        basis: Which threads count as delayed by an issued command —
            ``"waiting"`` (default; threads with a request queued for
            the resource) or ``"ready"`` (the paper's literal wording:
            threads whose next command could issue this cycle).  The
            ready basis systematically underestimates victims' delay at
            DRAM-command granularity; see ScanInfo's docstring and the
            ``ablate-estimator`` experiment.
    """

    def __init__(
        self,
        registers: StfmRegisters,
        controller: "MemoryController",
        gamma: float = 1.0,
        basis: str = "waiting",
    ) -> None:
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        if basis not in ("waiting", "ready"):
            raise ValueError("basis must be 'waiting' or 'ready'")
        self.registers = registers
        self.controller = controller
        self.gamma = gamma
        self.basis = basis

    def on_command_issued(
        self, candidate: "CommandCandidate", scan: "ScanInfo", now: int
    ) -> None:
        """Run all three update rules for one issued command."""
        self._update_bank_interference(candidate, scan)
        if candidate.is_column:
            self._update_bus_interference(candidate, scan)
            self._update_own_thread(candidate, scan)

    # -- rule 1b: bank interference ---------------------------------------
    def _update_bank_interference(
        self, candidate: "CommandCandidate", scan: "ScanInfo"
    ) -> None:
        by_bank = (
            scan.waiting_threads_by_bank
            if self.basis == "waiting"
            else scan.ready_threads_by_bank
        )
        waiters = by_bank.get(candidate.bank_index)
        if not waiters:
            return
        issuer = candidate.thread_id
        queues = self.controller.queues
        latency = candidate.latency
        # sorted(): the scan structures are sets; a fixed visit order
        # keeps float interference accumulation bit-reproducible (SIM003).
        for thread in sorted(waiters):
            if thread == issuer:
                continue
            parallelism = max(1, queues.waiting_bank_count(thread))
            self.registers.add_interference(
                thread, latency / (self.gamma * parallelism)
            )

    # -- rule 1a: bus interference -----------------------------------------
    def _update_bus_interference(
        self, candidate: "CommandCandidate", scan: "ScanInfo"
    ) -> None:
        issuer = candidate.thread_id
        t_bus = self.controller.timing.t_bus
        column_threads = (
            scan.waiting_column_threads
            if self.basis == "waiting"
            else scan.ready_column_threads
        )
        for thread in sorted(column_threads):
            if thread != issuer:
                self.registers.add_interference(thread, t_bus)

    # -- rule 2: own-thread extra latency -----------------------------------
    def _update_own_thread(
        self, candidate: "CommandCandidate", scan: "ScanInfo"
    ) -> None:
        request = candidate.request
        thread = request.thread_id
        coords = request.coords
        global_bank = self.controller.queues.global_bank(
            coords.channel, coords.bank
        )
        alone_row = self.registers.last_row(thread, global_bank)
        if alone_row is None:
            alone_outcome = RowBufferOutcome.ROW_CLOSED
        elif alone_row == coords.row:
            alone_outcome = RowBufferOutcome.ROW_HIT
        else:
            alone_outcome = RowBufferOutcome.ROW_CONFLICT
        actual_outcome = request.service_outcome()
        extra = self._outcome_latency(actual_outcome) - self._outcome_latency(
            alone_outcome
        )
        if extra:
            parallelism = max(
                1, self.controller.bank_access_parallelism(thread)
            )
            self.registers.add_interference(thread, extra / parallelism)
        self.registers.record_row(thread, global_bank, coords.row)

    def _outcome_latency(self, outcome: RowBufferOutcome) -> int:
        """Row-access latency beyond the unavoidable column access.

        A hit needs nothing extra; a closed row pays ``tRCD``; a conflict
        pays ``tRP + tRCD`` (the paper's ``ExtraLatency``).
        """
        timing = self.controller.timing
        if outcome is RowBufferOutcome.ROW_HIT:
            return 0
        if outcome is RowBufferOutcome.ROW_CLOSED:
            return timing.rcd
        return timing.rp + timing.rcd
