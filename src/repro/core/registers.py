"""STFM's register file (Table 1 of the paper).

Per hardware thread the scheduler maintains:

* ``Tshared`` — cycles the thread could not commit instructions due to an
  L2 miss, supplied by the core.  Stored here as an *offset* against the
  core's monotonically increasing stall counter so that the register can
  be reset every ``IntervalLength`` cycles, as the hardware does to adapt
  to phase behaviour (Section 5.1).
* ``Tinterference`` — extra stall cycles attributed to other threads,
  computed in the memory controller (Section 3.2.2).
* ``LastRowAddress`` — per thread per bank, the last row the thread
  accessed; used to decide what the row-buffer outcome *would have been*
  had the thread run alone.
* ``Weight`` — the system-software-assigned thread weight (Section 3.3).

``BankWaitingParallelism`` and ``BankAccessParallelism`` are maintained
incrementally by the request queues and the controller respectively and
are read through them rather than duplicated here.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: Saturation value for the slowdown estimate.  The hardware stores
#: slowdowns in 8-bit fixed point (Table 1); we saturate rather than wrap.
SLOWDOWN_CAP = 128.0


@dataclass
class ThreadRegisters:
    """Registers of a single hardware thread."""

    weight: float = 1.0
    tshared_offset: int = 0
    t_interference: float = 0.0
    #: global bank id -> last row this thread accessed there.
    last_row: dict[int, int] = field(default_factory=dict)

    def reset(self, current_stall_cycles: int) -> None:
        """Interval reset: zero the slowdown-estimation state."""
        self.tshared_offset = current_stall_cycles
        self.t_interference = 0.0
        self.last_row.clear()


class StfmRegisters:
    """The full register file plus the slowdown computation.

    Args:
        num_threads: Hardware threads tracked.
        interval_length: Cycles between register resets (``2**24``
            baseline; Section 6.3 notes fairness degrades below ``2**18``).
        weights: Optional per-thread weights (Section 3.3); default 1.
    """

    def __init__(
        self,
        num_threads: int,
        interval_length: int = 1 << 24,
        weights: list[float] | None = None,
    ) -> None:
        if weights is None:
            weights = [1.0] * num_threads
        if len(weights) != num_threads:
            raise ValueError("need one weight per thread")
        if any(weight < 0 for weight in weights):
            raise ValueError("weights must be non-negative")
        self.num_threads = num_threads
        self.interval_length = interval_length
        self.threads = [ThreadRegisters(weight=w) for w in weights]
        self.interval_counter = 0
        self.resets = 0

    def advance_interval(self, cycles: int, stall_counters: list[int]) -> bool:
        """Advance the interval counter; reset registers when it expires.

        Args:
            cycles: CPU cycles since the previous call.
            stall_counters: Current cumulative stall counters of the cores
                (used to rebase the ``Tshared`` offsets).

        Returns:
            True when a reset occurred this call.
        """
        self.interval_counter += cycles
        if self.interval_counter < self.interval_length:
            return False
        self.interval_counter = 0
        self.resets += 1
        for thread, stalls in zip(self.threads, stall_counters):
            thread.reset(stalls)
        return True

    def context_switch(self, thread_id: int, stall_counter: int) -> None:
        """Reset one hardware thread's registers at a context switch.

        Table 1: per-thread registers are reset at every context switch
        (the new software thread must not inherit the old one's slowdown
        history).  ``stall_counter`` is the core's cumulative stall
        counter at the switch, used to rebase ``Tshared``.
        """
        self.threads[thread_id].reset(stall_counter)

    def set_weight(self, thread_id: int, weight: float) -> None:
        """System-software update of a thread's weight (Section 3.3)."""
        if weight < 0:
            raise ValueError("weights must be non-negative")
        self.threads[thread_id].weight = weight

    def tshared(self, thread_id: int, stall_counter: int) -> int:
        """``Tshared``: stall cycles accumulated in the current interval."""
        return stall_counter - self.threads[thread_id].tshared_offset

    def slowdown(self, thread_id: int, stall_counter: int) -> float:
        """Raw memory slowdown ``S = Tshared / (Tshared - Tinterference)``.

        ``Talone`` is estimated as ``Tshared - Tinterference``
        (Section 3.2.2).  Saturates at :data:`SLOWDOWN_CAP`; a thread with
        no stall time yet has slowdown 1 (it cannot have been slowed).
        Negative interference (constructive sharing, footnote 10) can make
        the slowdown dip below 1.
        """
        shared = self.tshared(thread_id, stall_counter)
        if shared <= 0:
            return 1.0
        alone = shared - self.threads[thread_id].t_interference
        if alone <= shared / SLOWDOWN_CAP:
            return SLOWDOWN_CAP
        return shared / alone

    def weighted_slowdown(self, thread_id: int, stall_counter: int) -> float:
        """Weight-scaled slowdown ``S' = 1 + (S - 1) * Weight``.

        Threads with higher weights are interpreted as more slowed down
        and thus prioritized earlier (Section 3.3).
        """
        raw = self.slowdown(thread_id, stall_counter)
        return 1.0 + (raw - 1.0) * self.threads[thread_id].weight

    def add_interference(self, thread_id: int, cycles: float) -> None:
        self.threads[thread_id].t_interference += cycles

    def last_row(self, thread_id: int, global_bank: int) -> int | None:
        return self.threads[thread_id].last_row.get(global_bank)

    def record_row(self, thread_id: int, global_bank: int, row: int) -> None:
        self.threads[thread_id].last_row[global_bank] = row
