"""MISE-STFM: STFM's fairness rule on request-service-rate slowdowns.

Subramanian et al. ("MISE: Providing Performance Predictability and
Improving Fairness in Shared Main Memory Systems", HPCA 2013) estimate
an application's slowdown without STFM's interference accounting: memory
slowdown is the ratio of the *alone* request service rate to the
*shared* request service rate, and the alone rate can be **measured**
rather than modelled — periodically give each application the highest
priority in the controller for one epoch; while it has priority, it
barely experiences interference, so its service rate during its
sampling epochs approximates the alone rate.

This module plugs that estimation scheme into the same fairness rule
STFM applies on top of its register model (:mod:`repro.core.stfm`): if
the ratio of the maximum to the minimum weighted slowdown exceeds
``alpha``, prioritize the most-slowed-down thread; otherwise schedule
FR-FCFS for throughput.  The split mirrors the seam between
:class:`~repro.core.stfm.StfmPolicy` and its
:class:`~repro.core.estimator.InterferenceEstimator`: the policy owns
the decision rule, a :class:`ServiceRateEstimator` owns the slowdown
numbers.

Divergences from the MISE paper, scaled to this simulator's synthetic
trace budgets (documented in DESIGN.md §3.17):

* epochs default to 2000 DRAM cycles (the paper samples in 10000-cycle
  epochs inside 5M-cycle intervals; our runs are orders of magnitude
  shorter);
* rates are cumulative averages over all epochs observed so far rather
  than interval-reset, so estimates stabilize quickly at small budgets;
* the fairness decision is recomputed at epoch boundaries (service
  rates only change there), not every DRAM cycle as in STFM.
"""

from __future__ import annotations

from repro.core.registers import SLOWDOWN_CAP
from repro.dram.commands import CommandCandidate
from repro.schedulers.base import SchedulingPolicy


class ServiceRateEstimator:
    """Per-thread request-service-rate accounting (the MISE estimator).

    One thread at a time is *sampled* (given highest priority); its
    service counts during sampled epochs feed the alone-rate estimate,
    every thread's counts during unsampled epochs feed the shared-rate
    estimates.  All state is integers updated at request completions
    and epoch boundaries, so replay across the event kernel's inert
    windows is trivially exact.
    """

    def __init__(self, num_threads: int) -> None:
        self.num_threads = num_threads
        self.sampled_thread = 0
        self._epoch_served = [0] * num_threads
        self._alone_served = [0] * num_threads
        self._alone_epochs = [0] * num_threads
        self._shared_served = [0] * num_threads
        self._shared_epochs = [0] * num_threads
        self.epochs_completed = 0

    def on_request_completed(self, thread_id: int) -> None:
        self._epoch_served[thread_id] += 1

    def end_epoch(self) -> None:
        """Fold the finished epoch's counts in and rotate the sample."""
        sampled = self.sampled_thread
        for thread in range(self.num_threads):
            served = self._epoch_served[thread]
            if thread == sampled:
                self._alone_served[thread] += served
                self._alone_epochs[thread] += 1
            else:
                self._shared_served[thread] += served
                self._shared_epochs[thread] += 1
            self._epoch_served[thread] = 0
        self.epochs_completed += 1
        self.sampled_thread = (sampled + 1) % self.num_threads

    def alone_rate(self, thread_id: int) -> float:
        epochs = self._alone_epochs[thread_id]
        return self._alone_served[thread_id] / epochs if epochs else 0.0

    def shared_rate(self, thread_id: int) -> float:
        epochs = self._shared_epochs[thread_id]
        return self._shared_served[thread_id] / epochs if epochs else 0.0

    def slowdown(self, thread_id: int) -> float:
        """``S = alone_rate / shared_rate``, saturated like STFM's.

        A thread with no alone-rate measurement yet (or one that was
        never slowed: alone rate zero) reports slowdown 1 — the same
        convention as :meth:`repro.core.registers.StfmRegisters.slowdown`
        for threads with no stall time.
        """
        alone = self.alone_rate(thread_id)
        if alone <= 0.0 or not self._shared_epochs[thread_id]:
            return 1.0
        shared = self.shared_rate(thread_id)
        if shared <= alone / SLOWDOWN_CAP:
            return SLOWDOWN_CAP
        ratio = alone / shared
        return ratio if ratio > 1.0 else 1.0


class MiseStfmPolicy(SchedulingPolicy):
    """STFM's fairness rule driven by MISE slowdown estimation."""

    name = "MISE-STFM"
    # Decisions derive from completion counts and the epoch timer; the
    # per-issue ScanInfo side products are never read.
    needs_scan = False

    def __init__(
        self,
        num_threads: int,
        alpha: float = 1.10,
        epoch_length: int = 2_000,
        weights: list[float] | None = None,
    ) -> None:
        """Create the policy.

        Args:
            num_threads: Threads sharing the memory system.
            alpha: Maximum tolerable unfairness (STFM's threshold).
            epoch_length: Sampling-epoch length in DRAM cycles.
            weights: Per-thread weights; higher weight means the thread
                tolerates less slowdown (STFM's Section 3.3 semantics).
        """
        super().__init__()
        if alpha < 1.0:
            raise ValueError("alpha below 1.0 is meaningless (Smax >= Smin)")
        if epoch_length < 1:
            raise ValueError("epoch_length must be at least 1")
        if weights is None:
            weights = [1.0] * num_threads
        if len(weights) != num_threads:
            raise ValueError("need one weight per thread")
        if any(weight < 0 for weight in weights):
            raise ValueError("weights must be non-negative")
        self.num_threads = num_threads
        self.alpha = alpha
        self.epoch_length = epoch_length
        self.weights = list(weights)
        self.estimator = ServiceRateEstimator(num_threads)
        self._epoch_tick = 0
        # Decision state, recomputed at epoch boundaries.
        self.fairness_mode = False
        self.max_slowdown_thread: int | None = None
        self.last_unfairness = 1.0
        # Diagnostics.
        self.fairness_cycles = 0
        self.total_cycles = 0

    # -- system-software interface (STFM Section 3.3) ---------------------
    def set_alpha(self, alpha: float) -> None:
        if alpha < 1.0:
            raise ValueError("alpha below 1.0 is meaningless (Smax >= Smin)")
        self.alpha = alpha

    def set_thread_weight(self, thread_id: int, weight: float) -> None:
        if weight < 0:
            raise ValueError("weights must be non-negative")
        self.weights[thread_id] = weight

    # -- per-cycle timer ---------------------------------------------------
    def begin_cycle(self, now: int) -> None:
        self._epoch_tick += 1
        if self._epoch_tick >= self.epoch_length:
            self._epoch_tick = 0
            self._end_epoch()
        self.total_cycles += 1
        if self.fairness_mode:
            self.fairness_cycles += 1

    def fast_forward(self, start, ticks, stall_slopes) -> None:
        """Inert-window replay: the epoch timer and the mode counters.

        Completion counts are frozen across an inert window, so the only
        per-cycle state is the timer and the fairness-cycle diagnostic.
        Boundary crossings are replayed exactly: the ticks before a
        crossing count under the old fairness mode, the crossing tick
        itself ends the epoch first and counts under the new one — the
        same order :meth:`begin_cycle` uses.
        """
        remaining = ticks
        while remaining > 0:
            to_boundary = self.epoch_length - self._epoch_tick
            if remaining < to_boundary:
                self._epoch_tick += remaining
                self.total_cycles += remaining
                if self.fairness_mode:
                    self.fairness_cycles += remaining
                break
            before = to_boundary - 1
            self.total_cycles += before
            if self.fairness_mode:
                self.fairness_cycles += before
            self._epoch_tick = 0
            self._end_epoch()
            self.total_cycles += 1
            if self.fairness_mode:
                self.fairness_cycles += 1
            remaining -= to_boundary

    def _end_epoch(self) -> None:
        self.estimator.end_epoch()
        self._decide()

    def _decide(self) -> None:
        """STFM's fairness decision over the MISE slowdown estimates."""
        assert self.controller is not None
        active = self.controller.queues.threads_with_reads()
        if len(active) < 2:
            self.fairness_mode = False
            self.max_slowdown_thread = active[0] if active else None
            self.last_unfairness = 1.0
            return
        slowdowns = [(self.weighted_slowdown(t), t) for t in active]
        s_max, t_max = max(slowdowns)
        s_min, _ = min(slowdowns)
        self.last_unfairness = s_max / max(s_min, 1e-9)
        self.fairness_mode = self.last_unfairness > self.alpha
        self.max_slowdown_thread = t_max

    def weighted_slowdown(self, thread_id: int) -> float:
        """Weight-scaled slowdown ``S' = 1 + (S - 1) * Weight``."""
        raw = self.estimator.slowdown(thread_id)
        return 1.0 + (raw - 1.0) * self.weights[thread_id]

    # -- prioritization ----------------------------------------------------
    def priority_key(self, candidate: CommandCandidate, now: int):
        """Sampled thread first (the measurement mechanism), then the
        fairness rule's favored thread, then FR-FCFS order."""
        thread = candidate.thread_id
        favored = (
            1
            if self.fairness_mode and thread == self.max_slowdown_thread
            else 0
        )
        return (
            1 if thread == self.estimator.sampled_thread else 0,
            favored,
            1 if candidate.is_column else 0,
            -candidate.arrival,
        )

    # -- event hooks -------------------------------------------------------
    def on_request_completed(self, request, now: int) -> None:
        self.estimator.on_request_completed(request.thread_id)

    @property
    def fairness_rule_fraction(self) -> float:
        """Fraction of DRAM cycles spent under the fairness rule."""
        if not self.total_cycles:
            return 0.0
        return self.fairness_cycles / self.total_cycles
