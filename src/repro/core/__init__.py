"""STFM: the Stall-Time Fair Memory scheduler (the paper's contribution).

The package implements Section 3 (approach and algorithm) and Section 5
(implementation) of the paper:

* :mod:`repro.core.registers` — the per-thread register file of Table 1.
* :mod:`repro.core.estimator` — the ``TInterference`` update rules of
  Section 3.2.2 (bus interference, bank interference amortized by
  ``BankWaitingParallelism``, and own-thread extra latency amortized by
  ``BankAccessParallelism``).
* :mod:`repro.core.stfm` — the scheduling policy of Section 3.2.1 with
  the system-software support of Section 3.3 (``alpha`` threshold and
  thread weights).
* :mod:`repro.core.mise` — an extension: STFM's fairness rule driven by
  MISE request-service-rate slowdown estimation (HPCA 2013) instead of
  the interference register file.
"""

from repro.core.estimator import InterferenceEstimator
from repro.core.mise import MiseStfmPolicy, ServiceRateEstimator
from repro.core.registers import StfmRegisters, ThreadRegisters
from repro.core.stfm import StfmPolicy

__all__ = [
    "InterferenceEstimator",
    "MiseStfmPolicy",
    "ServiceRateEstimator",
    "StfmPolicy",
    "StfmRegisters",
    "ThreadRegisters",
]
