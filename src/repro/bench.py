"""Persistent benchmark trajectory for the simulator (``stfm-sim bench``).

Runs a pinned suite of performance probes and writes a machine-normalized
``BENCH_<n>.json`` snapshot at the repository root, so the performance
story of the codebase is a *trajectory* of committed files rather than
numbers in commit messages:

* ``bench_fig03`` — cold and warm wall time of the fig3 experiment (the
  repo's canonical workload), under both the event-driven and the naive
  kernel; their ratio is the headline ``kernel_speedup``.
* ``throughput_100k`` / ``throughput_1m`` — raw simulated instructions
  per second of a single 4-core shared run at 100k and 1M instruction
  budgets (the 1M run is the ROADMAP's north-star budget).
* ``per_policy_kernel_cost`` — event-kernel wall time of one 4-core
  shared run under *every* registered scheduling policy (extensions
  included), so a policy whose state machine defeats the kernel's
  inert-window skipping shows up as an outlier in the trajectory.
* ``engine_parallel`` — speedup of the experiment engine's process pool
  over its serial path on a small batch.
* ``service_round_trip`` — submit-to-result latency of a tiny job
  through the HTTP simulation service on a loopback socket.
* ``submit_storm`` — per-submit POST latency percentiles (p50/p90/max)
  for a burst of distinct jobs against the service, plus the wall time
  to drain the whole burst.
* ``cluster_throughput`` — jobs/second of a local coordinator +
  3-runner cluster (subprocesses, store proxy) over the same burst,
  with the duplicate-put count recorded (must be 0: every sub-job
  simulated exactly once across the cluster).

Machine normalization: every timing also carries ``normalized`` =
seconds / ``calibration_seconds``, where the calibration is a fixed
pure-Python integer loop timed on the same machine.  Normalized values
are dimensionless multiples of single-core Python speed and are the
quantities compared across snapshots; raw seconds are kept for humans.

Each run compares against the most recent previous ``BENCH_*.json`` (by
sequence number) and records per-metric ratios; ``--check`` turns a
normalized slowdown beyond the threshold — or an event kernel slower
than naive — into a nonzero exit for CI.

This module lives at the package root (not in a simulator-core domain),
so simlint's SIM001 wall-clock rule does not apply: benchmarking *is*
the one place host-clock reads belong.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time

#: Sequence number of the snapshot this revision writes.  Bump when a
#: PR adds a new trajectory point (the file is committed, not ignored).
BENCH_SEQUENCE = 9

#: Normalized slowdown beyond which a metric counts as a regression.
REGRESSION_THRESHOLD = 1.30

_THROUGHPUT_WORKLOAD = ("mcf", "libquantum", "GemsFDTD", "astar")


# -- machine calibration -----------------------------------------------------


def calibrate(repeats: int = 3) -> float:
    """Seconds for a fixed pure-Python integer loop (best of ``repeats``).

    The loop is deterministic and allocation-free, so its wall time
    tracks single-core interpreter speed — the same resource the
    simulator burns.  Dividing measured times by it cancels most of the
    machine out of cross-snapshot comparisons.
    """
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        acc = 0
        for i in range(2_000_000):
            acc += i * i & 0xFFFF
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best


def machine_fingerprint() -> dict:
    return {
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
    }


# -- probes ------------------------------------------------------------------


def _with_kernel(kernel: str):
    """Context manager pinning ``STFM_SIM_KERNEL`` for a probe."""
    import contextlib

    from repro.sim.kernel import KERNEL_ENV

    @contextlib.contextmanager
    def _ctx():
        previous = os.environ.get(KERNEL_ENV)
        os.environ[KERNEL_ENV] = kernel
        try:
            yield
        finally:
            if previous is None:
                os.environ.pop(KERNEL_ENV, None)
            else:
                os.environ[KERNEL_ENV] = previous

    return _ctx()


def _time_fig3(kernel: str, repeats: int, scale: str) -> "tuple[float, float]":
    """(cold, warm-best) wall seconds of the fig3 experiment."""
    from repro.engine import EngineOptions, engine_options
    from repro.experiments import fig03

    times = []
    with _with_kernel(kernel):
        with engine_options(EngineOptions(jobs=1, cache_dir=None)):
            for _ in range(max(1, repeats)):
                t0 = time.perf_counter()
                fig03.run(scale)
                times.append(time.perf_counter() - t0)
    return times[0], min(times)


def _time_throughput(kernel: str, budget: int) -> "tuple[float, int]":
    """(wall seconds, instructions committed) of one 4-core shared run."""
    from repro.engine.jobs import resolve_spec
    from repro.schedulers import make_policy
    from repro.sim.config import SystemConfig
    from repro.sim.runner import ExperimentRunner
    from repro.sim.system import CmpSystem

    with _with_kernel(kernel):
        # Construct inside the kernel context: the controller picks its
        # scan strategy (cached fast path vs eager naive scans) at build
        # time, and the probe must time the kernel it claims to.
        config = SystemConfig(num_cores=len(_THROUGHPUT_WORKLOAD))
        runner = ExperimentRunner(config, instruction_budget=budget)
        specs = [resolve_spec(name) for name in _THROUGHPUT_WORKLOAD]
        traces = [
            runner.trace_for(spec, i, len(specs))
            for i, spec in enumerate(specs)
        ]
        budgets = [runner.budget_for(spec) for spec in specs]
        policy = make_policy("fr-fcfs", num_threads=len(specs))
        system = CmpSystem(
            config, traces, policy, budgets, mlp_limits=[s.mlp for s in specs]
        )
        t0 = time.perf_counter()
        snapshots = system.run()
        elapsed = time.perf_counter() - t0
    return elapsed, sum(s.instructions for s in snapshots)


def _time_per_policy(budget: int) -> dict:
    """Event-kernel seconds of one 4-core shared run per policy.

    Traces are built once and shared (they are immutable); each policy
    gets a fresh system.  The per-policy numbers expose schedulers whose
    state machines defeat the event kernel's inert-window skipping; the
    total is the cross-snapshot comparison quantity.
    """
    from repro.engine.jobs import resolve_spec
    from repro.schedulers import make_policy
    from repro.schedulers.registry import available_policies
    from repro.sim.config import SystemConfig
    from repro.sim.runner import ExperimentRunner
    from repro.sim.system import CmpSystem

    per_policy: dict = {}
    total = 0.0
    with _with_kernel("event"):
        config = SystemConfig(num_cores=len(_THROUGHPUT_WORKLOAD))
        runner = ExperimentRunner(config, instruction_budget=budget)
        specs = [resolve_spec(name) for name in _THROUGHPUT_WORKLOAD]
        traces = [
            runner.trace_for(spec, i, len(specs))
            for i, spec in enumerate(specs)
        ]
        budgets = [runner.budget_for(spec) for spec in specs]
        mlp_limits = [s.mlp for s in specs]
        for name in available_policies(include_extensions=True):
            policy = make_policy(name, num_threads=len(specs))
            system = CmpSystem(
                config, traces, policy, budgets, mlp_limits=mlp_limits
            )
            t0 = time.perf_counter()
            snapshots = system.run()
            elapsed = time.perf_counter() - t0
            instructions = sum(s.instructions for s in snapshots)
            per_policy[name] = {
                "seconds": elapsed,
                "instructions_per_second": instructions / elapsed,
            }
            total += elapsed
    return {
        "budget": budget,
        "policies": per_policy,
        "total_seconds": total,
    }


def _time_engine_parallel(scale: str) -> dict:
    """Serial vs process-pool wall time of one experiment batch."""
    from repro.engine import EngineOptions, engine_options
    from repro.experiments import run_experiment

    jobs = min(2, os.cpu_count() or 1)
    timings = {}
    for label, n in (("serial_seconds", 1), ("parallel_seconds", jobs)):
        with engine_options(EngineOptions(jobs=n, cache_dir=None)):
            t0 = time.perf_counter()
            run_experiment("fig3", scale=scale)
            timings[label] = time.perf_counter() - t0
    timings["jobs"] = jobs
    timings["speedup"] = timings["serial_seconds"] / timings["parallel_seconds"]
    return timings


def _time_service_round_trip(tmp_dir: str) -> float:
    """Submit-to-result seconds for a tiny job over loopback HTTP."""
    import asyncio
    import threading

    from repro.service.client import ServiceClient
    from repro.service.server import ServiceConfig, SimulationService

    service = SimulationService(
        ServiceConfig(
            host="127.0.0.1",
            port=0,
            workers=1,
            queue_limit=8,
            cache_dir=None,
            state_dir=os.path.join(tmp_dir, "state"),
        )
    )
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    try:
        asyncio.run_coroutine_threadsafe(service.start(), loop).result(30)
        client = ServiceClient(f"http://127.0.0.1:{service.port}")
        spec = {
            "kind": "workload",
            "benchmarks": ["mcf", "hmmer"],
            "policy": "fr-fcfs",
            "budget": 1_500,
        }
        t0 = time.perf_counter()
        view = client.submit(spec)
        view = client.wait(view["id"], timeout=120)
        elapsed = time.perf_counter() - t0
        if view["status"] != "done":
            raise RuntimeError(f"service round-trip failed: {view}")
        return elapsed
    finally:
        asyncio.run_coroutine_threadsafe(service.drain_and_stop(), loop).result(
            120
        )
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        loop.close()


def _storm_specs(count: int, budget: int = 1_500) -> "list[dict]":
    """``count`` distinct tiny workload specs (seed-disjoint, so their
    sub-job cache keys never overlap — any duplicate simulation across
    the cluster is then a real redundancy, not shared work)."""
    return [
        {
            "kind": "workload",
            "benchmarks": ["mcf", "hmmer"],
            "policy": "fr-fcfs",
            "budget": budget,
            "seed": seed,
        }
        for seed in range(1, count + 1)
    ]


def _percentile(sorted_values: "list[float]", fraction: float) -> float:
    index = min(
        len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1) + 0.5)
    )
    return sorted_values[index]


def _time_submit_storm(tmp_dir: str, count: int = 16) -> dict:
    """Latency percentiles of a submit burst against the service.

    Every POST is timed individually (the admission path: parse,
    digest, persist, enqueue) while workers drain the backlog; the
    drain time of the whole burst rides along.
    """
    import asyncio
    import threading

    from repro.service.client import ServiceClient
    from repro.service.server import ServiceConfig, SimulationService

    service = SimulationService(
        ServiceConfig(
            host="127.0.0.1",
            port=0,
            workers=2,
            queue_limit=count,
            cache_dir=None,
            state_dir=os.path.join(tmp_dir, "storm-state"),
        )
    )
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    try:
        asyncio.run_coroutine_threadsafe(service.start(), loop).result(30)
        client = ServiceClient(f"http://127.0.0.1:{service.port}")
        latencies = []
        views = []
        t0 = time.perf_counter()
        for spec in _storm_specs(count):
            t_submit = time.perf_counter()
            views.append(client.submit(spec))
            latencies.append(time.perf_counter() - t_submit)
        for view in views:
            client.wait(view["id"], timeout=300)
        drain = time.perf_counter() - t0
        latencies.sort()
        return {
            "jobs": count,
            "submit_p50_seconds": _percentile(latencies, 0.50),
            "submit_p90_seconds": _percentile(latencies, 0.90),
            "submit_max_seconds": latencies[-1],
            "drain_seconds": drain,
        }
    finally:
        asyncio.run_coroutine_threadsafe(
            service.drain_and_stop(), loop
        ).result(120)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        loop.close()


def _time_cluster_throughput(
    tmp_dir: str, runners: int = 3, count: int = 9
) -> dict:
    """Jobs/second of a local subprocess cluster draining a burst."""
    from repro.cluster.supervisor import LocalCluster
    from repro.service.client import ServiceClient, parse_metrics

    cluster = LocalCluster(
        runners=runners,
        cache_dir=os.path.join(tmp_dir, "cluster-cache"),
        state_dir=os.path.join(tmp_dir, "cluster-state"),
        lease_ttl=15.0,
        queue_limit=count,
        poll=0.05,
    )
    with cluster:
        client = ServiceClient(cluster.url)
        t0 = time.perf_counter()
        views = [client.submit(spec) for spec in _storm_specs(count)]
        for view in views:
            done = client.wait(view["id"], timeout=300)
            if done["status"] != "done":
                raise RuntimeError(f"cluster job failed: {done}")
        wall = time.perf_counter() - t0
        metrics = parse_metrics(client.metrics())
        duplicate_puts = metrics.get(
            "stfm_store_proxy_duplicate_puts_total", 0.0
        )
        runners_used = sum(
            1
            for name in metrics
            if name.startswith("stfm_cluster_leases_granted_total")
        )
    return {
        "runners": runners,
        "jobs": count,
        "wall_seconds": wall,
        "jobs_per_second": count / wall,
        "duplicate_puts": duplicate_puts,
        "runners_used": runners_used,
    }


# -- suite -------------------------------------------------------------------


def run_suite(quick: bool = False, log=print) -> dict:
    """Run the pinned probe suite; returns the snapshot payload."""
    calibration = calibrate()
    log(f"calibration: {calibration:.3f}s (fixed integer loop)")

    def norm(seconds: float) -> float:
        return seconds / calibration

    metrics: dict = {}

    scale = "tiny" if quick else "small"
    repeats = 2 if quick else 3
    cold_e, warm_e = _time_fig3("event", repeats, scale)
    cold_n, warm_n = _time_fig3("naive", repeats, scale)
    metrics["bench_fig03"] = {
        "scale": scale,
        "cold_seconds": cold_e,
        "warm_seconds": warm_e,
        "naive_warm_seconds": warm_n,
        "kernel_speedup": warm_n / warm_e,
        "warm_normalized": norm(warm_e),
    }
    log(
        f"bench_fig03 ({scale}): event {warm_e:.2f}s warm "
        f"(cold {cold_e:.2f}s), naive {warm_n:.2f}s "
        f"-> kernel speedup {warm_n / warm_e:.2f}x"
    )

    budgets = [("throughput_100k", 100_000)]
    if not quick:
        budgets.append(("throughput_1m", 1_000_000))
    for key, budget in budgets:
        sec_e, instructions = _time_throughput("event", budget)
        sec_n, _ = _time_throughput("naive", budget)
        metrics[key] = {
            "budget": budget,
            "seconds": sec_e,
            "naive_seconds": sec_n,
            "instructions": instructions,
            "instructions_per_second": instructions / sec_e,
            "kernel_speedup": sec_n / sec_e,
            "normalized": norm(sec_e),
        }
        log(
            f"{key}: event {sec_e:.2f}s ({instructions / sec_e:,.0f} "
            f"instr/s), naive {sec_n:.2f}s -> {sec_n / sec_e:.2f}x"
        )

    per_policy = _time_per_policy(10_000 if quick else 50_000)
    per_policy["normalized"] = norm(per_policy["total_seconds"])
    metrics["per_policy_kernel_cost"] = per_policy
    slowest = max(
        per_policy["policies"], key=lambda p: per_policy["policies"][p]["seconds"]
    )
    log(
        f"per_policy_kernel_cost: {len(per_policy['policies'])} policies "
        f"in {per_policy['total_seconds']:.2f}s total (slowest: {slowest} "
        f"{per_policy['policies'][slowest]['seconds']:.2f}s)"
    )

    if not quick:
        engine = _time_engine_parallel("tiny")
        engine["serial_normalized"] = norm(engine["serial_seconds"])
        metrics["engine_parallel"] = engine
        log(
            f"engine_parallel: serial {engine['serial_seconds']:.2f}s, "
            f"{engine['jobs']} jobs {engine['parallel_seconds']:.2f}s "
            f"-> {engine['speedup']:.2f}x"
        )

        import tempfile

        with tempfile.TemporaryDirectory() as tmp_dir:
            rtt = _time_service_round_trip(tmp_dir)
        metrics["service_round_trip"] = {
            "seconds": rtt,
            "normalized": norm(rtt),
        }
        log(f"service_round_trip: {rtt:.2f}s")

        with tempfile.TemporaryDirectory() as tmp_dir:
            storm = _time_submit_storm(tmp_dir)
        storm["normalized"] = norm(storm["drain_seconds"])
        storm["submit_p50_normalized"] = norm(storm["submit_p50_seconds"])
        metrics["submit_storm"] = storm
        log(
            f"submit_storm: {storm['jobs']} jobs, submit p50 "
            f"{storm['submit_p50_seconds'] * 1e3:.1f}ms p90 "
            f"{storm['submit_p90_seconds'] * 1e3:.1f}ms max "
            f"{storm['submit_max_seconds'] * 1e3:.1f}ms; drained in "
            f"{storm['drain_seconds']:.2f}s"
        )

        with tempfile.TemporaryDirectory() as tmp_dir:
            cluster = _time_cluster_throughput(tmp_dir)
        cluster["normalized"] = norm(cluster["wall_seconds"])
        metrics["cluster_throughput"] = cluster
        log(
            f"cluster_throughput: {cluster['jobs']} jobs on "
            f"{cluster['runners']} runners in "
            f"{cluster['wall_seconds']:.2f}s "
            f"({cluster['jobs_per_second']:.2f} jobs/s, "
            f"{cluster['duplicate_puts']:.0f} duplicate puts)"
        )

    from repro.sim.kernel import kernel_name

    return {
        "schema": 1,
        "sequence": BENCH_SEQUENCE,
        "quick": quick,
        "default_kernel": kernel_name(),
        "machine": {
            **machine_fingerprint(),
            "calibration_seconds": calibration,
        },
        "metrics": metrics,
    }


# -- trajectory comparison ---------------------------------------------------


def find_previous(root: str, sequence: int = BENCH_SEQUENCE) -> "str | None":
    """Path of the most recent earlier ``BENCH_*.json`` snapshot, if any."""
    best: "tuple[int, str] | None" = None
    try:
        names = os.listdir(root)
    except OSError:
        return None
    for name in names:
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        stem = name[len("BENCH_") : -len(".json")]
        if not stem.isdigit():
            continue
        seq = int(stem)
        if seq >= sequence:
            continue
        if best is None or seq > best[0]:
            best = (seq, os.path.join(root, name))
    return best[1] if best else None


def compare(current: dict, previous: dict, threshold: float) -> dict:
    """Per-metric normalized ratios vs an earlier snapshot.

    A ratio above 1 means this snapshot is slower; above ``threshold``
    it is recorded as a regression.  Only metrics present in both
    snapshots (with normalized values) are compared.
    """
    ratios: dict = {}
    regressions: list[str] = []
    for key, entry in current.get("metrics", {}).items():
        old = previous.get("metrics", {}).get(key)
        if not isinstance(old, dict):
            continue
        for field in ("normalized", "warm_normalized", "serial_normalized"):
            new_value = entry.get(field)
            old_value = old.get(field)
            if not new_value or not old_value:
                continue
            ratio = new_value / old_value
            ratios[key] = ratio
            if ratio > threshold:
                regressions.append(
                    f"{key}: {ratio:.2f}x slower than sequence "
                    f"{previous.get('sequence')} (threshold {threshold:.2f})"
                )
            break
    return {
        "baseline_sequence": previous.get("sequence"),
        "threshold": threshold,
        "ratios": ratios,
        "regressions": regressions,
    }


def check_failures(payload: dict) -> "list[str]":
    """CI assertions over a snapshot: the event kernel must not lose."""
    failures: list[str] = []
    for key, entry in payload.get("metrics", {}).items():
        speedup = entry.get("kernel_speedup")
        if speedup is not None and speedup < 1.0:
            failures.append(
                f"{key}: event kernel slower than naive ({speedup:.2f}x)"
            )
    cluster = payload.get("metrics", {}).get("cluster_throughput")
    if cluster and cluster.get("duplicate_puts"):
        failures.append(
            f"cluster_throughput: {cluster['duplicate_puts']:.0f} "
            f"duplicate store puts (a sub-job was simulated twice)"
        )
    comparison = payload.get("comparison")
    if comparison:
        failures.extend(comparison.get("regressions", []))
    return failures


def run_bench(
    output: str,
    quick: bool = False,
    check: bool = False,
    threshold: float = REGRESSION_THRESHOLD,
    log=print,
) -> int:
    """The ``stfm-sim bench`` entry point; returns an exit code."""
    payload = run_suite(quick=quick, log=log)
    root = os.path.dirname(os.path.abspath(output)) or "."
    previous_path = find_previous(root)
    if previous_path:
        try:
            with open(previous_path) as handle:
                previous = json.load(handle)
        except (OSError, ValueError) as exc:
            log(f"(ignoring unreadable {previous_path}: {exc})")
        else:
            payload["comparison"] = compare(payload, previous, threshold)
            for key, ratio in payload["comparison"]["ratios"].items():
                log(f"vs sequence {previous.get('sequence')}: {key} {ratio:.2f}x")
    else:
        log("(no previous BENCH_*.json snapshot; this is the first "
            "trajectory point)")
    with open(output, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    log(f"wrote {output}")
    if check:
        failures = check_failures(payload)
        if failures:
            for failure in failures:
                log(f"BENCH CHECK FAILED: {failure}")
            return 1
        log("bench check passed")
    return 0
