"""The multi-pass lint pipeline: parse → index → link → rules.

:func:`run_passes` is the engine behind both
:func:`repro.analysis.simlint.lint_sources` and the cached CLI path:

1. **index** — for every file, obtain its serializable
   :class:`~repro.analysis.index.FileIndex` contribution, from the
   cache when the file's SHA-256 matches, else by parsing.
2. **link** — join all contributions into the project-wide
   :class:`~repro.analysis.index.ProjectIndex` (call graph, thread
   closure, blocking classification).
3. **rules** — replay cached findings for files whose (sha, tree
   digest, rule selection) key matches; run the rule set (parsing on
   demand) for the rest.

On a warm, unchanged tree every file takes the replay path and the
run performs zero ``ast.parse`` calls — :class:`LintStats` counts
them so the tests can assert exactly that.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.cache import LintCache, source_digest, tree_digest
from repro.analysis.index import FileIndex, ProjectIndex
from repro.analysis.rules import Finding, LintContext, Rule


@dataclass
class LintStats:
    """Instrumentation for the incremental pipeline."""

    files: int = 0
    parsed: int = 0
    index_reused: int = 0
    findings_reused: int = 0


@dataclass
class PassResult:
    findings: "list[Finding]" = field(default_factory=list)
    stats: LintStats = field(default_factory=LintStats)
    index: ProjectIndex = field(default_factory=ProjectIndex)


@dataclass
class _Entry:
    path: str
    source: str
    digest: str
    domain: str
    tree: "ast.AST | None" = None
    syntax_error: "Finding | None" = None
    parse_failed: bool = False


def _parse(entry: _Entry, stats: LintStats) -> "ast.AST | None":
    """Parse on demand; a SyntaxError yields a SIM000 finding once."""
    if entry.tree is not None or entry.parse_failed:
        return entry.tree
    stats.parsed += 1
    try:
        entry.tree = ast.parse(entry.source, filename=entry.path)
    except SyntaxError as exc:
        entry.parse_failed = True
        entry.syntax_error = Finding(
            path=entry.path,
            line=exc.lineno or 1,
            col=exc.offset or 0,
            code="SIM000",
            message=f"syntax error: {exc.msg}",
            fixit="fix the syntax error so simlint can parse the file",
        )
    return entry.tree


def _finding_to_dict(finding: Finding) -> dict:
    return {
        "path": finding.path, "line": finding.line, "col": finding.col,
        "code": finding.code, "message": finding.message,
        "fixit": finding.fixit,
    }


def _finding_from_dict(data: dict) -> Finding:
    return Finding(**data)


def run_passes(
    entries: "list[tuple[str, str, str]]",
    rules: "list[Rule]",
    suppress,
    cache: "LintCache | None" = None,
) -> PassResult:
    """Run the pipeline over (path, domain, source) triples.

    ``suppress(entry_path, lines, finding)`` decides per-line
    suppression; it is applied before findings are cached, so a
    replayed file never resurrects a suppressed finding.
    """
    result = PassResult()
    stats = result.stats
    index = result.index
    selection = ",".join(rule.code for rule in rules)

    items = [
        _Entry(path, source, source_digest(source), domain)
        for path, domain, source in entries
    ]
    stats.files = len(items)

    # pass 1: per-file index contributions (cache-aware)
    for entry in items:
        cached = cache.get_index(entry.digest) if cache else None
        if cached is not None and cached.get("path") == entry.path:
            index.add_file(FileIndex.from_dict(cached))
            stats.index_reused += 1
            continue
        tree = _parse(entry, stats)
        if tree is None:
            index.add_file(FileIndex(path=entry.path, module=entry.path))
            continue
        file_index = FileIndex.build(entry.path, tree)
        index.add_file(file_index)
        if cache is not None:
            cache.put_index(entry.digest, file_index.to_dict())

    # pass 2: link the project view
    index.link()
    digest_of_tree = tree_digest([(e.path, e.digest) for e in items])

    # pass 3: rules, replaying cached findings where valid
    for entry in items:
        if entry.syntax_error is not None:
            result.findings.append(entry.syntax_error)
            continue
        key = None
        if cache is not None:
            key = cache.findings_key(
                entry.digest, digest_of_tree, selection
            )
            replay = cache.get_findings(key)
            if replay is not None:
                result.findings.extend(
                    _finding_from_dict(item) for item in replay
                )
                stats.findings_reused += 1
                continue
        tree = _parse(entry, stats)
        if tree is None:
            if entry.syntax_error is not None:
                result.findings.append(entry.syntax_error)
            continue
        lines = entry.source.splitlines()
        ctx = LintContext(
            path=entry.path,
            domain=entry.domain,
            source=entry.source,
            lines=lines,
            tree=tree,
            index=index,
        )
        kept: "list[Finding]" = []
        for rule in rules:
            for finding in rule.run(ctx):
                if suppress(entry.path, lines, finding):
                    continue
                kept.append(finding)
        result.findings.extend(kept)
        if cache is not None and key is not None:
            cache.put_findings(
                key, [_finding_to_dict(finding) for finding in kept]
            )

    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return result
