"""Incremental lint cache (``.simlint-cache/``).

Two kinds of entries, both keyed by the SHA-256 of a file's source:

* *index* entries — the serialized :class:`~repro.analysis.index.
  FileIndex` contribution.  Extraction is purely local to a file, so
  these survive edits elsewhere in the tree.
* *findings* entries — the rule output for a file, additionally keyed
  by a *tree digest* (the hash of every linted file's hash), the
  effective rule selection, and a schema version.  Rules consume
  cross-file facts (call graph, lease contract), so any edit anywhere
  invalidates every findings entry; an unchanged tree replays all
  findings with **zero** ``ast.parse`` calls.

Everything lives in one JSON manifest written atomically (tmp file +
``os.replace``); a corrupt or version-skewed manifest is discarded,
never trusted.  Entries untouched by the current run are pruned so
the manifest tracks the tree instead of growing without bound.
"""

from __future__ import annotations

import hashlib
import json
import os

#: Bump when FileIndex serialization or rule semantics change shape.
CACHE_SCHEMA = "simlint-cache-v1"

DEFAULT_CACHE_DIR = ".simlint-cache"


def source_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def tree_digest(file_digests: "list[tuple[str, str]]") -> str:
    """Digest of the whole linted tree (sorted path->sha pairs)."""
    hasher = hashlib.sha256()
    for path, digest in sorted(file_digests):
        hasher.update(path.encode("utf-8"))
        hasher.update(b"\0")
        hasher.update(digest.encode("ascii"))
        hasher.update(b"\n")
    return hasher.hexdigest()


class LintCache:
    """Load-once / save-once manifest wrapper."""

    def __init__(self, root: str = DEFAULT_CACHE_DIR) -> None:
        self.root = root
        self.path = os.path.join(root, "manifest.json")
        self._index: "dict[str, dict]" = {}
        self._findings: "dict[str, list[dict]]" = {}
        self._touched_index: "set[str]" = set()
        self._touched_findings: "set[str]" = set()
        self._load()

    def _load(self) -> None:
        try:
            with open(self.path, encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError):
            return
        if manifest.get("schema") != CACHE_SCHEMA:
            return
        index = manifest.get("index")
        findings = manifest.get("findings")
        if isinstance(index, dict):
            self._index = index
        if isinstance(findings, dict):
            self._findings = findings

    # -- index entries -------------------------------------------------------

    def get_index(self, digest: str) -> "dict | None":
        entry = self._index.get(digest)
        if entry is not None:
            self._touched_index.add(digest)
        return entry

    def put_index(self, digest: str, data: dict) -> None:
        self._index[digest] = data
        self._touched_index.add(digest)

    # -- findings entries ----------------------------------------------------

    def findings_key(
        self, digest: str, tree: str, selection: str
    ) -> str:
        tail = hashlib.sha256(
            f"{tree}\0{selection}".encode("utf-8")
        ).hexdigest()[:16]
        return f"{digest}:{tail}"

    def get_findings(self, key: str) -> "list[dict] | None":
        entry = self._findings.get(key)
        if entry is not None:
            self._touched_findings.add(key)
        return entry

    def put_findings(self, key: str, findings: "list[dict]") -> None:
        self._findings[key] = findings
        self._touched_findings.add(key)

    # -- persistence ---------------------------------------------------------

    def save(self) -> None:
        manifest = {
            "schema": CACHE_SCHEMA,
            "index": {
                k: v for k, v in self._index.items()
                if k in self._touched_index
            },
            "findings": {
                k: v for k, v in self._findings.items()
                if k in self._touched_findings
            },
        }
        os.makedirs(self.root, exist_ok=True)
        tmp = f"{self.path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, separators=(",", ":"))
        os.replace(tmp, self.path)
