"""Runtime DRAM protocol sanitizer — the dynamic half of ``repro.analysis``.

An opt-in shadow state machine that observes every DRAM command the
simulator issues (hooked into :class:`repro.dram.channel.Channel` and
the controller's refresh/auto-precharge side channels) and validates
the stream against the DDR2 constraints the model is supposed to honor:

=============  ==========================================================
``CMD_BUS``    at most one command per DRAM cycle per channel
``tRCD``       ACTIVATE-to-column delay
``tRP``        PRECHARGE-to-ACTIVATE delay
``tRAS``       minimum row-open time before a PRECHARGE
``tRC``        ACTIVATE-to-ACTIVATE spacing on the same bank (tRAS+tRP)
``tWTR``       write-burst-end to READ-command turnaround (off when the
               configured ``t_wtr_ns`` is 0 — the baseline model does
               not simulate the turnaround)
``tCCD``       column-command spacing on a channel
``DATA_BUS``   burst windows ``[issue+tCL, issue+tCL+tBurst)`` must not
               overlap on the channel's in-order data bus
``ROW_STATE``  column commands need the matching row open; ACTIVATE
               needs a precharged bank
``BANK_BUSY``  a bank finishes its previous command first
=============  ==========================================================

A violation raises :class:`ProtocolViolation` carrying the rule, a
human-readable message, and the offending command window (the last few
commands observed on the channel) — enough to reconstruct the illegal
sequence without a debugger.

The sanitizer never *changes* simulator state, so a sanitized run is
bit-identical to an unsanitized one; it only converts a silent timing
bug into a loud structured failure.  Enable it with ``--sanitize`` on
the CLI (carried to engine worker processes via ``STFM_SIM_SANITIZE``)
or ``CmpSystem(..., sanitize=True)``.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass

from repro.dram.commands import CommandKind
from repro.dram.timing import DramTiming

#: Environment toggle the CLI sets; worker processes inherit it.
SANITIZE_ENV = "STFM_SIM_SANITIZE"

#: Commands kept per channel in the violation window.
HISTORY_DEPTH = 16


def sanitize_enabled() -> bool:
    """Whether new systems should attach a sanitizer (env opt-in)."""
    return os.environ.get(SANITIZE_ENV, "") not in ("", "0")


@dataclass(frozen=True)
class IssuedCommand:
    """One observed DRAM command (a violation-window entry)."""

    cycle: int
    channel: int
    bank: int
    kind: str
    row: int

    def __str__(self) -> str:
        return (
            f"@{self.cycle} ch{self.channel} bank{self.bank} "
            f"{self.kind} row={self.row}"
        )


class ProtocolViolation(AssertionError):
    """A DRAM command stream broke a DDR2 timing/state constraint.

    Attributes:
        rule: Constraint identifier (``tRCD``, ``tRP``, ``tWTR``, ...).
        command: The offending command.
        window: Recent commands on the same channel, oldest first,
            ending with the offending command.
    """

    def __init__(
        self,
        rule: str,
        message: str,
        command: IssuedCommand,
        window: tuple[IssuedCommand, ...],
    ) -> None:
        history = "\n  ".join(str(entry) for entry in window)
        super().__init__(
            f"[{rule}] {message}\n  command window (oldest first):\n  {history}"
        )
        self.rule = rule
        self.command = command
        self.window = window


class _BankShadow:
    """Shadow timing state of one bank."""

    __slots__ = (
        "open_row",
        "activated_at",
        "last_activate_at",
        "precharge_ready_at",
        "busy_until",
    )

    def __init__(self) -> None:
        self.open_row: int | None = None
        self.activated_at = -(1 << 62)
        self.last_activate_at = -(1 << 62)
        self.precharge_ready_at = 0
        self.busy_until = 0


class _ChannelShadow:
    """Shadow timing state of one channel (command + data buses)."""

    __slots__ = (
        "last_command_at",
        "data_bus_busy_until",
        "last_column_at",
        "last_write_data_end",
        "history",
    )

    def __init__(self) -> None:
        self.last_command_at = -(1 << 62)
        self.data_bus_busy_until = 0
        self.last_column_at = -(1 << 62)
        self.last_write_data_end = -(1 << 62)
        self.history: deque[IssuedCommand] = deque(maxlen=HISTORY_DEPTH)


class ProtocolSanitizer:
    """Validates an issued DRAM command stream against DDR2 constraints.

    Args:
        timing: The timing configuration the stream must honor.
        num_channels: Channels in the memory system.
        num_banks: Banks per channel.

    Attributes:
        commands_checked: Total commands validated so far.
    """

    def __init__(
        self, timing: DramTiming, num_channels: int, num_banks: int
    ) -> None:
        self.timing = timing
        self.channels = [_ChannelShadow() for _ in range(num_channels)]
        self.banks = [
            [_BankShadow() for _ in range(num_banks)]
            for _ in range(num_channels)
        ]
        self.commands_checked = 0
        self.refreshes_observed = 0

    # -- the observation hook ------------------------------------------------
    def observe(
        self, channel: int, bank: int, kind: CommandKind, row: int, now: int
    ) -> None:
        """Validate one command about to issue, then advance shadow state.

        Raises:
            ProtocolViolation: The command breaks a constraint.
        """
        timing = self.timing
        shadow = self.channels[channel]
        bank_shadow = self.banks[channel][bank]
        command = IssuedCommand(now, channel, bank, kind.name, row)
        shadow.history.append(command)
        self.commands_checked += 1

        def violate(rule: str, message: str) -> None:
            raise ProtocolViolation(
                rule, message, command, tuple(shadow.history)
            )

        # Shared command bus: one command per DRAM cycle per channel.
        if now < shadow.last_command_at + timing.dram_cycle:
            violate(
                "CMD_BUS",
                f"command at cycle {now} but the channel issued at "
                f"{shadow.last_command_at} (< one DRAM cycle of "
                f"{timing.dram_cycle} apart)",
            )

        if kind is CommandKind.ACTIVATE:
            self._check_activate(violate, bank_shadow, now)
        elif kind is CommandKind.PRECHARGE:
            self._check_precharge(violate, bank_shadow, now)
        else:
            self._check_column(violate, shadow, bank_shadow, kind, row, now)

        # Advance shadow state exactly as Bank.apply / Channel.issue do.
        shadow.last_command_at = now
        if kind is CommandKind.ACTIVATE:
            bank_shadow.open_row = row
            bank_shadow.activated_at = now
            bank_shadow.last_activate_at = now
            bank_shadow.busy_until = now + timing.rcd
        elif kind is CommandKind.PRECHARGE:
            bank_shadow.open_row = None
            bank_shadow.precharge_ready_at = now + timing.rp
            bank_shadow.busy_until = now + timing.rp
        else:
            bank_shadow.busy_until = now + timing.burst
            shadow.data_bus_busy_until = now + timing.cl + timing.burst
            shadow.last_column_at = now
            if kind is CommandKind.WRITE:
                shadow.last_write_data_end = now + timing.cl + timing.burst

    # -- per-kind checks -----------------------------------------------------
    def _check_activate(self, violate, bank_shadow: _BankShadow, now: int):
        timing = self.timing
        if bank_shadow.open_row is not None:
            violate(
                "ROW_STATE",
                f"ACTIVATE with row {bank_shadow.open_row} still open "
                "(precharge first)",
            )
        if now < bank_shadow.precharge_ready_at:
            violate(
                "tRP",
                f"ACTIVATE at {now}, but the precharge completes at "
                f"{bank_shadow.precharge_ready_at} (tRP={timing.rp})",
            )
        trc = timing.ras + timing.rp
        if now < bank_shadow.last_activate_at + trc:
            violate(
                "tRC",
                f"ACTIVATE at {now}, previous ACTIVATE on this bank at "
                f"{bank_shadow.last_activate_at} (tRC=tRAS+tRP={trc})",
            )
        if now < bank_shadow.busy_until:
            violate(
                "BANK_BUSY",
                f"ACTIVATE at {now} while the bank is busy until "
                f"{bank_shadow.busy_until}",
            )

    def _check_precharge(self, violate, bank_shadow: _BankShadow, now: int):
        timing = self.timing
        if bank_shadow.open_row is not None:
            if now < bank_shadow.activated_at + timing.ras:
                violate(
                    "tRAS",
                    f"PRECHARGE at {now}, row opened at "
                    f"{bank_shadow.activated_at} (tRAS={timing.ras})",
                )
        if now < bank_shadow.busy_until:
            violate(
                "BANK_BUSY",
                f"PRECHARGE at {now} while the bank is busy until "
                f"{bank_shadow.busy_until}",
            )

    def _check_column(
        self,
        violate,
        shadow: _ChannelShadow,
        bank_shadow: _BankShadow,
        kind: CommandKind,
        row: int,
        now: int,
    ):
        timing = self.timing
        if bank_shadow.open_row is None:
            violate(
                "ROW_STATE",
                f"{kind.name} to a precharged bank (no open row)",
            )
        elif bank_shadow.open_row != row:
            violate(
                "ROW_STATE",
                f"{kind.name} to row {row} but row "
                f"{bank_shadow.open_row} is open",
            )
        if now < bank_shadow.activated_at + timing.rcd:
            violate(
                "tRCD",
                f"{kind.name} at {now}, ACTIVATE at "
                f"{bank_shadow.activated_at} (tRCD={timing.rcd})",
            )
        if now < bank_shadow.busy_until:
            violate(
                "BANK_BUSY",
                f"{kind.name} at {now} while the bank is busy until "
                f"{bank_shadow.busy_until}",
            )
        if now < shadow.last_column_at + timing.ccd:
            violate(
                "tCCD",
                f"{kind.name} at {now}, previous column command at "
                f"{shadow.last_column_at} (tCCD={timing.ccd})",
            )
        if now + timing.cl < shadow.data_bus_busy_until:
            violate(
                "DATA_BUS",
                f"{kind.name} at {now} puts data on the bus at "
                f"{now + timing.cl}, but the previous burst drains at "
                f"{shadow.data_bus_busy_until}",
            )
        if (
            kind is CommandKind.READ
            and timing.wtr > 0
            and now < shadow.last_write_data_end + timing.wtr
        ):
            violate(
                "tWTR",
                f"READ at {now}, previous write burst ends at "
                f"{shadow.last_write_data_end} (tWTR={timing.wtr})",
            )

    # -- out-of-band state changes -------------------------------------------
    def on_auto_precharge(
        self, channel: int, bank: int, now: int, precharge_start: int
    ) -> None:
        """A closed-page auto-precharge (no explicit PRECHARGE command).

        The controller schedules it at ``precharge_start`` (already
        tRAS-constrained); the shadow bank mirrors the state change so
        later ACTIVATEs validate against the right tRP reference.
        """
        timing = self.timing
        bank_shadow = self.banks[channel][bank]
        command = IssuedCommand(
            precharge_start, channel, bank, "AUTO_PRECHARGE", -1
        )
        self.channels[channel].history.append(command)
        if (
            bank_shadow.open_row is not None
            and precharge_start < bank_shadow.activated_at + timing.ras
        ):
            raise ProtocolViolation(
                "tRAS",
                f"auto-precharge at {precharge_start}, row opened at "
                f"{bank_shadow.activated_at} (tRAS={timing.ras})",
                command,
                tuple(self.channels[channel].history),
            )
        bank_shadow.open_row = None
        bank_shadow.precharge_ready_at = precharge_start + timing.rp
        bank_shadow.busy_until = precharge_start + timing.rp

    def on_refresh(self, channel: int, now: int) -> None:
        """All-bank auto-refresh: banks precharge and block for tRFC."""
        timing = self.timing
        self.refreshes_observed += 1
        for bank_shadow in self.banks[channel]:
            bank_shadow.open_row = None
            busy = max(bank_shadow.busy_until, now) + timing.rfc
            bank_shadow.busy_until = busy
            bank_shadow.precharge_ready_at = busy
