"""Shape checks: does the measurement agree with the paper?

Since a Python re-simulation cannot match the authors' testbed's
absolute numbers, agreement is defined over *shapes*:

* who wins (is STFM the fairest scheduler?),
* pairwise orderings (for each pair of schedulers the paper quotes,
  does the measurement order them the same way?),
* trends (does FR-FCFS unfairness fall with more banks, rise with
  bigger row buffers, while STFM stays flat?).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass


@dataclass(frozen=True)
class OrderingCheck:
    """Result of the pairwise-ordering comparison."""

    agreements: int
    comparisons: int
    disagreements: tuple[tuple[str, str], ...] = ()

    @property
    def score(self) -> float:
        if not self.comparisons:
            return 1.0
        return self.agreements / self.comparisons

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"{self.agreements}/{self.comparisons} pairwise orderings"


def ordering_agreement(
    paper: dict[str, float | None],
    measured: dict[str, float],
    tolerance: float = 0.03,
) -> OrderingCheck:
    """Compare pairwise orderings between paper and measured values.

    Pairs whose paper values differ by less than ``tolerance`` (relative)
    are treated as ties and skipped — the paper's own bars are not
    meaningfully ordered there.
    """
    keys = [
        k for k, v in paper.items() if v is not None and k in measured
    ]
    agreements = 0
    comparisons = 0
    disagreements = []
    for a, b in itertools.combinations(keys, 2):
        paper_a, paper_b = paper[a], paper[b]
        if abs(paper_a - paper_b) <= tolerance * max(paper_a, paper_b):
            continue
        comparisons += 1
        paper_says_a_higher = paper_a > paper_b
        measured_says_a_higher = measured[a] > measured[b]
        if paper_says_a_higher == measured_says_a_higher:
            agreements += 1
        else:
            disagreements.append((a, b))
    return OrderingCheck(agreements, comparisons, tuple(disagreements))


def stfm_is_best(measured: dict[str, float], key: str = "STFM") -> bool:
    """Whether STFM has the lowest (best) value among the schedulers."""
    if key not in measured:
        raise KeyError(f"{key!r} missing from measurement")
    return measured[key] == min(measured.values())


def trend_direction(values: list[float], tolerance: float = 0.02) -> str:
    """Classify a sequence as 'increasing', 'decreasing', 'flat' or
    'mixed' (ignoring wiggles below ``tolerance`` relative change)."""
    if len(values) < 2:
        return "flat"
    ups = downs = 0
    for earlier, later in zip(values, values[1:]):
        if later > earlier * (1 + tolerance):
            ups += 1
        elif later < earlier * (1 - tolerance):
            downs += 1
    if ups and not downs:
        return "increasing"
    if downs and not ups:
        return "decreasing"
    if not ups and not downs:
        return "flat"
    return "mixed"


def spread(values: dict[str, float | None]) -> float:
    """max/min over the non-None values (the unfairness-style spread)."""
    present = [v for v in values.values() if v is not None]
    if not present:
        raise ValueError("no values")
    return max(present) / min(present)
