"""Reference values transcribed from the paper's evaluation section.

Values marked ``None`` are not legible/reported in the paper's text for
that cell.  Slowdowns are per-thread memory slowdowns; unfairness is the
max/min slowdown ratio (Section 6.2).
"""

from __future__ import annotations

#: Unfairness per scheduler for the case-study figures and the sweep
#: GMEANs (paper Sections 7.2-7.4).
PAPER_UNFAIRNESS: dict[str, dict[str, float | None]] = {
    # Figure 6: mcf + libquantum + GemsFDTD + astar (4-core).
    "fig6": {
        "FR-FCFS": 7.28,
        "FCFS": 2.07,
        "FR-FCFS+Cap": 2.08,
        "NFQ": 1.87,
        "STFM": 1.27,
    },
    # Figure 7: mcf + leslie3d + h264ref + bzip2.
    "fig7": {
        "FR-FCFS": 1.68,
        "FCFS": 1.87,
        "FR-FCFS+Cap": 2.09,
        "NFQ": 1.77,
        "STFM": 1.28,
    },
    # Figure 8: libquantum + omnetpp + hmmer + h264ref.
    "fig8": {
        "FR-FCFS": 7.16,
        "FCFS": 1.49,
        "FR-FCFS+Cap": 1.52,
        "NFQ": 1.94,
        "STFM": 1.21,
    },
    # Figure 10: 8-core non-intensive case study.
    "fig10": {
        "FR-FCFS": 3.46,
        "FCFS": 3.93,
        "FR-FCFS+Cap": 4.14,
        "NFQ": 2.93,
        "STFM": 1.30,
    },
    # Figure 13: desktop workload.
    "fig13": {
        "FR-FCFS": 8.88,
        "FCFS": 7.42,
        "FR-FCFS+Cap": 7.51,
        "NFQ": 1.75,
        "STFM": 1.37,
    },
    # Figure 9 GMEAN over 256 4-core workloads.
    "fig9": {
        "FR-FCFS": 5.31,
        "FCFS": 1.80,
        "FR-FCFS+Cap": 1.65,
        "NFQ": 1.58,
        "STFM": 1.24,
    },
    # Figure 11 GMEAN over 32 8-core workloads (FCFS not quoted).
    "fig11": {
        "FR-FCFS": 5.26,
        "FCFS": None,
        "FR-FCFS+Cap": 2.64,
        "NFQ": 2.53,
        "STFM": 1.40,
    },
    # Figure 12 GMEAN over the three 16-core workloads (partially quoted).
    "fig12": {
        "FR-FCFS": None,
        "FCFS": 2.23,
        "FR-FCFS+Cap": None,
        "NFQ": None,
        "STFM": 1.75,
    },
}

#: Figure 1 headline slowdowns (FR-FCFS only).
PAPER_FIG1 = {
    4: {"most_slowed": ("omnetpp", 7.74), "least_slowed": ("libquantum", 1.04)},
    8: {"most_slowed": ("dealII", 11.35), "least_slowed": ("libquantum", 1.09)},
}

#: Figure 5 (2-core mcf pairs) summary numbers.
PAPER_FIG5 = {
    "frfcfs_gmean_unfairness": 2.02,
    "stfm_gmean_unfairness": 1.24,
    "stfm_max_unfairness": 1.74,
    "weighted_speedup_gain": 1.01,
    "hmean_speedup_gain": 1.065,
}

#: Figure 14 equal-priority unfairness under thread weights.
PAPER_FIG14 = {
    (1, 16, 1, 1): {"NFQ-shares": 2.77, "STFM-weights": 1.29},
    (1, 4, 8, 1): {"NFQ-shares": 2.99, "STFM-weights": 1.20},
}

#: Table 5: (FR-FCFS unfairness, STFM unfairness) per sensitivity point,
#: plus weighted speedups.
PAPER_TABLE5 = {
    ("banks", 4): {"frfcfs_unfairness": 5.47, "stfm_unfairness": 1.41,
                   "frfcfs_ws": 2.41, "stfm_ws": 2.54},
    ("banks", 8): {"frfcfs_unfairness": 5.26, "stfm_unfairness": 1.40,
                   "frfcfs_ws": 2.75, "stfm_ws": 2.96},
    ("banks", 16): {"frfcfs_unfairness": 5.01, "stfm_unfairness": 1.39,
                    "frfcfs_ws": 3.14, "stfm_ws": 3.49},
    ("row_buffer", 1024): {"frfcfs_unfairness": 4.98, "stfm_unfairness": 1.37,
                           "frfcfs_ws": 2.53, "stfm_ws": 2.71},
    ("row_buffer", 2048): {"frfcfs_unfairness": 5.26, "stfm_unfairness": 1.40,
                           "frfcfs_ws": 2.75, "stfm_ws": 2.96},
    ("row_buffer", 4096): {"frfcfs_unfairness": 5.51, "stfm_unfairness": 1.38,
                           "frfcfs_ws": 2.81, "stfm_ws": 3.03},
}

#: Display order of schedulers, matching the figures.
POLICY_ORDER = ["FR-FCFS", "FCFS", "FR-FCFS+Cap", "NFQ", "STFM"]
