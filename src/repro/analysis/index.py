"""Project-wide AST index for multi-pass static analysis.

``simlint`` started as a per-file linter; the concurrency rules
(SIM101..) and the lease-protocol checker (SIM107/SIM108) need facts
that span files: which functions are coroutines, which sync functions
are reachable from them, which functions run on worker threads, what
type ``self.leases`` resolves to three modules away.  This module
builds those facts in two passes:

1. :meth:`FileIndex.build` extracts a *serializable* per-file summary
   (imports, classes with attribute types, functions with their call
   sites, lock contexts, global mutations, thread starts).  Because it
   is a plain-dict round-trip (:meth:`FileIndex.to_dict` /
   :meth:`FileIndex.from_dict`), the incremental cache can persist it
   and a warm re-lint skips ``ast.parse`` entirely.
2. :meth:`ProjectIndex.link` joins the summaries: module graph, call
   graph (attribute chains resolved through class attribute types),
   the async-reachable closure, thread-entry points and their
   reachable closure, and transitive hard-blocking classification.

The index deliberately over- and under-approximates in documented
ways (e.g. "lock-ish" is name-based, blocking file I/O is only
flagged lexically inside ``async def``) — rules that consume it note
which side they lean on.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: Method names that mutate their receiver in place.  Used to detect
#: mutation of module-level shared state (``_SESSION.add(...)``).
MUTATOR_METHODS = frozenset(
    {
        "add", "append", "appendleft", "clear", "discard", "extend",
        "insert", "pop", "popitem", "popleft", "remove", "setdefault",
        "update",
    }
)

#: Thread/process entry registration calls: ``kwarg_funcs['target']``
#: (Thread/Process) or the first ``func_args`` element (submit & co).
_THREAD_CTORS = frozenset({"threading.Thread", "Thread"})
_PROCESS_CTORS = frozenset(
    {"multiprocessing.Process", "Process", "mp.Process"}
)
_SUBMIT_METHODS = frozenset({"submit", "run_in_executor", "to_thread"})

#: Blocking-primitive kinds.  ``hard`` kinds propagate through the
#: sync call graph; ``file`` is only reported lexically inside
#: ``async def`` (file I/O on the loop is tolerated where the tree
#: does it deliberately — crash-safe state saves are small and local).
HARD_KINDS = frozenset({"sleep", "subprocess", "network", "shutdown"})

_FILE_METHODS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)


def _chain_of(node: ast.AST) -> "tuple[str, ...] | None":
    """``a.b.c(...)`` -> ("a", "b", "c"); None when not a name chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _const_of(node: ast.AST) -> object:
    if isinstance(node, ast.Constant):
        return node.value
    return _UNKNOWN


_UNKNOWN = object()


def _normalized_str(node: ast.AST) -> "str | None":
    """String literal, with f-string placeholders collapsed to ``*``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts = []
        for piece in node.values:
            if isinstance(piece, ast.Constant):
                parts.append(str(piece.value))
            else:
                parts.append("*")
        return "".join(parts)
    return None


def _is_lockish(expr: ast.AST) -> bool:
    """``with self._lock:`` / ``with _SESSION_LOCK:`` — name-based."""
    chain = _chain_of(expr)
    if chain is None and isinstance(expr, ast.Call):
        chain = _chain_of(expr.func)
    if not chain:
        return False
    return "lock" in chain[-1].lower()


@dataclass
class CallSite:
    """One call expression inside a function body."""

    chain: "tuple[str, ...]"
    line: int
    col: int
    awaited: bool = False
    under_lock: bool = False
    #: Constant keyword arguments (``wait=False``, ``daemon=True``).
    const_kwargs: "dict[str, object]" = field(default_factory=dict)
    #: Name chains passed as keyword args (``target=self._loop``).
    kwarg_funcs: "dict[str, tuple[str, ...]]" = field(default_factory=dict)
    #: Name chains passed positionally (``submit(execute_spec, ...)``).
    func_args: "tuple[tuple[str, ...], ...]" = ()
    #: First two positional string args, f-string holes as ``*``
    #: (``client.request("POST", f"/v1/leases/{id}/heartbeat")``).
    str_args: "tuple[str | None, str | None]" = (None, None)

    def to_dict(self) -> dict:
        return {
            "chain": list(self.chain),
            "line": self.line,
            "col": self.col,
            "awaited": self.awaited,
            "under_lock": self.under_lock,
            "const_kwargs": dict(self.const_kwargs),
            "kwarg_funcs": {k: list(v) for k, v in self.kwarg_funcs.items()},
            "func_args": [list(c) for c in self.func_args],
            "str_args": list(self.str_args),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CallSite":
        return cls(
            chain=tuple(data["chain"]),
            line=data["line"],
            col=data["col"],
            awaited=data["awaited"],
            under_lock=data["under_lock"],
            const_kwargs=dict(data["const_kwargs"]),
            kwarg_funcs={
                k: tuple(v) for k, v in data["kwarg_funcs"].items()
            },
            func_args=tuple(tuple(c) for c in data["func_args"]),
            str_args=(data["str_args"][0], data["str_args"][1]),
        )


@dataclass
class Mutation:
    """A write to a module-level name from function scope."""

    name: str
    line: int
    col: int
    locked: bool
    kind: str  # "rebind" | "call"

    def to_dict(self) -> dict:
        return {
            "name": self.name, "line": self.line, "col": self.col,
            "locked": self.locked, "kind": self.kind,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Mutation":
        return cls(**data)


@dataclass
class ThreadStart:
    """A ``Thread``/``Process`` constructed (and maybe started) here."""

    kind: str  # "thread" | "process"
    line: int
    col: int
    target: "tuple[str, ...] | None" = None
    var: "str | None" = None
    daemon: "bool | None" = None
    started: bool = False
    joined: bool = False
    escapes: bool = False

    def to_dict(self) -> dict:
        return {
            "kind": self.kind, "line": self.line, "col": self.col,
            "target": list(self.target) if self.target else None,
            "var": self.var, "daemon": self.daemon,
            "started": self.started, "joined": self.joined,
            "escapes": self.escapes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ThreadStart":
        data = dict(data)
        data["target"] = tuple(data["target"]) if data["target"] else None
        return cls(**data)


@dataclass
class StatusCompare:
    """``status == 410`` / ``status in (200, 204)`` in a function."""

    name: str
    values: "tuple[int, ...]"
    line: int

    def to_dict(self) -> dict:
        return {"name": self.name, "values": list(self.values),
                "line": self.line}

    @classmethod
    def from_dict(cls, data: dict) -> "StatusCompare":
        return cls(data["name"], tuple(data["values"]), data["line"])


@dataclass
class FunctionInfo:
    """Per-function facts extracted in one pass."""

    qualname: str
    line: int
    is_async: bool = False
    calls: "list[CallSite]" = field(default_factory=list)
    declared_globals: "tuple[str, ...]" = ()
    mutations: "list[Mutation]" = field(default_factory=list)
    thread_starts: "list[ThreadStart]" = field(default_factory=list)
    await_lines: "list[tuple[int, int, bool]]" = field(default_factory=list)
    compares: "list[StatusCompare]" = field(default_factory=list)
    raises_codes: "tuple[int, ...]" = ()  # _HttpError(<int>, ...) raises

    def to_dict(self) -> dict:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "is_async": self.is_async,
            "calls": [c.to_dict() for c in self.calls],
            "declared_globals": list(self.declared_globals),
            "mutations": [m.to_dict() for m in self.mutations],
            "thread_starts": [t.to_dict() for t in self.thread_starts],
            "await_lines": [list(a) for a in self.await_lines],
            "compares": [c.to_dict() for c in self.compares],
            "raises_codes": list(self.raises_codes),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FunctionInfo":
        return cls(
            qualname=data["qualname"],
            line=data["line"],
            is_async=data["is_async"],
            calls=[CallSite.from_dict(c) for c in data["calls"]],
            declared_globals=tuple(data["declared_globals"]),
            mutations=[Mutation.from_dict(m) for m in data["mutations"]],
            thread_starts=[
                ThreadStart.from_dict(t) for t in data["thread_starts"]
            ],
            await_lines=[tuple(a) for a in data["await_lines"]],
            compares=[StatusCompare.from_dict(c) for c in data["compares"]],
            raises_codes=tuple(data["raises_codes"]),
        )


@dataclass
class ClassInfo:
    name: str
    bases: "tuple[str, ...]" = ()
    #: attribute -> dotted type name, from ``self.x = Ctor(...)`` and
    #: ``self.x: T`` (first assignment wins).
    attr_types: "dict[str, str]" = field(default_factory=dict)
    methods: "tuple[str, ...]" = ()

    def to_dict(self) -> dict:
        return {
            "name": self.name, "bases": list(self.bases),
            "attr_types": dict(self.attr_types),
            "methods": list(self.methods),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClassInfo":
        return cls(
            name=data["name"], bases=tuple(data["bases"]),
            attr_types=dict(data["attr_types"]),
            methods=tuple(data["methods"]),
        )


def module_name_of(path: str) -> str:
    """Dotted module name from a path (``.../repro/cluster/leases.py``)."""
    parts = path.replace("\\", "/").split("/")
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "<module>"


@dataclass
class FileIndex:
    """Serializable summary of one source file."""

    path: str
    module: str
    imports: "dict[str, str]" = field(default_factory=dict)
    classes: "dict[str, ClassInfo]" = field(default_factory=dict)
    functions: "dict[str, FunctionInfo]" = field(default_factory=dict)
    #: Module-level ``name = Ctor(...)`` -> dotted ctor name.
    module_types: "dict[str, str]" = field(default_factory=dict)
    #: Module-level names bound by plain assignment (shared-state pool).
    module_globals: "tuple[str, ...]" = ()
    set_attrs: "tuple[str, ...]" = ()
    dict_of_set_attrs: "tuple[str, ...]" = ()

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, path: str, tree: ast.AST) -> "FileIndex":
        builder = _FileIndexBuilder(path)
        builder.visit_module(tree)
        return builder.index

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "module": self.module,
            "imports": dict(self.imports),
            "classes": {k: v.to_dict() for k, v in self.classes.items()},
            "functions": {k: v.to_dict() for k, v in self.functions.items()},
            "module_types": dict(self.module_types),
            "module_globals": list(self.module_globals),
            "set_attrs": list(self.set_attrs),
            "dict_of_set_attrs": list(self.dict_of_set_attrs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FileIndex":
        return cls(
            path=data["path"],
            module=data["module"],
            imports=dict(data["imports"]),
            classes={
                k: ClassInfo.from_dict(v) for k, v in data["classes"].items()
            },
            functions={
                k: FunctionInfo.from_dict(v)
                for k, v in data["functions"].items()
            },
            module_types=dict(data["module_types"]),
            module_globals=tuple(data["module_globals"]),
            set_attrs=tuple(data["set_attrs"]),
            dict_of_set_attrs=tuple(data["dict_of_set_attrs"]),
        )


class _FileIndexBuilder:
    """Single-pass extraction of :class:`FileIndex` facts."""

    def __init__(self, path: str) -> None:
        self.index = FileIndex(path=path, module=module_name_of(path))
        self._set_attrs: set[str] = set()
        self._dict_of_set_attrs: set[str] = set()

    # -- module pass ---------------------------------------------------------

    def visit_module(self, tree: ast.AST) -> None:
        module_globals: list[str] = []
        for node in ast.iter_child_nodes(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.index.imports[local] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.index.imports[local] = (
                        f"{node.module}.{alias.name}"
                    )
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        module_globals.append(target.id)
                        value = getattr(node, "value", None)
                        if isinstance(value, ast.Call):
                            chain = _chain_of(value.func)
                            if chain:
                                self.index.module_types[target.id] = (
                                    self._dotted(chain)
                                )
            elif isinstance(node, ast.ClassDef):
                self._visit_class(node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._visit_function(node, prefix="")
        self.index.module_globals = tuple(dict.fromkeys(module_globals))
        self._collect_set_attrs(tree)
        self.index.set_attrs = tuple(sorted(self._set_attrs))
        self.index.dict_of_set_attrs = tuple(sorted(self._dict_of_set_attrs))

    def _dotted(self, chain: "tuple[str, ...]") -> str:
        head = self.index.imports.get(chain[0], chain[0])
        return ".".join((head,) + chain[1:])

    # -- classes -------------------------------------------------------------

    def _visit_class(self, node: ast.ClassDef) -> None:
        bases = []
        for base in node.bases:
            chain = _chain_of(base)
            if chain:
                bases.append(self._dotted(chain))
        info = ClassInfo(name=node.name, bases=tuple(bases))
        methods = []
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.append(stmt.name)
                self._visit_function(stmt, prefix=f"{node.name}.")
                self._collect_attr_types(stmt, info)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                annotation = stmt.annotation
                chain = _chain_of(annotation)
                if chain:
                    info.attr_types.setdefault(
                        stmt.target.id, self._dotted(chain)
                    )
        info.methods = tuple(methods)
        self.index.classes[node.name] = info

    def _collect_attr_types(self, method: ast.AST, info: ClassInfo) -> None:
        for stmt in ast.walk(method):
            target = None
            value = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, stmt.value
                chain = _chain_of(stmt.annotation)
                if (
                    chain
                    and isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    info.attr_types.setdefault(
                        target.attr, self._dotted(chain)
                    )
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and isinstance(value, ast.Call)
            ):
                continue
            chain = _chain_of(value.func)
            if chain:
                info.attr_types.setdefault(target.attr, self._dotted(chain))

    # -- functions -----------------------------------------------------------

    def _visit_function(self, node: ast.AST, prefix: str) -> None:
        qualname = f"{prefix}{node.name}"
        info = FunctionInfo(
            qualname=qualname,
            line=node.lineno,
            is_async=isinstance(node, ast.AsyncFunctionDef),
        )
        declared: list[str] = []
        extractor = _BodyExtractor(self, info, declared)
        for stmt in node.body:
            extractor.visit(stmt, under_lock=False)
        info.declared_globals = tuple(dict.fromkeys(declared))
        self._finish_thread_starts(node, info)
        self.index.functions[qualname] = info
        for nested in extractor.nested:
            self._visit_function(nested, prefix=f"{qualname}.<locals>.")
            # A nested def is conservatively treated as called by its
            # parent unless it is only ever handed to a thread ctor.
            info.calls.append(
                CallSite(
                    chain=(f"{qualname}.<locals>.{nested.name}",),
                    line=nested.lineno,
                    col=nested.col_offset,
                )
            )

    def _finish_thread_starts(
        self, node: ast.AST, info: FunctionInfo
    ) -> None:
        """Resolve join/escape facts for thread/process starts."""
        by_var = {t.var: t for t in info.thread_starts if t.var}
        if not info.thread_starts:
            return
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Call):
                chain = _chain_of(stmt.func)
                if chain and len(chain) == 2 and chain[0] in by_var:
                    if chain[1] == "join":
                        by_var[chain[0]].joined = True
                    elif chain[1] == "start":
                        by_var[chain[0]].started = True
                # var passed to any call -> escapes
                for arg in list(stmt.args) + [k.value for k in stmt.keywords]:
                    if isinstance(arg, ast.Name) and arg.id in by_var:
                        by_var[arg.id].escapes = True
            elif isinstance(stmt, ast.Return) and isinstance(
                stmt.value, ast.Name
            ):
                if stmt.value.id in by_var:
                    by_var[stmt.value.id].escapes = True
            elif isinstance(stmt, ast.Assign):
                if isinstance(stmt.value, ast.Name) and (
                    stmt.value.id in by_var
                ):
                    for target in stmt.targets:
                        if not isinstance(target, ast.Name):
                            by_var[stmt.value.id].escapes = True

    def _collect_set_attrs(self, tree: ast.AST) -> None:
        """Set-typed attribute names (SIM003/SIM004 compatibility)."""
        from repro.analysis.rules import (
            _is_default_factory_set,
            annotation_is_dict_of_set,
            annotation_is_set,
        )

        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    name = stmt.target.id
                    if annotation_is_set(stmt.annotation) or (
                        stmt.value is not None
                        and _is_default_factory_set(stmt.value)
                    ):
                        self._set_attrs.add(name)
                    elif annotation_is_dict_of_set(stmt.annotation):
                        self._dict_of_set_attrs.add(name)
            for method in node.body:
                if not isinstance(
                    method, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                for stmt in ast.walk(method):
                    if (
                        isinstance(stmt, ast.AnnAssign)
                        and isinstance(stmt.target, ast.Attribute)
                        and isinstance(stmt.target.value, ast.Name)
                        and stmt.target.value.id == "self"
                    ):
                        if annotation_is_set(stmt.annotation):
                            self._set_attrs.add(stmt.target.attr)
                        elif annotation_is_dict_of_set(stmt.annotation):
                            self._dict_of_set_attrs.add(stmt.target.attr)


class _BodyExtractor:
    """Recursive statement walker tracking lock context and awaits."""

    def __init__(
        self,
        builder: _FileIndexBuilder,
        info: FunctionInfo,
        declared: "list[str]",
    ) -> None:
        self.builder = builder
        self.info = info
        self.declared = declared
        self.nested: "list[ast.AST]" = []
        self._raises: "list[int]" = []

    def visit(self, node: ast.AST, under_lock: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.nested.append(node)
            return
        if isinstance(node, ast.Global):
            self.declared.extend(node.names)
        elif isinstance(node, ast.With):
            lockish = any(
                _is_lockish(item.context_expr) for item in node.items
            )
            for item in node.items:
                self._visit_expr(item.context_expr, under_lock, False)
            for stmt in node.body:
                self.visit(stmt, under_lock or lockish)
            return
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name) and (
                    target.id in self.declared
                ):
                    self.info.mutations.append(
                        Mutation(
                            name=target.id,
                            line=node.lineno,
                            col=node.col_offset,
                            locked=under_lock,
                            kind="rebind",
                        )
                    )
            value = getattr(node, "value", None)
            if value is not None:
                self._visit_expr(value, under_lock, False)
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                self._maybe_thread_start(node)
            return
        elif isinstance(node, ast.Raise) and isinstance(node.exc, ast.Call):
            chain = _chain_of(node.exc.func)
            if chain and chain[-1] == "_HttpError" and node.exc.args:
                code = _const_of(node.exc.args[0])
                if isinstance(code, int):
                    self._raises.append(code)
                    self.info.raises_codes = tuple(self._raises)
        elif isinstance(node, ast.Compare):
            self._visit_compare(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._visit_expr(child, under_lock, False)
            elif isinstance(child, ast.stmt):
                self.visit(child, under_lock)
            elif isinstance(
                child, (ast.excepthandler, ast.match_case)
            ):
                for sub in ast.iter_child_nodes(child):
                    if isinstance(sub, ast.stmt):
                        self.visit(sub, under_lock)
                    elif isinstance(sub, ast.expr):
                        self._visit_expr(sub, under_lock, False)

    # -- expressions ---------------------------------------------------------

    def _visit_expr(
        self, node: ast.AST, under_lock: bool, awaited: bool
    ) -> None:
        if isinstance(node, (ast.Lambda,)):
            return
        if isinstance(node, ast.Await):
            self.info.await_lines.append(
                (node.lineno, node.col_offset, under_lock)
            )
            self._visit_expr(node.value, under_lock, True)
            return
        if isinstance(node, ast.Compare):
            self._visit_compare(node)
        if isinstance(node, ast.Call):
            self._record_call(node, under_lock, awaited)
            for arg in node.args:
                self._visit_expr(arg, under_lock, False)
            for keyword in node.keywords:
                self._visit_expr(keyword.value, under_lock, False)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._visit_expr(child, under_lock, False)

    def _visit_compare(self, node: ast.Compare) -> None:
        chain = _chain_of(node.left)
        if not chain:
            return
        values: list[int] = []
        for comparator in node.comparators:
            if isinstance(comparator, ast.Constant) and isinstance(
                comparator.value, int
            ):
                values.append(comparator.value)
            elif isinstance(comparator, (ast.Tuple, ast.Set, ast.List)):
                for element in comparator.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, int
                    ):
                        values.append(element.value)
        if values:
            self.info.compares.append(
                StatusCompare(
                    name=chain[-1], values=tuple(values), line=node.lineno
                )
            )

    def _record_call(
        self, node: ast.Call, under_lock: bool, awaited: bool
    ) -> None:
        chain = _chain_of(node.func)
        if chain is None:
            self._visit_expr(node.func, under_lock, False)
            return
        const_kwargs: "dict[str, object]" = {}
        kwarg_funcs: "dict[str, tuple[str, ...]]" = {}
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            value = _const_of(keyword.value)
            if value is not _UNKNOWN:
                const_kwargs[keyword.arg] = value
            else:
                func_chain = _chain_of(keyword.value)
                if func_chain:
                    kwarg_funcs[keyword.arg] = func_chain
        func_args = tuple(
            c for c in (_chain_of(arg) for arg in node.args) if c
        )
        str_args: "list[str | None]" = [None, None]
        for position, arg in enumerate(node.args[:2]):
            str_args[position] = _normalized_str(arg)
        site = CallSite(
            chain=chain,
            line=node.lineno,
            col=node.col_offset,
            awaited=awaited,
            under_lock=under_lock,
            const_kwargs=const_kwargs,
            kwarg_funcs=kwarg_funcs,
            func_args=func_args,
            str_args=(str_args[0], str_args[1]),
        )
        self.info.calls.append(site)
        # A mutator-method call on a bare two-element chain is a
        # *candidate* shared-state mutation; link() keeps only those
        # whose receiver is a module-level global.
        if len(chain) == 2 and chain[1] in MUTATOR_METHODS:
            self.info.mutations.append(
                Mutation(
                    name=chain[0],
                    line=node.lineno,
                    col=node.col_offset,
                    locked=under_lock,
                    kind="call",
                )
            )

    def _maybe_thread_start(self, node: ast.Assign) -> None:
        """``t = Thread(...)`` — registered for join/escape analysis."""
        call = node.value
        chain = _chain_of(call.func)
        if chain is None:
            return
        dotted = self.builder._dotted(chain)
        kind = None
        if dotted in _THREAD_CTORS or chain[-1] == "Thread":
            kind = "thread"
        elif dotted in _PROCESS_CTORS or chain[-1] == "Process":
            kind = "process"
        if kind is None:
            return
        var = None
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            var = node.targets[0].id
        target = None
        daemon = None
        for keyword in call.keywords:
            if keyword.arg == "target":
                target = _chain_of(keyword.value)
            elif keyword.arg == "daemon":
                value = _const_of(keyword.value)
                if isinstance(value, bool):
                    daemon = value
        self.info.thread_starts.append(
            ThreadStart(
                kind=kind,
                line=node.lineno,
                col=node.col_offset,
                target=target,
                var=var,
                daemon=daemon,
            )
        )


@dataclass
class ProjectIndex:
    """Cross-file facts, built from every linted file before rules run.

    The ``set_attrs`` / ``dict_of_set_attrs`` fields keep the original
    (PR 3) contract used by the ordering rules; everything else is the
    linked concurrency/protocol view.  Call :meth:`add_file` for every
    file, then :meth:`link` once; the query helpers below are only
    meaningful after linking.
    """

    set_attrs: "set[str]" = field(default_factory=set)
    dict_of_set_attrs: "set[str]" = field(default_factory=set)
    files: "dict[str, FileIndex]" = field(default_factory=dict)

    # linked views (populated by link())
    functions: "dict[str, FunctionInfo]" = field(default_factory=dict)
    fid_file: "dict[str, FileIndex]" = field(default_factory=dict)
    blocking: "dict[str, tuple[str, str]]" = field(default_factory=dict)
    thread_targets: "set[str]" = field(default_factory=set)
    thread_reachable: "set[str]" = field(default_factory=set)
    linked: bool = False

    # -- construction --------------------------------------------------------

    def add_file(self, file_index: FileIndex) -> None:
        self.files[file_index.path] = file_index
        self.set_attrs.update(file_index.set_attrs)
        self.dict_of_set_attrs.update(file_index.dict_of_set_attrs)
        self.linked = False

    # -- resolution helpers --------------------------------------------------

    def _class_by_dotted(self, dotted: str) -> "tuple[FileIndex, ClassInfo] | None":
        module, _, name = dotted.rpartition(".")
        for file_index in self.files.values():
            if name in file_index.classes and (
                not module or file_index.module == module
            ):
                return file_index, file_index.classes[name]
        return None

    def _method_fid(
        self, file_index: FileIndex, info: ClassInfo, method: str
    ) -> "str | None":
        """Method lookup through project-resolvable base classes."""
        seen = set()
        stack = [(file_index, info)]
        while stack:
            current_file, current = stack.pop()
            key = f"{current_file.module}.{current.name}"
            if key in seen:
                continue
            seen.add(key)
            if method in current.methods:
                return f"{current_file.module}.{current.name}.{method}"
            for base in current.bases:
                resolved = self._class_by_dotted(base)
                if resolved:
                    stack.append(resolved)
        return None

    def dotted_of(
        self, file_index: FileIndex, chain: "tuple[str, ...]"
    ) -> str:
        head = file_index.imports.get(chain[0], chain[0])
        return ".".join((head,) + chain[1:])

    def resolve_call(
        self, file_index: FileIndex, qualname: str, site: CallSite
    ) -> "str | None":
        """Resolve a call chain to a project fid or external dotted name.

        Returns a project fid (``repro.cluster.leases.LeaseTable.grant``)
        when the target is an indexed function, a dotted external name
        (``time.sleep``) otherwise, or None when unresolvable.
        """
        chain = site.chain
        if not chain:
            return None
        if ".<locals>." in chain[0]:  # synthetic parent->nested edge
            return f"{file_index.module}.{chain[0]}"
        scope_class: "ClassInfo | None" = None
        if "." in qualname:
            scope_class = file_index.classes.get(qualname.split(".")[0])
        if chain[0] == "self" and scope_class is not None:
            if len(chain) == 2:
                return self._method_fid(file_index, scope_class, chain[1])
            if len(chain) == 3:
                attr_type = scope_class.attr_types.get(chain[1])
                if attr_type is None:
                    return None
                resolved = self._class_by_dotted(attr_type)
                if resolved:
                    fid = self._method_fid(resolved[0], resolved[1], chain[2])
                    if fid:
                        return fid
                return f"{attr_type}.{chain[2]}"
            return None
        if len(chain) == 1:
            nested = f"{qualname}.<locals>.{chain[0]}"
            if nested in file_index.functions:
                return f"{file_index.module}.{nested}"
            if chain[0] in file_index.functions:
                return f"{file_index.module}.{chain[0]}"
            dotted = file_index.imports.get(chain[0])
            if dotted:
                return self._project_or_external(dotted)
            return None
        # instance of a known module-level object: resolve via its type
        instance_type = file_index.module_types.get(chain[0])
        if instance_type and len(chain) == 2:
            resolved = self._class_by_dotted(instance_type)
            if resolved:
                fid = self._method_fid(resolved[0], resolved[1], chain[1])
                if fid:
                    return fid
            return f"{instance_type}.{chain[1]}"
        if chain[0] in file_index.classes and len(chain) == 2:
            info = file_index.classes[chain[0]]
            return self._method_fid(file_index, info, chain[1])
        dotted = self.dotted_of(file_index, chain)
        return self._project_or_external(dotted)

    def _project_or_external(self, dotted: str) -> str:
        """Map a dotted name onto an indexed fid when one matches."""
        module, _, tail = dotted.rpartition(".")
        for file_index in self.files.values():
            if file_index.module == module:
                if tail in file_index.functions:
                    return dotted
                if tail in file_index.classes:  # Ctor() -> __init__
                    fid = self._method_fid(
                        file_index, file_index.classes[tail], "__init__"
                    )
                    return fid or dotted
            # from-import of a class: module part is package.Class
            head, _, class_name = module.rpartition(".")
            if file_index.module == head and (
                class_name in file_index.classes
            ):
                fid = self._method_fid(
                    file_index, file_index.classes[class_name], tail
                )
                if fid:
                    return fid
        return dotted

    # -- blocking classification ---------------------------------------------

    def classify_blocking(
        self, file_index: FileIndex, site: CallSite
    ) -> "str | None":
        """Lexical blocking kind of one call site (None if benign)."""
        chain = site.chain
        dotted = self.dotted_of(file_index, chain)
        if dotted == "time.sleep":
            return "sleep"
        if dotted.startswith("subprocess."):
            return "subprocess"
        if dotted == "socket.create_connection" or (
            dotted.startswith("socket.") and dotted.endswith(".connect")
        ):
            return "network"
        if chain[-1] == "getresponse":
            return "network"
        if chain[-1] in ("HTTPConnection", "HTTPSConnection"):
            return "network"
        if (
            chain[-1] == "shutdown"
            and len(chain) > 1
            and ("executor" in chain[-2].lower() or "pool" in chain[-2].lower())
            and site.const_kwargs.get("wait", True) is not False
        ):
            return "shutdown"
        if chain == ("open",) and "open" not in file_index.imports:
            return "file"
        if chain[-1] in _FILE_METHODS and len(chain) > 1:
            return "file"
        return None

    # -- linking -------------------------------------------------------------

    def link(self) -> None:
        """Build the call graph and derived closures."""
        self.functions = {}
        self.fid_file = {}
        for file_index in self.files.values():
            for qualname, info in file_index.functions.items():
                fid = f"{file_index.module}.{qualname}"
                self.functions[fid] = info
                self.fid_file[fid] = file_index

        edges: "dict[str, set[str]]" = {}
        targets: "set[str]" = set()
        for fid, info in self.functions.items():
            file_index = self.fid_file[fid]
            out: "set[str]" = set()
            for site in info.calls:
                resolved = self.resolve_call(
                    file_index, info.qualname, site
                )
                if (
                    resolved in self.functions
                    and not site.awaited
                    and not self.functions[resolved].is_async
                ):
                    out.add(resolved)
                # thread-entry registration
                target_chain = None
                if site.chain[-1] in ("Thread", "Process") and (
                    "target" in site.kwarg_funcs
                ):
                    if site.chain[-1] == "Thread":
                        target_chain = site.kwarg_funcs["target"]
                elif site.chain[-1] in _SUBMIT_METHODS and site.func_args:
                    target_chain = site.func_args[0]
                elif site.chain[-1] == "partial" and site.func_args:
                    target_chain = site.func_args[0]
                if target_chain is not None:
                    target_fid = self.resolve_call(
                        file_index,
                        info.qualname,
                        CallSite(chain=target_chain, line=site.line, col=0),
                    )
                    if target_fid in self.functions:
                        targets.add(target_fid)
            edges[fid] = out
        self.thread_targets = targets

        # closure of functions that may run on a worker thread
        reachable = set(targets)
        frontier = list(targets)
        while frontier:
            current = frontier.pop()
            for callee in edges.get(current, ()):
                if callee not in reachable:
                    reachable.add(callee)
                    frontier.append(callee)
        self.thread_reachable = reachable

        # transitive hard-blocking classification over sync calls
        blocking: "dict[str, tuple[str, str]]" = {}
        for fid, info in self.functions.items():
            file_index = self.fid_file[fid]
            for site in info.calls:
                if site.awaited:
                    continue
                kind = self.classify_blocking(file_index, site)
                if kind in HARD_KINDS:
                    blocking[fid] = (kind, ".".join(site.chain))
                    break
        changed = True
        while changed:
            changed = False
            for fid, out in edges.items():
                if fid in blocking:
                    continue
                for callee in out:
                    if callee in blocking:
                        kind, root = blocking[callee]
                        short = callee.rsplit(".", 1)[-1]
                        blocking[fid] = (kind, f"{short} -> {root}")
                        changed = True
                        break
        self.blocking = blocking
        self.linked = True

    # -- shared-state summary ------------------------------------------------

    def mutation_summary(self) -> "dict[tuple[str, str], dict[str, list]]":
        """(module, global) -> locked/unlocked mutation sites, cached."""
        cached = getattr(self, "_mutation_summary", None)
        if cached is not None:
            return cached
        summary: "dict[tuple[str, str], dict[str, list]]" = {}
        for fid, info in self.functions.items():
            file_index = self.fid_file[fid]
            for mutation in info.mutations:
                if mutation.name not in file_index.module_globals:
                    continue  # receiver is a local, not shared state
                key = (file_index.module, mutation.name)
                entry = summary.setdefault(
                    key, {"locked": [], "unlocked": []}
                )
                bucket = "locked" if mutation.locked else "unlocked"
                entry[bucket].append((fid, mutation))
        self._mutation_summary = summary
        return summary
