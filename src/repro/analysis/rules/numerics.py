"""Numeric-hygiene rules: float equality, mutable default arguments.

Timing and slowdown quantities flow through float arithmetic whose
low-order bits depend on accumulation order; gating behaviour on exact
float equality makes schedules fragile.  Mutable default arguments are
process-lifetime shared state — a classic source of cross-run coupling
in long-lived worker processes.
"""

from __future__ import annotations

import ast

from repro.analysis.rules import (
    ALL_DOMAINS,
    CORE_DOMAINS,
    LintContext,
    Rule,
)


class FloatEqualityRule(Rule):
    """SIM005: no ``==``/``!=`` against float literals in the core.

    Timing/slowdown values are sums of float terms; exact comparison
    against a float constant encodes an accumulation-order dependence.
    Compare with a tolerance, or restructure to integers (the simulator
    keeps all *time* in integer CPU cycles for exactly this reason).
    """

    code = "SIM005"
    summary = "exact float equality on a timing/slowdown quantity"
    fixit = (
        "compare with an explicit tolerance (math.isclose) or keep the "
        "quantity in integer cycles"
    )
    domains = CORE_DOMAINS

    def check(self, ctx: LintContext):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (left, right):
                    if isinstance(side, ast.Constant) and isinstance(
                        side.value, float
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            f"comparison against float literal "
                            f"{side.value!r} with =="
                            if isinstance(op, ast.Eq)
                            else f"comparison against float literal "
                            f"{side.value!r} with !=",
                        )
                        break


class MutableDefaultRule(Rule):
    """SIM006: no mutable default arguments.

    A ``def f(x=[])`` default is created once per process and mutated
    in place across calls; in the engine's long-lived worker processes
    that couples unrelated simulations.  Default to ``None`` and create
    the container in the body.
    """

    code = "SIM006"
    summary = "mutable default argument"
    fixit = "default to None and construct the container inside the function"
    domains = ALL_DOMAINS

    _MUTABLE_CALLS = frozenset(
        {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter"}
    )

    def check(self, ctx: LintContext):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if isinstance(
                    default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)
                ):
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default in {node.name}()",
                    )
                elif (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in self._MUTABLE_CALLS
                ):
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default {default.func.id}() in "
                        f"{node.name}()",
                    )
