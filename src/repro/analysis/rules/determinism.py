"""Determinism rules: no wall clock, no unseeded randomness.

The simulator's outputs are content-addressed (``repro.engine.store``)
and the serial/parallel execution paths must be bit-identical; both
guarantees die the moment simulated behaviour reads the host's clock or
an unseeded random stream.
"""

from __future__ import annotations

import ast

from repro.analysis.rules import (
    CORE_DOMAINS,
    GENERATION_DOMAINS,
    LintContext,
    Rule,
)

#: ``time`` module functions that read the host clock.
_WALL_CLOCK_TIME = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
    }
)

#: ``datetime``/``date`` constructors that read the host clock.
_WALL_CLOCK_DATETIME = frozenset({"now", "utcnow", "today"})

#: Module-level ``random`` functions — they draw from the implicitly
#: seeded global ``Random`` instance.
_GLOBAL_RANDOM = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "randbytes",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
        "lognormvariate",
        "paretovariate",
        "vonmisesvariate",
        "weibullvariate",
        "triangular",
        "getrandbits",
        "seed",
    }
)


def _imported_names(tree: ast.AST, module: str, names: frozenset[str]) -> set[str]:
    """Local aliases created by ``from <module> import <name>``."""
    found: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                if alias.name in names:
                    found.add(alias.asname or alias.name)
    return found


class WallClockRule(Rule):
    """SIM001: simulated behaviour must not read the host clock.

    Simulated time is the integer cycle counter; anything derived from
    ``time.time()`` & friends differs between runs and between the
    serial and parallel engine paths.  (Orchestration code — the engine
    executor, the CLI — may time things; the simulator core may not.)
    """

    code = "SIM001"
    summary = "wall-clock read in simulator core"
    fixit = (
        "derive timing from the simulated cycle counter; wall-clock "
        "measurement belongs in the engine/CLI layer"
    )
    domains = GENERATION_DOMAINS

    def check(self, ctx: LintContext):
        time_aliases = _imported_names(ctx.tree, "time", _WALL_CLOCK_TIME)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                value = func.value
                if (
                    isinstance(value, ast.Name)
                    and value.id == "time"
                    and func.attr in _WALL_CLOCK_TIME
                ):
                    yield self.finding(
                        ctx, node, f"wall-clock call time.{func.attr}()"
                    )
                elif func.attr in _WALL_CLOCK_DATETIME and isinstance(
                    value, (ast.Name, ast.Attribute)
                ):
                    base = value.attr if isinstance(value, ast.Attribute) else value.id
                    if base in ("datetime", "date"):
                        yield self.finding(
                            ctx,
                            node,
                            f"wall-clock call {base}.{func.attr}()",
                        )
            elif isinstance(func, ast.Name) and func.id in time_aliases:
                yield self.finding(
                    ctx, node, f"wall-clock call {func.id}() (from time import)"
                )


class UnseededRandomRule(Rule):
    """SIM002: randomness must flow from an explicitly seeded generator.

    The global ``random`` module functions (and a bare
    ``random.Random()``) seed from the OS; identical inputs then stop
    producing identical schedules.  Construct ``random.Random(seed)``
    and thread it through instead.
    """

    code = "SIM002"
    summary = "unseeded random number generator"
    fixit = "use an explicitly seeded random.Random(seed) instance"
    domains = GENERATION_DOMAINS

    def check(self, ctx: LintContext):
        aliases = _imported_names(ctx.tree, "random", _GLOBAL_RANDOM)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Name
            ):
                base = func.value.id
                if base == "random" and func.attr in _GLOBAL_RANDOM:
                    yield self.finding(
                        ctx,
                        node,
                        f"module-level random.{func.attr}() uses the "
                        "process-global RNG",
                    )
                elif (
                    base in ("random", "np", "numpy")
                    and func.attr == "Random"
                    and not node.args
                    and not node.keywords
                ):
                    yield self.finding(
                        ctx, node, "random.Random() constructed without a seed"
                    )
                elif base in ("np", "numpy") and func.attr == "random":
                    yield self.finding(
                        ctx, node, "numpy global RNG is unseeded"
                    )
            elif isinstance(func, ast.Name) and func.id in aliases:
                yield self.finding(
                    ctx,
                    node,
                    f"{func.id}() draws from the process-global RNG "
                    "(from random import)",
                )

    # Core modules must not even import random; generation modules may
    # (seeded).  Report bare `import random` only in CORE domains.
    def run(self, ctx: LintContext):
        findings = super().run(ctx)
        if ctx.domain in CORE_DOMAINS and ctx.applies(self.domains):
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        if alias.name == "random":
                            findings.append(
                                self.finding(
                                    ctx,
                                    node,
                                    "simulator core imports random; "
                                    "draw seeded streams in workloads/ "
                                    "and pass values in",
                                )
                            )
        return findings
