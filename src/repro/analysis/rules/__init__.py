"""The ``simlint`` rule registry.

Each rule is a small AST checker with a stable code (``SIM001``...), a
one-line summary, a fix-it message, and a *domain* — the set of
``repro`` sub-packages it applies to.  The driver
(:mod:`repro.analysis.simlint`) parses every file once, builds a
cross-file :class:`ProjectIndex` of set-typed attributes, and hands each
rule a :class:`LintContext` per file.

Rules report :class:`Finding` objects; inline suppression
(``# simlint: disable=SIM003``) and the ``[simlint]`` block in
``setup.cfg`` are applied by the driver, not by the rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


#: Sub-packages that make up the simulator core: code here must be
#: deterministic and protocol-correct (ISSUE: the bit-identical
#: serial/parallel guarantee and the content-addressed result store of
#: the experiment engine both depend on it).
CORE_DOMAINS = ("dram", "controller", "schedulers", "core", "cpu", "sim")

#: Sub-packages whose code makes or feeds *scheduling decisions*:
#: iteration order and object identity here directly change which DRAM
#: command wins arbitration.
ARBITRATION_DOMAINS = ("dram", "controller", "schedulers", "core", "sim")

#: Trace generation must also be reproducible (seeded RNG only).
GENERATION_DOMAINS = CORE_DOMAINS + ("workloads",)

#: Everything under ``repro``.
ALL_DOMAINS = ("*",)


@dataclass(frozen=True)
class Finding:
    """One lint finding, anchored to a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    fixit: str

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: {self.code} "
            f"{self.message}  [fix: {self.fixit}]"
        )


from repro.analysis.index import (  # noqa: E402  (re-export)
    FileIndex,
    ProjectIndex,
)

__all__ = [
    "ALL_DOMAINS", "ARBITRATION_DOMAINS", "CORE_DOMAINS",
    "GENERATION_DOMAINS", "FileIndex", "Finding", "LintContext",
    "ProjectIndex", "Rule", "all_rules", "index_file", "walk_shallow",
]


@dataclass
class LintContext:
    """Everything a rule may inspect about one file."""

    path: str  # as reported in findings (relative when possible)
    domain: str  # first package segment under repro/ ("" if unknown)
    source: str
    lines: list[str]
    tree: ast.AST
    index: ProjectIndex

    def applies(self, domains: tuple[str, ...]) -> bool:
        return "*" in domains or self.domain in domains


class Rule:
    """Base class for simlint rules."""

    code: str = "SIM000"
    summary: str = ""
    fixit: str = ""
    domains: tuple[str, ...] = ALL_DOMAINS

    def run(self, ctx: LintContext) -> list[Finding]:
        if not ctx.applies(self.domains):
            return []
        return list(self.check(ctx))

    def check(self, ctx: LintContext):  # pragma: no cover - interface
        raise NotImplementedError

    def finding(
        self, ctx: LintContext, node: ast.AST, message: str | None = None
    ) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message or self.summary,
            fixit=self.fixit,
        )


def walk_shallow(node: ast.AST):
    """Walk descendants without entering nested function definitions.

    Scope-sensitive rules visit each statement exactly once: the module
    scope stops at every ``def``, and each function scope stops at its
    nested ``def``s (class bodies are traversed — methods belong to the
    enclosing module's statement stream only via their own scope).
    """
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack.extend(ast.iter_child_nodes(child))


def _annotation_text(node: ast.AST | None) -> str:
    if node is None:
        return ""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - malformed annotation
        return ""


def annotation_is_set(node: ast.AST | None) -> bool:
    text = _annotation_text(node).replace(" ", "")
    return text in ("set", "frozenset") or text.startswith(
        ("set[", "frozenset[", "Set[", "FrozenSet[")
    )


def annotation_is_dict_of_set(node: ast.AST | None) -> bool:
    text = _annotation_text(node).replace(" ", "")
    if not text.startswith(("dict[", "Dict[")):
        return False
    inner = text.split("[", 1)[1]
    value = inner.split(",", 1)[1] if "," in inner else ""
    return value.startswith(("set[", "frozenset[", "set]", "frozenset]"))


def _is_default_factory_set(node: ast.AST) -> bool:
    """``field(default_factory=set)`` marks a dataclass set attribute."""
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
        return False
    if node.func.id != "field":
        return False
    for keyword in node.keywords:
        if (
            keyword.arg == "default_factory"
            and isinstance(keyword.value, ast.Name)
            and keyword.value.id in ("set", "frozenset")
        ):
            return True
    return False


def index_file(tree: ast.AST, index: ProjectIndex) -> None:
    """Record set-typed attribute names of one file into the index."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                name = stmt.target.id
                if annotation_is_set(stmt.annotation) or (
                    stmt.value is not None
                    and _is_default_factory_set(stmt.value)
                ):
                    index.set_attrs.add(name)
                elif annotation_is_dict_of_set(stmt.annotation):
                    index.dict_of_set_attrs.add(name)
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for stmt in ast.walk(method):
                if (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Attribute)
                    and isinstance(stmt.target.value, ast.Name)
                    and stmt.target.value.id == "self"
                ):
                    if annotation_is_set(stmt.annotation):
                        index.set_attrs.add(stmt.target.attr)
                    elif annotation_is_dict_of_set(stmt.annotation):
                        index.dict_of_set_attrs.add(stmt.target.attr)


def all_rules() -> list[Rule]:
    """Instantiate every registered rule, ordered by code."""
    from repro.analysis.rules.determinism import (
        UnseededRandomRule,
        WallClockRule,
    )
    from repro.analysis.rules.numerics import (
        FloatEqualityRule,
        MutableDefaultRule,
    )
    from repro.analysis.rules.ordering import (
        IdKeyedContainerRule,
        SetIterationRule,
    )
    from repro.analysis.rules.robustness import (
        SilentExceptRule,
        UnboundedRetryLoopRule,
    )
    from repro.analysis.rules.concurrency import (
        AwaitUnderLockRule,
        BlockingInCoroutineRule,
        CtxvarThreadWriteRule,
        ForkAfterThreadRule,
        SharedStateMutationRule,
        UnjoinedThreadRule,
    )
    from repro.analysis.rules.protocol_static import (
        UndeclaredLeaseOpRule,
        UndeclaredStatusCodeRule,
    )

    rules: list[Rule] = [
        WallClockRule(),
        UnseededRandomRule(),
        SetIterationRule(),
        IdKeyedContainerRule(),
        FloatEqualityRule(),
        MutableDefaultRule(),
        SilentExceptRule(),
        BlockingInCoroutineRule(),
        SharedStateMutationRule(),
        AwaitUnderLockRule(),
        ForkAfterThreadRule(),
        UnjoinedThreadRule(),
        CtxvarThreadWriteRule(),
        UndeclaredLeaseOpRule(),
        UndeclaredStatusCodeRule(),
        UnboundedRetryLoopRule(),
    ]
    return sorted(rules, key=lambda rule: rule.code)
