"""Robustness rules: faults must never be swallowed silently.

The hardening layers (engine retry, store quarantine, service watchdog)
all rely on failures being *observable* — counted, logged, or
propagated.  A handler that catches ``Exception`` and does nothing is
how cache corruption, lost writes, and dead workers hide until a sweep
is already poisoned.

SIM109 guards the opposite failure mode: a fault handled *too
eagerly*.  A worker thread that wraps a network call in ``while True``
with no pacing turns one dead endpoint into a busy-loop — the exact
anti-pattern the cluster runner's circuit breaker exists to prevent.
"""

from __future__ import annotations

import ast

from repro.analysis.index import CallSite, FileIndex, ProjectIndex
from repro.analysis.rules import ALL_DOMAINS, LintContext, Rule

_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _names_broad_exception(node: "ast.expr | None") -> bool:
    """Whether an ``except`` clause type catches Exception/BaseException."""
    if node is None:  # bare ``except:``
        return True
    if isinstance(node, ast.Name):
        return node.id in _BROAD_NAMES
    if isinstance(node, ast.Tuple):
        return any(_names_broad_exception(elt) for elt in node.elts)
    return False


class SilentExceptRule(Rule):
    """SIM007: broad ``except`` clauses must not silently ``pass``.

    ``except Exception: pass`` (or bare ``except:``) discards the only
    evidence of a fault.  Narrow the exception type (``except OSError:
    pass`` for a genuinely-ignorable cleanup race is fine), or count /
    log / re-raise.  The rare legitimate broad swallow — a worker's
    last-ditch pipe-send guard — gets an inline
    ``# simlint: disable=SIM007`` with a comment saying why.
    """

    code = "SIM007"
    summary = "broad exception handler silently swallows the fault"
    fixit = (
        "narrow the exception type, or count/log/re-raise; suppress "
        "inline only with a justification comment"
    )
    domains = ALL_DOMAINS

    def check(self, ctx: LintContext):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _names_broad_exception(node.type):
                continue
            if all(isinstance(stmt, ast.Pass) for stmt in node.body):
                caught = (
                    ast.unparse(node.type) if node.type is not None else "—"
                )
                yield self.finding(
                    ctx,
                    node,
                    f"'except {caught}: pass' silently swallows the fault"
                    if node.type is not None
                    else "bare 'except: pass' silently swallows the fault",
                )


def _is_constant_true(test: ast.expr) -> bool:
    """``while True:`` / ``while 1:`` — a loop with no exit condition."""
    return isinstance(test, ast.Constant) and bool(test.value)


def _function_defs(tree: ast.AST):
    """Yield (qualname, node) matching the index builder's naming:
    module functions, ``Class.method``, and ``parent.<locals>.nested``."""
    stack: "list[tuple[str, ast.AST]]" = []
    for node in ast.iter_child_nodes(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack.append((node.name, node))
        elif isinstance(node, ast.ClassDef):
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    stack.append((f"{node.name}.{stmt.name}", stmt))
    while stack:
        qualname, node = stack.pop()
        yield qualname, node
        for child in _scope_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                stack.append((f"{qualname}.<locals>.{child.name}", child))


def _scope_nodes(node: ast.AST):
    """Descendants of one function scope, stopping at nested ``def``s
    (which are yielded but not entered)."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack.extend(ast.iter_child_nodes(child))


class UnboundedRetryLoopRule(Rule):
    """SIM109: ``while True`` around network I/O with no pacing.

    In thread-reachable sync code (per the project index), a
    constant-true loop whose body performs synchronous network I/O —
    lexically, or transitively through the sync call graph — and
    contains neither a ``time.sleep`` nor an ``Event.wait`` retries a
    dead endpoint as fast as ``connect()`` can fail.  Bound the loop,
    pace it, or gate it behind a breaker (whose ``wait``/``sleep``
    inside the loop satisfies this rule).  Deadline loops
    (``while time.monotonic() < deadline``) and event loops
    (``while not stop.is_set()``) are not constant-true and are exempt.
    """

    code = "SIM109"
    summary = "unbounded retry loop around network I/O with no pacing"
    fixit = (
        "bound the loop (for attempt in range(...)), pace it "
        "(time.sleep / Event.wait / breaker backoff inside the loop), "
        "or loop on a deadline or stop event instead of True"
    )
    domains = ALL_DOMAINS

    #: Call tails that pace a loop: ``time.sleep``, ``Event.wait``,
    #: ``Condition.wait`` — anything that yields the CPU between tries.
    _PACING_TAILS = frozenset({"sleep", "wait"})
    #: How deep into the sync call graph to chase a network call.
    _DEPTH = 4

    def run(self, ctx: LintContext):
        if not ctx.applies(self.domains):
            return []
        index = ctx.index
        if not isinstance(index, ProjectIndex) or not index.linked:
            return []
        file_index = index.files.get(ctx.path)
        if file_index is None:
            return []
        return list(self._check(ctx, index, file_index))

    def _check(
        self, ctx: LintContext, index: ProjectIndex, file_index: FileIndex
    ):
        for qualname, node in _function_defs(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                continue  # the event loop is SIM101's beat
            info = file_index.functions.get(qualname)
            if info is None:
                continue
            fid = f"{file_index.module}.{qualname}"
            if (
                fid not in index.thread_reachable
                and fid not in index.thread_targets
            ):
                continue
            site_at = {(s.line, s.col): s for s in info.calls}
            for loop in _scope_nodes(node):
                if not isinstance(loop, ast.While):
                    continue
                if not _is_constant_true(loop.test):
                    continue
                sites = [
                    site
                    for child in _scope_nodes(loop)
                    if isinstance(child, ast.Call)
                    for site in (
                        site_at.get((child.lineno, child.col_offset)),
                    )
                    if site is not None
                ]
                paced = False
                network: "CallSite | None" = None
                for site in sites:
                    kind = index.classify_blocking(file_index, site)
                    if kind == "sleep" or (
                        site.chain[-1] in self._PACING_TAILS
                    ):
                        paced = True
                        break
                    if network is None and (
                        kind == "network"
                        or self._reaches_network(
                            index, file_index, qualname, site
                        )
                    ):
                        network = site
                if paced or network is None:
                    continue
                yield self.finding(
                    ctx,
                    loop,
                    f"{qualname} retries {'.'.join(network.chain)} in a "
                    "'while True' with no sleep, wait, or bound "
                    "(thread-reachable: a dead endpoint becomes a "
                    "busy-loop)",
                )

    def _reaches_network(
        self,
        index: ProjectIndex,
        file_index: FileIndex,
        qualname: str,
        site: CallSite,
    ) -> bool:
        """Whether a call site reaches synchronous network I/O within
        ``_DEPTH`` sync-call hops (lexical check at every hop, plus the
        index's transitive blocking classification)."""
        seen: "set[str]" = set()
        frontier = [(file_index, qualname, site)]
        for _ in range(self._DEPTH):
            next_frontier = []
            for fi, qn, current in frontier:
                resolved = index.resolve_call(fi, qn, current)
                if resolved is None or resolved in seen:
                    continue
                seen.add(resolved)
                if index.blocking.get(resolved, ("", ""))[0] == "network":
                    return True
                callee = index.functions.get(resolved)
                if callee is None or callee.is_async:
                    continue
                callee_file = index.fid_file[resolved]
                for sub in callee.calls:
                    if sub.awaited:
                        continue
                    if index.classify_blocking(callee_file, sub) == "network":
                        return True
                    next_frontier.append((callee_file, callee.qualname, sub))
            frontier = next_frontier
        return False
