"""Robustness rules: faults must never be swallowed silently.

The hardening layers (engine retry, store quarantine, service watchdog)
all rely on failures being *observable* — counted, logged, or
propagated.  A handler that catches ``Exception`` and does nothing is
how cache corruption, lost writes, and dead workers hide until a sweep
is already poisoned.
"""

from __future__ import annotations

import ast

from repro.analysis.rules import ALL_DOMAINS, LintContext, Rule

_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _names_broad_exception(node: "ast.expr | None") -> bool:
    """Whether an ``except`` clause type catches Exception/BaseException."""
    if node is None:  # bare ``except:``
        return True
    if isinstance(node, ast.Name):
        return node.id in _BROAD_NAMES
    if isinstance(node, ast.Tuple):
        return any(_names_broad_exception(elt) for elt in node.elts)
    return False


class SilentExceptRule(Rule):
    """SIM007: broad ``except`` clauses must not silently ``pass``.

    ``except Exception: pass`` (or bare ``except:``) discards the only
    evidence of a fault.  Narrow the exception type (``except OSError:
    pass`` for a genuinely-ignorable cleanup race is fine), or count /
    log / re-raise.  The rare legitimate broad swallow — a worker's
    last-ditch pipe-send guard — gets an inline
    ``# simlint: disable=SIM007`` with a comment saying why.
    """

    code = "SIM007"
    summary = "broad exception handler silently swallows the fault"
    fixit = (
        "narrow the exception type, or count/log/re-raise; suppress "
        "inline only with a justification comment"
    )
    domains = ALL_DOMAINS

    def check(self, ctx: LintContext):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _names_broad_exception(node.type):
                continue
            if all(isinstance(stmt, ast.Pass) for stmt in node.body):
                caught = (
                    ast.unparse(node.type) if node.type is not None else "—"
                )
                yield self.finding(
                    ctx,
                    node,
                    f"'except {caught}: pass' silently swallows the fault"
                    if node.type is not None
                    else "bare 'except: pass' silently swallows the fault",
                )
