"""Ordering rules: no order-sensitive use of unordered containers.

Python ``set`` iteration order depends on insertion history and hash
seeding of the stored objects; ``id()`` values depend on allocator
state and can be reused after garbage collection.  Neither may influence
which DRAM command wins arbitration — the engine's bit-identical
serial/parallel guarantee iterates these decisions millions of times.
"""

from __future__ import annotations

import ast

from repro.analysis.rules import (
    ARBITRATION_DOMAINS,
    LintContext,
    Rule,
    annotation_is_dict_of_set,
    annotation_is_set,
    walk_shallow,
)

#: Set methods whose result is again a set.
_SET_PRODUCING_METHODS = frozenset(
    {
        "intersection",
        "union",
        "difference",
        "symmetric_difference",
        "copy",
    }
)

#: Calls that erase iteration-order sensitivity.
_ORDERING_SINKS = frozenset({"sorted", "len", "sum", "min", "max", "any", "all"})


class _ScopeTypes:
    """Name -> {'set', 'dict_of_set'} facts for one function/module scope."""

    def __init__(self, ctx: LintContext) -> None:
        self.ctx = ctx
        self.names: dict[str, str] = {}

    def collect(
        self,
        body: list[ast.stmt],
        func: "ast.FunctionDef | ast.AsyncFunctionDef | None" = None,
    ) -> "_ScopeTypes":
        if func is not None:
            arguments = func.args
            for arg in (
                *arguments.posonlyargs,
                *arguments.args,
                *arguments.kwonlyargs,
            ):
                if arg.annotation is None:
                    continue
                if annotation_is_set(arg.annotation):
                    self.names[arg.arg] = "set"
                elif annotation_is_dict_of_set(arg.annotation):
                    self.names[arg.arg] = "dict_of_set"
        # Two passes so `x = y.get(b)` after `y = <dict-of-set>` resolves
        # regardless of how many assignment hops are involved (bounded).
        for _ in range(3):
            for stmt in body:
                self._visit(stmt)
                for node in walk_shallow(stmt):
                    self._visit(node)
        return self

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if annotation_is_set(node.annotation):
                self.names[node.target.id] = "set"
            elif annotation_is_dict_of_set(node.annotation):
                self.names[node.target.id] = "dict_of_set"
        elif isinstance(node, ast.Assign):
            kind = self.classify(node.value)
            if kind:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.names[target.id] = kind

    def classify(self, node: ast.AST) -> str | None:
        """Best-effort container kind of an expression."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(node, ast.IfExp):
            body = self.classify(node.body)
            orelse = self.classify(node.orelse)
            if body == orelse:
                return body
            return None
        if isinstance(node, ast.Name):
            return self.names.get(node.id)
        if isinstance(node, ast.Attribute):
            if node.attr in self.ctx.index.set_attrs:
                return "set"
            if node.attr in self.ctx.index.dict_of_set_attrs:
                return "dict_of_set"
            return None
        if isinstance(node, ast.Subscript):
            if self.classify(node.value) == "dict_of_set":
                return "set"
            return None
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return "set"
            if isinstance(func, ast.Attribute):
                owner = self.classify(func.value)
                if func.attr == "get" and owner == "dict_of_set":
                    return "set"
                if func.attr in _SET_PRODUCING_METHODS and owner == "set":
                    return "set"
                if func.attr == "values" and owner == "dict_of_set":
                    # iterating dict .values() is insertion-ordered, but
                    # each yielded value is a set; not itself a set.
                    return None
            return None
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
        ):
            left = self.classify(node.left)
            right = self.classify(node.right)
            if left == "set" or right == "set":
                return "set"
        return None


def _scopes(tree: ast.AST):
    """Yield (function-or-None, body) for the module and every function."""
    yield None, tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body


class SetIterationRule(Rule):
    """SIM003: don't iterate bare sets in scheduling/arbitration code.

    ``for x in some_set`` visits elements in hash-table order, which
    depends on insertion history (and, for strings, on ``PYTHONHASHSEED``).
    Any downstream decision — the pick of a candidate, the order of
    floating-point accumulation — then varies between runs.  Iterate
    ``sorted(the_set)`` instead (order-insensitive reductions like
    ``len``/``sum``/``min``/``max`` and membership tests are fine).
    """

    code = "SIM003"
    summary = "iteration over an unordered set in an arbitration path"
    fixit = "iterate sorted(<set>) for a deterministic visit order"
    domains = ARBITRATION_DOMAINS

    def check(self, ctx: LintContext):
        for func, body in _scopes(ctx.tree):
            scope = _ScopeTypes(ctx).collect(body, func)
            for stmt in body:
                # A def at scope level is its own scope from _scopes();
                # walk_shallow only stops at *nested* defs, so descend
                # here and the body would be checked twice.
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                yield from self._check_block(ctx, scope, stmt)

    def _check_block(self, ctx: LintContext, scope: _ScopeTypes, stmt: ast.stmt):
        for node in [stmt, *walk_shallow(stmt)]:
            if isinstance(node, ast.For):
                kind = scope.classify(node.iter)
                if kind == "set":
                    yield self.finding(
                        ctx,
                        node.iter,
                        "for-loop iterates a set; element order is "
                        "nondeterministic",
                    )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                # A set/dict comprehension *result* is unordered anyway;
                # list/generator comprehensions leak the set's order.
                if self._consumed_by_sink(ctx, node):
                    continue
                for generator in node.generators:
                    if scope.classify(generator.iter) == "set":
                        yield self.finding(
                            ctx,
                            generator.iter,
                            "comprehension iterates a set into an "
                            "ordered result",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in ("list", "tuple")
                    and node.args
                    and scope.classify(node.args[0]) == "set"
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"{func.id}() materializes a set in hash order",
                    )
                elif (
                    isinstance(func, ast.Name)
                    and func.id == "next"
                    and node.args
                    and isinstance(node.args[0], ast.Call)
                    and isinstance(node.args[0].func, ast.Name)
                    and node.args[0].func.id == "iter"
                    and node.args[0].args
                    and scope.classify(node.args[0].args[0]) == "set"
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "next(iter(<set>)) picks an arbitrary element",
                    )

    def _consumed_by_sink(self, ctx: LintContext, node: ast.AST) -> bool:
        """True when a comprehension feeds an order-insensitive reducer.

        Detected syntactically: the parent call is found by re-walking
        from the module root (cheap — files are small).
        """
        for parent in ast.walk(ctx.tree):
            if (
                isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in _ORDERING_SINKS
                and any(arg is node for arg in parent.args)
            ):
                return True
        return False


class IdKeyedContainerRule(Rule):
    """SIM004: don't key containers (or decisions) on ``id()``.

    ``id()`` values are allocator addresses: they differ between runs
    and — worse — are *reused* once an object is collected, so an
    ``id()``-keyed membership set can silently confuse two requests.
    Use a stable per-object sequence number instead (see
    ``MemoryRequest.seq``).
    """

    code = "SIM004"
    summary = "id()-keyed state in an arbitration path"
    fixit = "key on a stable sequence number (e.g. MemoryRequest.seq)"
    domains = ARBITRATION_DOMAINS

    def check(self, ctx: LintContext):
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
                and len(node.args) == 1
            ):
                yield self.finding(
                    ctx,
                    node,
                    "id() is allocator-dependent and reusable after GC",
                )
