"""Static lease-protocol rules (SIM107/SIM108).

Both rules check the cluster's HTTP layer against the declarative
model in :mod:`repro.cluster.lease_model` — the same tables the
runtime :class:`~repro.cluster.lease_model.LeaseSanitizer` replays,
so the static and dynamic checkers cannot drift apart.

SIM107 walks every indexed call of the form ``self.leases.<op>`` and
demands that protocol *transitions* (grant/heartbeat/complete/
expire_due/recover) only happen in the coordinator entry point that
declares them in ``HANDLER_OPS``.  SIM108 has two halves: each
coordinator handler may only emit status codes its route declares in
``API_CONTRACT`` (including codes raised by same-module helpers it
calls, e.g. ``_parse_json`` -> 400), and the runner may only *branch*
on declared codes — a comparison against an undeclared literal is
either dead code or a protocol the coordinator never speaks.

Both rules are scoped to the ``cluster`` domain; fixture files under
other paths stay silent by construction.
"""

from __future__ import annotations

import ast

from repro.analysis.index import FileIndex, ProjectIndex
from repro.analysis.rules import LintContext, Rule
from repro.cluster.lease_model import (
    API_CONTRACT,
    HANDLER_OPS,
    HANDLER_ROUTES,
    TRANSITION_OPS,
)

_LEASE_ROUTE_PREFIX = "/v1/leases"


def _normalize_route(path: str) -> str:
    """Collapse id segments: ``/v1/leases/*/heartbeat`` style keys."""
    parts = path.split("/")
    return "/".join("*" if "*" in part else part for part in parts)


class UndeclaredLeaseOpRule(Rule):
    """SIM107: lease transition outside its declared handler."""

    code = "SIM107"
    summary = "lease-table transition outside its declared handler"
    fixit = (
        "route the transition through the handler that declares it in "
        "lease_model.HANDLER_OPS (or extend the table deliberately)"
    )
    domains = ("cluster",)

    def check(self, ctx: LintContext):
        index = ctx.index
        if not isinstance(index, ProjectIndex) or not index.linked:
            return
        file_index = index.files.get(ctx.path)
        if file_index is None:
            return
        for info in file_index.functions.values():
            declared = HANDLER_OPS.get(info.qualname, frozenset())
            for site in info.calls:
                if (
                    len(site.chain) == 3
                    and site.chain[0] == "self"
                    and site.chain[1] == "leases"
                    and site.chain[2] in TRANSITION_OPS
                ):
                    op = site.chain[2]
                    if op not in declared:
                        yield self.finding(
                            ctx,
                            _Anchor(site.line, site.col),
                            f"{info.qualname} performs lease transition "
                            f"{op!r} but HANDLER_OPS declares "
                            f"{sorted(declared) or 'no transitions'}",
                        )


class _Anchor:
    """Minimal node stand-in carrying a location for Rule.finding."""

    def __init__(self, line: int, col: int) -> None:
        self.lineno = line
        self.col_offset = col


class UndeclaredStatusCodeRule(Rule):
    """SIM108: status code outside the route's API contract."""

    code = "SIM108"
    summary = "status code not declared in the lease API contract"
    fixit = (
        "emit/branch only on codes in lease_model.API_CONTRACT for the "
        "route, or extend the contract (and the runner) deliberately"
    )
    domains = ("cluster",)

    def check(self, ctx: LintContext):
        index = ctx.index
        if not isinstance(index, ProjectIndex) or not index.linked:
            return
        file_index = index.files.get(ctx.path)
        if file_index is None:
            return
        yield from self._check_handlers(ctx, file_index)
        yield from self._check_client_branches(ctx, file_index)

    # -- coordinator side ----------------------------------------------------

    def _check_handlers(self, ctx: LintContext, file_index: FileIndex):
        handlers = {
            qualname: route
            for qualname, route in HANDLER_ROUTES.items()
            if qualname in file_index.functions
        }
        if not handlers:
            return
        helper_raises = self._helper_raises(ctx.tree)
        for qualname, route in handlers.items():
            declared = API_CONTRACT[route]
            info = file_index.functions[qualname]
            emitted: "list[tuple[int, int, int]]" = []  # (code, line, col)
            node = self._find_def(ctx.tree, qualname)
            if node is not None:
                emitted.extend(self._emitted_codes(node))
            # one-level closure: helpers this handler calls that raise
            for site in info.calls:
                name = site.chain[-1]
                for code in helper_raises.get(name, ()):
                    emitted.append((code, site.line, site.col))
            for code, line, col in emitted:
                if code not in declared:
                    yield self.finding(
                        ctx,
                        _Anchor(line, col),
                        f"{qualname} emits {code} but "
                        f"{route[0]} {route[1]} declares "
                        f"{sorted(declared)}",
                    )

    def _find_def(self, tree: ast.AST, qualname: str) -> "ast.AST | None":
        class_name, _, method = qualname.partition(".")
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and node.name == class_name:
                for stmt in node.body:
                    if (
                        isinstance(
                            stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                        )
                        and stmt.name == method
                    ):
                        return stmt
        return None

    def _emitted_codes(self, node: ast.AST):
        """(code, line, col) for every status literal the body emits."""
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Raise) and isinstance(
                stmt.exc, ast.Call
            ):
                yield from self._call_code(stmt.exc, ("_HttpError",))
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                value = stmt.value
                if isinstance(value, ast.Call):
                    yield from self._call_code(value, ("_json_response",))
                elif isinstance(value, ast.Tuple) and value.elts:
                    first = value.elts[0]
                    if isinstance(first, ast.Constant) and isinstance(
                        first.value, int
                    ):
                        yield (
                            first.value, value.lineno, value.col_offset
                        )

    @staticmethod
    def _call_code(call: ast.Call, names: "tuple[str, ...]"):
        func = call.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else ""
        )
        if name in names and call.args:
            first = call.args[0]
            if isinstance(first, ast.Constant) and isinstance(
                first.value, int
            ):
                yield first.value, call.lineno, call.col_offset

    def _helper_raises(self, tree: ast.AST) -> "dict[str, list[int]]":
        """Module-level helpers -> status codes they raise."""
        raises: "dict[str, list[int]]" = {}
        for node in ast.iter_child_nodes(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            codes = [
                code
                for stmt in ast.walk(node)
                if isinstance(stmt, ast.Raise)
                and isinstance(stmt.exc, ast.Call)
                for code, _, _ in self._call_code(stmt.exc, ("_HttpError",))
            ]
            if codes:
                raises[node.name] = codes
        return raises

    # -- runner side ---------------------------------------------------------

    def _check_client_branches(
        self, ctx: LintContext, file_index: FileIndex
    ):
        for info in file_index.functions.values():
            if info.qualname in HANDLER_ROUTES:
                continue  # coordinator handlers are checked above
            routes = []
            for site in info.calls:
                if site.chain[-1] not in ("request", "_request_once"):
                    continue
                method, path = site.str_args
                if not method or not path:
                    continue
                if not path.startswith(_LEASE_ROUTE_PREFIX):
                    continue
                route = (method, _normalize_route(path))
                if route in API_CONTRACT:
                    routes.append(route)
            if not routes:
                continue
            declared: "set[int]" = set()
            for route in routes:
                declared |= API_CONTRACT[route]
            for compare in info.compares:
                if compare.name != "status":
                    continue
                for value in compare.values:
                    if 100 <= value <= 599 and value not in declared:
                        yield self.finding(
                            ctx,
                            _Anchor(compare.line, 0),
                            f"{info.qualname} branches on status "
                            f"{value} which no lease route it calls "
                            f"declares ({sorted(declared)})",
                        )
