"""Concurrency rules (SIM101–SIM106).

PRs 4–7 layered an asyncio HTTP service, a thread-pooled worker
bridge, a multiprocessing engine, and a threaded cluster runner on
top of the simulator.  The bugs those layers can host — a blocking
call stalling the event loop, a worker thread scribbling on shared
module state, a fork while sibling threads hold locks — are invisible
to per-file reasoning, so every rule here consumes the linked
:class:`repro.analysis.index.ProjectIndex`.

========  ==============================================================
SIM101    blocking call reachable from a coroutine (event-loop stall)
SIM102    unlocked mutation of shared module-level state
SIM103    ``await`` while holding a synchronous lock
SIM104    process fork after a thread start in the same function
SIM105    thread/process started but never joined and never escaping
SIM106    ``ContextVar.set`` inside a thread-pool entry point
========  ==============================================================

Known approximations (deliberate, to keep the tree's legitimate
patterns clean): "lock-ish" is name-based; blocking file I/O is only
flagged lexically inside ``async def`` (small crash-safety writes on
the loop are tolerated); SIM105 analyses the assignment form
(``t = Thread(...)``) and exempts daemon threads; SIM106 checks
direct thread-entry functions, not their whole call closure.
"""

from __future__ import annotations

from repro.analysis.index import HARD_KINDS, FileIndex, ProjectIndex
from repro.analysis.rules import ALL_DOMAINS, LintContext, Rule

_KIND_LABEL = {
    "sleep": "time.sleep",
    "subprocess": "a subprocess wait",
    "network": "synchronous network I/O",
    "shutdown": "a blocking executor shutdown",
    "file": "synchronous file I/O",
}


def _file_of(ctx: LintContext) -> "FileIndex | None":
    index = ctx.index
    if not isinstance(index, ProjectIndex) or not index.linked:
        return None
    return index.files.get(ctx.path)


class _IndexedRule(Rule):
    """Base for rules that need the linked project index."""

    domains = ALL_DOMAINS

    def run(self, ctx: LintContext):
        if not ctx.applies(self.domains):
            return []
        file_index = _file_of(ctx)
        if file_index is None:
            return []
        return list(self.check_indexed(ctx, file_index))

    def check_indexed(self, ctx: LintContext, file_index: FileIndex):
        raise NotImplementedError  # pragma: no cover - interface

    def at(self, ctx: LintContext, line: int, col: int, message: str):
        from repro.analysis.rules import Finding

        return Finding(
            path=ctx.path, line=line, col=col, code=self.code,
            message=message, fixit=self.fixit,
        )


class BlockingInCoroutineRule(_IndexedRule):
    """SIM101: a coroutine calls something that blocks the event loop.

    Hard blockers (``time.sleep``, subprocess waits, synchronous
    network I/O, ``Executor.shutdown(wait=True)``) are flagged both
    lexically and transitively through the sync call graph; file I/O
    is flagged only when it appears directly in the ``async def``.
    """

    code = "SIM101"
    summary = "blocking call inside a coroutine stalls the event loop"
    fixit = (
        "await an async equivalent, or push the call into the worker "
        "pool (run_in_executor / to_thread)"
    )

    def check_indexed(self, ctx: LintContext, file_index: FileIndex):
        index: ProjectIndex = ctx.index
        for info in file_index.functions.values():
            if not info.is_async:
                continue
            for site in info.calls:
                if site.awaited:
                    continue
                kind = index.classify_blocking(file_index, site)
                if kind is not None:
                    label = _KIND_LABEL.get(kind, kind)
                    yield self.at(
                        ctx, site.line, site.col,
                        f"coroutine {info.qualname} performs {label} "
                        f"({'.'.join(site.chain)})",
                    )
                    continue
                resolved = index.resolve_call(
                    file_index, info.qualname, site
                )
                if resolved is None or resolved not in index.blocking:
                    continue
                if resolved in index.thread_targets:
                    continue  # handed to the pool, not called on the loop
                callee = index.functions.get(resolved)
                if callee is not None and callee.is_async:
                    continue
                cause_kind, cause = index.blocking[resolved]
                if cause_kind not in HARD_KINDS:
                    continue
                yield self.at(
                    ctx, site.line, site.col,
                    f"coroutine {info.qualname} calls "
                    f"{'.'.join(site.chain)} which blocks on "
                    f"{_KIND_LABEL.get(cause_kind, cause_kind)} "
                    f"(via {cause})",
                )


class SharedStateMutationRule(_IndexedRule):
    """SIM102: module-level shared state mutated without its lock.

    Fires when a module global is (a) mutated under a lock somewhere
    but bare elsewhere — the lock is load-bearing, the bare site is a
    race — or (b) mutated bare inside a function that the index proves
    runs on a worker thread.
    """

    code = "SIM102"
    summary = "unlocked mutation of shared module-level state"
    fixit = (
        "guard every mutation of the global with the same lock "
        "(with _LOCK: ...), or make the state thread-local"
    )

    def check_indexed(self, ctx: LintContext, file_index: FileIndex):
        index: ProjectIndex = ctx.index
        summary = index.mutation_summary()
        for info in file_index.functions.values():
            fid = f"{file_index.module}.{info.qualname}"
            threaded = (
                fid in index.thread_reachable or fid in index.thread_targets
            )
            for mutation in info.mutations:
                if mutation.locked:
                    continue
                if mutation.name not in file_index.module_globals:
                    continue
                key = (file_index.module, mutation.name)
                entry = summary.get(key, {"locked": [], "unlocked": []})
                if entry["locked"]:
                    yield self.at(
                        ctx, mutation.line, mutation.col,
                        f"global {mutation.name} is mutated under a lock "
                        f"elsewhere but bare here ({info.qualname})",
                    )
                elif threaded:
                    yield self.at(
                        ctx, mutation.line, mutation.col,
                        f"global {mutation.name} mutated from "
                        f"thread-reachable {info.qualname} without a lock",
                    )


class AwaitUnderLockRule(_IndexedRule):
    """SIM103: ``await`` while holding a synchronous lock.

    A held ``threading.Lock`` across a suspension point blocks every
    other task (and thread) that wants the lock for the full latency
    of the awaited operation — and deadlocks if the awaited path needs
    the same lock.
    """

    code = "SIM103"
    summary = "await while holding a synchronous lock"
    fixit = (
        "release the lock before awaiting (copy what you need out of "
        "the critical section), or use asyncio.Lock"
    )

    def check_indexed(self, ctx: LintContext, file_index: FileIndex):
        for info in file_index.functions.values():
            for line, col, under_lock in info.await_lines:
                if under_lock:
                    yield self.at(
                        ctx, line, col,
                        f"{info.qualname} awaits while holding a "
                        "synchronous lock",
                    )


class ForkAfterThreadRule(_IndexedRule):
    """SIM104: process started after threads in the same function.

    ``fork()`` clones only the calling thread; locks held by the other
    threads stay locked forever in the child (CPython's logging and
    queue internals are classic victims).
    """

    code = "SIM104"
    summary = "process fork after a thread start in the same function"
    fixit = (
        "start worker processes before any threads, or use the "
        "'spawn' start method"
    )

    def check_indexed(self, ctx: LintContext, file_index: FileIndex):
        index: ProjectIndex = ctx.index
        for info in file_index.functions.values():
            thread_lines = [
                start.line
                for start in info.thread_starts
                if start.kind == "thread" and start.started
            ]
            if not thread_lines:
                continue
            first_thread = min(thread_lines)
            for start in info.thread_starts:
                if (
                    start.kind == "process"
                    and start.started
                    and start.line > first_thread
                ):
                    yield self.at(
                        ctx, start.line, start.col,
                        f"{info.qualname} starts a process after "
                        "starting threads (fork clones held locks)",
                    )
            for site in info.calls:
                if (
                    index.dotted_of(file_index, site.chain) == "os.fork"
                    and site.line > first_thread
                ):
                    yield self.at(
                        ctx, site.line, site.col,
                        f"{info.qualname} forks after starting threads",
                    )


class UnjoinedThreadRule(_IndexedRule):
    """SIM105: thread/process started, never joined, never escaping.

    A start with no join in the same function and no escape (returned,
    stored, passed along) cannot be drained on shutdown; non-daemon
    ones also block interpreter exit.  Daemon threads are exempt —
    fire-and-forget is their contract.
    """

    code = "SIM105"
    summary = "thread/process started but never joined on any drain path"
    fixit = (
        "join it before returning, hand it to the caller, or mark it "
        "daemon=True if fire-and-forget is intended"
    )

    def check_indexed(self, ctx: LintContext, file_index: FileIndex):
        for info in file_index.functions.values():
            for start in info.thread_starts:
                if not start.started or start.joined or start.escapes:
                    continue
                if start.daemon is True:
                    continue
                yield self.at(
                    ctx, start.line, start.col,
                    f"{info.qualname} starts a {start.kind} "
                    f"({start.var or 'anonymous'}) that is neither "
                    "joined nor handed off",
                )


class CtxvarThreadWriteRule(_IndexedRule):
    """SIM106: ``ContextVar.set`` inside a thread-pool entry point.

    Each pooled thread runs in its own (reused!) context: the write
    never propagates back to the submitter and leaks into whatever
    task the pool schedules on that thread next.
    """

    code = "SIM106"
    summary = "ContextVar written from a worker-thread entry point"
    fixit = (
        "pass the value explicitly (argument or contextvars.copy_"
        "context().run), or set the var before submitting to the pool"
    )

    def check_indexed(self, ctx: LintContext, file_index: FileIndex):
        index: ProjectIndex = ctx.index
        for info in file_index.functions.values():
            fid = f"{file_index.module}.{info.qualname}"
            if fid not in index.thread_targets:
                continue
            for site in info.calls:
                if site.chain[-1] != "set" or len(site.chain) < 2:
                    continue
                receiver_type = ""
                if len(site.chain) == 2:
                    receiver_type = file_index.module_types.get(
                        site.chain[0], ""
                    )
                elif site.chain[0] == "self" and "." in info.qualname:
                    owner = file_index.classes.get(
                        info.qualname.split(".")[0]
                    )
                    if owner is not None:
                        receiver_type = owner.attr_types.get(
                            site.chain[1], ""
                        )
                if receiver_type.endswith("ContextVar"):
                    yield self.at(
                        ctx, site.line, site.col,
                        f"thread entry point {info.qualname} sets "
                        f"ContextVar {site.chain[-2]}",
                    )
