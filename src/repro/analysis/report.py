"""EXPERIMENTS.md generation: paper-vs-measured for every experiment.

``generate_report`` consumes the structured results produced by
``stfm-sim run all --json results.json`` and renders a markdown report
with, per figure/table: the paper's reference numbers, the measured
numbers, and the shape checks of :mod:`repro.analysis.compare`.
"""

from __future__ import annotations

from repro.analysis import paper_data
from repro.analysis.compare import (
    ordering_agreement,
    spread,
    stfm_is_best,
    trend_direction,
)

_POLICY_KEYS = {
    "FR-FCFS": "fr-fcfs",
    "FCFS": "fcfs",
    "FR-FCFS+Cap": "fr-fcfs+cap",
    "NFQ": "nfq",
    "STFM": "stfm",
}

_CASE_STUDIES = {
    "fig6": "Case study I: memory-intensive 4-core workload",
    "fig7": "Case study II: mixed 4-core workload",
    "fig8": "Case study III: non-intensive 4-core workload",
    "fig10": "Non-intensive 8-core workload",
    "fig13": "Desktop 4-core workload",
}

_SWEEPS = {
    "fig9": "4-core sweep (GMEAN unfairness)",
    "fig11": "8-core sweep (GMEAN unfairness)",
    "fig12": "16-core workloads (GMEAN unfairness)",
}


def _by_id(results: list[dict]) -> dict[str, dict]:
    return {r["experiment_id"]: r for r in results}


def _fmt(value) -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _case_study_unfairness(result: dict) -> dict[str, float]:
    return {row["policy"]: row["unfairness"] for row in result["rows"]}


def _sweep_gmean_unfairness(result: dict) -> dict[str, float]:
    gmean_row = next(
        row for row in result["rows"] if row.get("workload") == "GMEAN"
    )
    measured = {}
    for display, key in _POLICY_KEYS.items():
        value = gmean_row.get(f"unfairness:{key}")
        if value is not None:
            measured[display] = value
    return measured


def _unfairness_section(
    experiment_id: str, title: str, measured: dict[str, float]
) -> list[str]:
    paper = paper_data.PAPER_UNFAIRNESS[experiment_id]
    lines = [f"### {experiment_id}: {title}", ""]
    lines.append("| scheduler | paper unfairness | measured |")
    lines.append("|---|---|---|")
    for policy in paper_data.POLICY_ORDER:
        lines.append(
            f"| {policy} | {_fmt(paper.get(policy))} | "
            f"{_fmt(measured.get(policy))} |"
        )
    check = ordering_agreement(paper, measured)
    verdicts = [
        f"STFM fairest: **{'yes' if stfm_is_best(measured) else 'no'}**",
        f"pairwise ordering agreement with the paper: **{check}**",
        (
            f"unfairness spread (worst/best scheduler): paper "
            f"{_fmt(spread(paper))}, measured {_fmt(spread(measured))}"
        ),
    ]
    if check.disagreements:
        pairs = ", ".join(f"{a} vs {b}" for a, b in check.disagreements)
        verdicts.append(f"disagreeing pairs: {pairs}")
    lines.append("")
    lines.extend(f"- {v}" for v in verdicts)
    lines.append("")
    return lines


def _fig1_section(result: dict) -> list[str]:
    lines = ["### fig1: FR-FCFS slowdowns (motivation)", ""]
    for cores in (4, 8):
        rows = [r for r in result["rows"] if r["cores"] == cores]
        slowdowns = {r["benchmark"]: r["memory_slowdown"] for r in rows}
        most = max(slowdowns, key=slowdowns.get)
        least = min(slowdowns, key=slowdowns.get)
        paper = paper_data.PAPER_FIG1[cores]
        lines.append(
            f"- {cores}-core: paper {paper['most_slowed'][0]} "
            f"{paper['most_slowed'][1]:.2f}x vs {paper['least_slowed'][0]} "
            f"{paper['least_slowed'][1]:.2f}x; measured {most} "
            f"{slowdowns[most]:.2f}x vs {least} {slowdowns[least]:.2f}x "
            f"(libquantum least-slowed: "
            f"**{'yes' if least == 'libquantum' else 'no'}**)"
        )
    lines.append("")
    return lines


def _fig5_section(result: dict) -> list[str]:
    summary = next(r for r in result["rows"] if r.get("partner") == "GMEAN")
    paper = paper_data.PAPER_FIG5
    lines = ["### fig5: 2-core mcf pairs, FR-FCFS vs STFM", ""]
    lines.append("| metric | paper | measured |")
    lines.append("|---|---|---|")
    lines.append(
        f"| GMEAN unfairness FR-FCFS | {paper['frfcfs_gmean_unfairness']:.2f} "
        f"| {summary['frfcfs_unfairness']:.2f} |"
    )
    lines.append(
        f"| GMEAN unfairness STFM | {paper['stfm_gmean_unfairness']:.2f} "
        f"| {summary['stfm_unfairness']:.2f} |"
    )
    lines.append(
        f"| max STFM unfairness | {paper['stfm_max_unfairness']:.2f} "
        f"| {summary['stfm_max_unfairness']:.2f} |"
    )
    lines.append(
        f"| weighted-speedup gain | x{paper['weighted_speedup_gain']:.3f} "
        f"| x{summary['ws_gain']:.3f} |"
    )
    improved = summary["stfm_unfairness"] < summary["frfcfs_unfairness"]
    lines.append("")
    lines.append(
        f"- STFM reduces pairwise unfairness: **{'yes' if improved else 'no'}**"
    )
    lines.append("")
    return lines


def _fig14_section(result: dict) -> list[str]:
    lines = ["### fig14: thread weights (equal-priority unfairness)", ""]
    lines.append("| weights | scheme | paper | measured |")
    lines.append("|---|---|---|---|")
    for row in result["rows"]:
        weights = tuple(int(w) for w in row["weights"])
        scheme = row["scheme"]
        paper_value = paper_data.PAPER_FIG14.get(weights, {}).get(scheme)
        lines.append(
            f"| {'-'.join(str(w) for w in weights)} | {scheme} | "
            f"{_fmt(paper_value)} | {row['equal_priority_unfairness']:.2f} |"
        )
    by_weights: dict[tuple, dict[str, float]] = {}
    for row in result["rows"]:
        weights = tuple(int(w) for w in row["weights"])
        by_weights.setdefault(weights, {})[row["scheme"]] = row[
            "equal_priority_unfairness"
        ]
    agreements = all(
        values.get("STFM-weights", 99) < values.get("NFQ-shares", 0)
        for values in by_weights.values()
        if "STFM-weights" in values and "NFQ-shares" in values
    )
    lines.append("")
    lines.append(
        "- STFM keeps equal-weight threads fairer than NFQ shares: "
        f"**{'yes' if agreements else 'no'}**"
    )
    lines.append("")
    return lines


def _fig15_section(result: dict) -> list[str]:
    rows = [r for r in result["rows"] if r.get("alpha") is not None]
    reference = next(r for r in result["rows"] if r.get("alpha") is None)
    lines = ["### fig15: alpha sweep", ""]
    lines.append("| alpha | unfairness | weighted speedup |")
    lines.append("|---|---|---|")
    for row in rows:
        lines.append(
            f"| {row['alpha']} | {row['unfairness']:.2f} | "
            f"{row['weighted_speedup']:.2f} |"
        )
    lines.append(
        f"| FR-FCFS | {reference['unfairness']:.2f} | "
        f"{reference['weighted_speedup']:.2f} |"
    )
    unfairness_trend = trend_direction([r["unfairness"] for r in rows])
    big_alpha = rows[-1]
    converges = (
        abs(big_alpha["unfairness"] - reference["unfairness"])
        <= 0.35 * reference["unfairness"]
    )
    lines.append("")
    lines.append(
        f"- unfairness vs alpha: **{unfairness_trend}** (paper: increasing)"
    )
    lines.append(
        f"- alpha=20 converges toward FR-FCFS: "
        f"**{'yes' if converges else 'no'}**"
    )
    lines.append("")
    return lines


def _table5_section(result: dict) -> list[str]:
    lines = ["### table5: sensitivity to banks and row-buffer size", ""]
    lines.append(
        "| config | paper FR-FCFS/STFM unfairness | measured FR-FCFS/STFM |"
    )
    lines.append("|---|---|---|")
    banks_frfcfs, rb_frfcfs, stfm_all = [], [], []
    for row in result["rows"]:
        key = (row["axis"], row["value"])
        paper = paper_data.PAPER_TABLE5.get(key, {})
        label = (
            f"{row['value']} banks"
            if row["axis"] == "banks"
            else f"{row['value'] // 1024} KB row"
        )
        lines.append(
            f"| {label} | {_fmt(paper.get('frfcfs_unfairness'))} / "
            f"{_fmt(paper.get('stfm_unfairness'))} | "
            f"{row['frfcfs_unfairness']:.2f} / {row['stfm_unfairness']:.2f} |"
        )
        stfm_all.append(row["stfm_unfairness"])
        if row["axis"] == "banks":
            banks_frfcfs.append(row["frfcfs_unfairness"])
        else:
            rb_frfcfs.append(row["frfcfs_unfairness"])
    lines.append("")
    lines.append(
        f"- FR-FCFS unfairness vs bank count: "
        f"**{trend_direction(banks_frfcfs)}** (paper: decreasing)"
    )
    lines.append(
        f"- FR-FCFS unfairness vs row-buffer size: "
        f"**{trend_direction(rb_frfcfs, tolerance=0.05)}** (paper: increasing)"
    )
    stfm_flat = max(stfm_all) / min(stfm_all) < 1.15
    lines.append(
        f"- STFM unfairness flat across all six configs: "
        f"**{'yes' if stfm_flat else 'no'}** "
        f"(range {min(stfm_all):.2f}-{max(stfm_all):.2f}; paper 1.37-1.41)"
    )
    lines.append("")
    return lines


def _fig3_section(result: dict) -> list[str]:
    by_policy = {row["policy"]: row for row in result["rows"]}
    lines = ["### fig3 (qualitative): NFQ idleness problem", ""]
    lines.append("| policy | continuous | mean bursty | unfairness |")
    lines.append("|---|---|---|---|")
    for policy, row in by_policy.items():
        lines.append(
            f"| {policy} | {row['continuous_slowdown']:.2f} | "
            f"{row['mean_bursty_slowdown']:.2f} | {row['unfairness']:.2f} |"
        )
    nfq_starves = (
        by_policy["NFQ"]["continuous_slowdown"]
        > by_policy["NFQ"]["mean_bursty_slowdown"]
    )
    stfm_balanced = (
        by_policy["STFM"]["unfairness"] < by_policy["NFQ"]["unfairness"]
    )
    lines.append("")
    lines.append(
        f"- NFQ penalizes the continuous thread: "
        f"**{'yes' if nfq_starves else 'no'}** (the idleness problem)"
    )
    lines.append(
        f"- STFM fairer than NFQ here: **{'yes' if stfm_balanced else 'no'}**"
    )
    lines.append("")
    return lines


def _attack_section(result: dict) -> list[str]:
    by_policy = {row["policy"]: row for row in result["rows"]}
    lines = ["### attack (extension): memory performance attack", ""]
    lines.append("| policy | victim slowdown under attack | amplification |")
    lines.append("|---|---|---|")
    for policy, row in by_policy.items():
        lines.append(
            f"| {policy} | {row['victim_slowdown_attacked']:.2f} | "
            f"x{row['attack_amplification']:.2f} |"
        )
    contained = (
        by_policy["STFM"]["attack_amplification"]
        < 0.5 * by_policy["FR-FCFS"]["attack_amplification"]
    )
    lines.append("")
    lines.append(
        f"- STFM contains the attack (amplification less than half of "
        f"FR-FCFS's): **{'yes' if contained else 'no'}**"
    )
    lines.append("")
    return lines


def _generic_section(result: dict) -> list[str]:
    lines = [f"### {result['experiment_id']}: {result['title']}", ""]
    if result.get("paper_reference"):
        lines.append(f"_{result['paper_reference']}_")
        lines.append("")
    rows = result["rows"]
    if rows:
        keys = [k for k in rows[0] if not isinstance(rows[0][k], (list, dict))]
        lines.append("| " + " | ".join(keys) + " |")
        lines.append("|" + "---|" * len(keys))
        for row in rows:
            lines.append(
                "| " + " | ".join(_fmt(row.get(k)) for k in keys) + " |"
            )
    lines.append("")
    return lines


def generate_report(results: list[dict], preamble: str = "") -> str:
    """Render the full paper-vs-measured markdown report."""
    by_id = _by_id(results)
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Generated by `stfm-sim report` from a "
        "`stfm-sim run all --json` results file.",
        "",
    ]
    if preamble:
        lines += [preamble, ""]
    if "fig1" in by_id:
        lines += _fig1_section(by_id["fig1"])
    if "fig3" in by_id:
        lines += _fig3_section(by_id["fig3"])
    if "fig5" in by_id:
        lines += _fig5_section(by_id["fig5"])
    for experiment_id, title in _CASE_STUDIES.items():
        if experiment_id in by_id:
            measured = _case_study_unfairness(by_id[experiment_id])
            lines += _unfairness_section(experiment_id, title, measured)
    for experiment_id, title in _SWEEPS.items():
        if experiment_id in by_id:
            measured = _sweep_gmean_unfairness(by_id[experiment_id])
            lines += _unfairness_section(experiment_id, title, measured)
    if "fig14" in by_id:
        lines += _fig14_section(by_id["fig14"])
    if "fig15" in by_id:
        lines += _fig15_section(by_id["fig15"])
    if "table5" in by_id:
        lines += _table5_section(by_id["table5"])
    if "attack" in by_id:
        lines += _attack_section(by_id["attack"])
    handled = (
        {"fig1", "fig3", "fig5", "fig14", "fig15", "table5", "attack"}
        | set(_CASE_STUDIES)
        | set(_SWEEPS)
    )
    remaining = [r for r in results if r["experiment_id"] not in handled]
    if remaining:
        lines.append("## Calibration, ablations and extensions")
        lines.append("")
        for result in remaining:
            lines += _generic_section(result)
    return "\n".join(lines) + "\n"
