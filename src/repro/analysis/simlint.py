"""``simlint`` — static analysis for the simulator's correctness invariants.

The paper's central quantity (``S = T_shared / T_alone``) is only
meaningful while the simulator stays *deterministic* (identical inputs
produce identical schedules — the experiment engine's bit-identical
serial/parallel guarantee and its content-addressed result store both
depend on it) and *protocol-correct* (the DRAM model honors DDR2
timing; the runtime half of that check lives in
:mod:`repro.analysis.protocol`).  ``simlint`` walks ``src/repro`` as
ASTs and mechanically enforces the static half:

========  ==============================================================
SIM001    no wall-clock reads in the simulator core
SIM002    no unseeded random number generators
SIM003    no iteration over bare sets in scheduling/arbitration paths
SIM004    no ``id()``-keyed state influencing decisions
SIM005    no exact float equality on timing/slowdown quantities
SIM006    no mutable default arguments
SIM007    no broad ``except Exception: pass`` fault-swallowing
========  ==============================================================

Findings can be suppressed per line with a trailing
``# simlint: disable=SIM003`` (or ``# simlint: disable`` for all
rules), and per rule via the ``[simlint]`` block of ``setup.cfg``::

    [simlint]
    # enable = SIM001, SIM003     # run only these
    disable = SIM005              # never run these

Run it as ``stfm-sim lint [paths...]`` (exit status 1 when findings
remain) or ``python -m repro.analysis.simlint``; the tier-1 test suite
runs it over the tree (``tests/test_simlint_clean.py``), so a PR that
introduces a violation fails CI.
"""

from __future__ import annotations

import argparse
import ast
import configparser
import os
import re
import sys
from dataclasses import dataclass, field

from repro.analysis.rules import (
    Finding,
    LintContext,
    ProjectIndex,
    Rule,
    all_rules,
    index_file,
)

_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*disable(?:=(?P<codes>[A-Z0-9,\s]+))?"
)


@dataclass
class LintConfig:
    """Which rules run (CLI flags override the ``[simlint]`` block)."""

    enable: frozenset[str] | None = None  # None = all registered rules
    disable: frozenset[str] = frozenset()

    def selects(self, code: str) -> bool:
        if code in self.disable:
            return False
        return self.enable is None or code in self.enable


def _parse_codes(raw: str) -> frozenset[str]:
    return frozenset(
        code.strip().upper()
        for code in re.split(r"[,\s]+", raw)
        if code.strip()
    )


def load_config(config_path: "str | None" = None) -> LintConfig:
    """Read the ``[simlint]`` block of ``setup.cfg`` (if present).

    Args:
        config_path: Explicit path to an ini file; by default
            ``setup.cfg`` is searched in the current directory and then
            upward from this package (the repository checkout).
    """
    candidates = []
    if config_path:
        candidates.append(config_path)
    else:
        candidates.append(os.path.join(os.getcwd(), "setup.cfg"))
        here = os.path.dirname(os.path.abspath(__file__))
        for _ in range(5):
            here = os.path.dirname(here)
            candidates.append(os.path.join(here, "setup.cfg"))
    for candidate in candidates:
        if not os.path.isfile(candidate):
            continue
        parser = configparser.ConfigParser()
        parser.read(candidate)
        if not parser.has_section("simlint"):
            continue
        section = parser["simlint"]
        enable = section.get("enable", "").strip()
        disable = section.get("disable", "").strip()
        return LintConfig(
            enable=_parse_codes(enable) if enable else None,
            disable=_parse_codes(disable) if disable else frozenset(),
        )
    return LintConfig()


# -- source collection -------------------------------------------------------


def _domain_of(path: str) -> str:
    """First package segment under ``repro/`` ('' when not under repro)."""
    parts = path.replace(os.sep, "/").split("/")
    for i, part in enumerate(parts):
        if part == "repro" and i + 1 < len(parts):
            remainder = parts[i + 1 :]
            if len(remainder) == 1:  # repro/cli.py, repro/__init__.py
                return ""
            return remainder[0]
    return ""


def collect_files(paths: list[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs.sort()
                dirs[:] = [d for d in dirs if d != "__pycache__"]
                for name in sorted(names):
                    if name.endswith(".py"):
                        files.append(os.path.join(root, name))
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(dict.fromkeys(files))


@dataclass
class _Source:
    path: str
    source: str
    tree: ast.AST = field(init=False)
    error: "Finding | None" = field(init=False, default=None)

    def __post_init__(self) -> None:
        try:
            self.tree = ast.parse(self.source, filename=self.path)
        except SyntaxError as exc:
            self.tree = ast.Module(body=[], type_ignores=[])
            self.error = Finding(
                path=self.path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                code="SIM000",
                message=f"syntax error: {exc.msg}",
                fixit="fix the syntax error so simlint can parse the file",
            )


def _line_suppressions(lines: list[str]) -> dict[int, frozenset[str] | None]:
    """Per-line suppressions: line -> codes (None = suppress everything)."""
    suppressed: dict[int, frozenset[str] | None] = {}
    for number, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        codes = match.group("codes")
        suppressed[number] = _parse_codes(codes) if codes else None
    return suppressed


def lint_sources(
    items: "list[tuple[str, str]]",
    config: "LintConfig | None" = None,
    rules: "list[Rule] | None" = None,
) -> list[Finding]:
    """Lint (path, source) pairs; the unit the tests drive directly.

    A shared :class:`ProjectIndex` is built from *all* items first, so
    set-typed attributes declared in one file are recognized when
    iterated in another (e.g. ``ScanInfo.waiting_threads_by_bank``,
    declared in ``controller.py``, iterated in ``core/estimator.py``).
    """
    config = config or LintConfig()
    rules = rules if rules is not None else all_rules()
    active = [rule for rule in rules if config.selects(rule.code)]

    sources = [_Source(path, text) for path, text in items]
    index = ProjectIndex()
    for source in sources:
        index_file(source.tree, index)

    findings: list[Finding] = []
    for source in sources:
        if source.error is not None:
            findings.append(source.error)
            continue
        lines = source.source.splitlines()
        ctx = LintContext(
            path=source.path,
            domain=_domain_of(source.path),
            source=source.source,
            lines=lines,
            tree=source.tree,
            index=index,
        )
        suppressed = _line_suppressions(lines)
        for rule in active:
            for finding in rule.run(ctx):
                codes = suppressed.get(finding.line, frozenset())
                if codes is None or finding.code in codes:
                    continue
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def run_simlint(
    paths: list[str], config: "LintConfig | None" = None
) -> list[Finding]:
    """Lint files/directories on disk and return all findings."""
    files = collect_files(paths)
    items = []
    for path in files:
        with open(path, encoding="utf-8") as handle:
            items.append((path, handle.read()))
    return lint_sources(items, config)


# -- CLI ---------------------------------------------------------------------


def _default_lint_path() -> str:
    """``src/repro`` relative to a checkout, else this installed package."""
    candidate = os.path.join(os.getcwd(), "src", "repro")
    if os.path.isdir(candidate):
        return candidate
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="simlint",
        description="Static correctness analysis for the STFM simulator "
        "(determinism and numeric-hygiene invariants).",
    )
    parser.add_argument(
        "paths", nargs="*", help="files/directories (default: src/repro)"
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="run only these comma-separated rule codes",
    )
    parser.add_argument(
        "--ignore", metavar="CODES",
        help="additionally disable these comma-separated rule codes",
    )
    parser.add_argument(
        "--config", metavar="PATH",
        help="ini file with a [simlint] block (default: setup.cfg)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="describe rules and exit"
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.summary}")
            print(f"        fix: {rule.fixit}")
        return 0
    config = load_config(args.config)
    if args.select:
        config.enable = _parse_codes(args.select)
    if args.ignore:
        config.disable = config.disable | _parse_codes(args.ignore)
    paths = args.paths or [_default_lint_path()]
    findings = run_simlint(paths, config)
    for finding in findings:
        print(finding.format())
    if findings:
        print(f"{len(findings)} finding(s)")
        return 1
    print("simlint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
