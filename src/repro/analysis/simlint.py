"""``simlint`` — static analysis for the simulator's correctness invariants.

The paper's central quantity (``S = T_shared / T_alone``) is only
meaningful while the simulator stays *deterministic* (identical inputs
produce identical schedules — the experiment engine's bit-identical
serial/parallel guarantee and its content-addressed result store both
depend on it) and *protocol-correct* (the DRAM model honors DDR2
timing; the runtime half of that check lives in
:mod:`repro.analysis.protocol`).  ``simlint`` walks ``src/repro`` as
ASTs and mechanically enforces the static half:

========  ==============================================================
SIM001    no wall-clock reads in the simulator core
SIM002    no unseeded random number generators
SIM003    no iteration over bare sets in scheduling/arbitration paths
SIM004    no ``id()``-keyed state influencing decisions
SIM005    no exact float equality on timing/slowdown quantities
SIM006    no mutable default arguments
SIM007    no broad ``except Exception: pass`` fault-swallowing
SIM101    no blocking calls reachable from a coroutine
SIM102    no unlocked mutation of shared module-level state
SIM103    no ``await`` while holding a synchronous lock
SIM104    no process fork after a thread start
SIM105    no threads/processes started but never joined/handed off
SIM106    no ``ContextVar`` writes from thread-pool entry points
SIM107    lease transitions only in their declared handlers
SIM108    lease routes only emit/branch on contracted status codes
========  ==============================================================

The per-file rules (SIM001–SIM007) see one AST at a time; the
concurrency and protocol families consume the project-wide index of
:mod:`repro.analysis.index`, built by the parse → index → link →
rules pipeline in :mod:`repro.analysis.passes`.  The CLI keeps an
incremental cache under ``.simlint-cache/`` (``--no-cache`` bypasses
it) and can emit ``--format json`` or ``--format sarif`` for machine
consumers; CI maps the default text format onto inline annotations
via ``.github/simlint-matcher.json``.

Findings can be suppressed per line with a trailing
``# simlint: disable=SIM003`` (or ``# simlint: disable`` for all
rules), and per rule via the ``[simlint]`` block of ``setup.cfg``::

    [simlint]
    # enable = SIM001, SIM003     # run only these
    disable = SIM005              # never run these

Run it as ``stfm-sim lint [paths...]`` (exit status 1 when findings
remain) or ``python -m repro.analysis.simlint``; the tier-1 test suite
runs it over the tree (``tests/test_simlint_clean.py``), so a PR that
introduces a violation fails CI.
"""

from __future__ import annotations

import argparse
import ast
import configparser
import json
import os
import re
import sys
from dataclasses import dataclass, field

from repro.analysis.cache import DEFAULT_CACHE_DIR, LintCache
from repro.analysis.passes import PassResult, run_passes
from repro.analysis.rules import (
    Finding,
    LintContext,
    ProjectIndex,
    Rule,
    all_rules,
    index_file,
)

__all__ = [
    "LintConfig", "lint_sources", "load_config", "main", "run_simlint",
]

_ = (LintContext, ProjectIndex, index_file)  # re-exported for rule tests

_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*disable(?:=(?P<codes>[A-Z0-9,\s]+))?"
)


@dataclass
class LintConfig:
    """Which rules run (CLI flags override the ``[simlint]`` block)."""

    enable: frozenset[str] | None = None  # None = all registered rules
    disable: frozenset[str] = frozenset()

    def selects(self, code: str) -> bool:
        if code in self.disable:
            return False
        return self.enable is None or code in self.enable


def _parse_codes(raw: str) -> frozenset[str]:
    return frozenset(
        code.strip().upper()
        for code in re.split(r"[,\s]+", raw)
        if code.strip()
    )


def load_config(config_path: "str | None" = None) -> LintConfig:
    """Read the ``[simlint]`` block of ``setup.cfg`` (if present).

    Args:
        config_path: Explicit path to an ini file; by default
            ``setup.cfg`` is searched in the current directory and then
            upward from this package (the repository checkout).
    """
    candidates = []
    if config_path:
        candidates.append(config_path)
    else:
        candidates.append(os.path.join(os.getcwd(), "setup.cfg"))
        here = os.path.dirname(os.path.abspath(__file__))
        for _ in range(5):
            here = os.path.dirname(here)
            candidates.append(os.path.join(here, "setup.cfg"))
    for candidate in candidates:
        if not os.path.isfile(candidate):
            continue
        parser = configparser.ConfigParser()
        parser.read(candidate)
        if not parser.has_section("simlint"):
            continue
        section = parser["simlint"]
        enable = section.get("enable", "").strip()
        disable = section.get("disable", "").strip()
        return LintConfig(
            enable=_parse_codes(enable) if enable else None,
            disable=_parse_codes(disable) if disable else frozenset(),
        )
    return LintConfig()


# -- source collection -------------------------------------------------------


def _domain_of(path: str) -> str:
    """First package segment under ``repro/`` ('' when not under repro)."""
    parts = path.replace(os.sep, "/").split("/")
    for i, part in enumerate(parts):
        if part == "repro" and i + 1 < len(parts):
            remainder = parts[i + 1 :]
            if len(remainder) == 1:  # repro/cli.py, repro/__init__.py
                return ""
            return remainder[0]
    return ""


def collect_files(paths: list[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs.sort()
                dirs[:] = [d for d in dirs if d != "__pycache__"]
                for name in sorted(names):
                    if name.endswith(".py"):
                        files.append(os.path.join(root, name))
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(dict.fromkeys(files))


@dataclass
class _Source:
    path: str
    source: str
    tree: ast.AST = field(init=False)
    error: "Finding | None" = field(init=False, default=None)

    def __post_init__(self) -> None:
        try:
            self.tree = ast.parse(self.source, filename=self.path)
        except SyntaxError as exc:
            self.tree = ast.Module(body=[], type_ignores=[])
            self.error = Finding(
                path=self.path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                code="SIM000",
                message=f"syntax error: {exc.msg}",
                fixit="fix the syntax error so simlint can parse the file",
            )


def _line_suppressions(lines: list[str]) -> dict[int, frozenset[str] | None]:
    """Per-line suppressions: line -> codes (None = suppress everything)."""
    suppressed: dict[int, frozenset[str] | None] = {}
    for number, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        codes = match.group("codes")
        suppressed[number] = _parse_codes(codes) if codes else None
    return suppressed


def _suppressor():
    """Per-line suppression callback for the pass pipeline."""
    memo: "dict[str, dict[int, frozenset[str] | None]]" = {}

    def suppress(path: str, lines: "list[str]", finding: Finding) -> bool:
        suppressed = memo.get(path)
        if suppressed is None:
            suppressed = memo[path] = _line_suppressions(lines)
        codes = suppressed.get(finding.line, frozenset())
        return codes is None or finding.code in codes

    return suppress


def lint_items(
    items: "list[tuple[str, str]]",
    config: "LintConfig | None" = None,
    rules: "list[Rule] | None" = None,
    cache: "LintCache | None" = None,
) -> PassResult:
    """Run the full pipeline over (path, source) pairs.

    A shared :class:`ProjectIndex` is built from *all* items before
    any rule runs, so cross-file facts — set-typed attributes, the
    call graph, lease-handler classification — are visible regardless
    of which file a rule is looking at.
    """
    config = config or LintConfig()
    rules = rules if rules is not None else all_rules()
    active = [rule for rule in rules if config.selects(rule.code)]
    entries = [
        (path, _domain_of(path), text) for path, text in items
    ]
    return run_passes(entries, active, _suppressor(), cache=cache)


def lint_sources(
    items: "list[tuple[str, str]]",
    config: "LintConfig | None" = None,
    rules: "list[Rule] | None" = None,
) -> list[Finding]:
    """Lint (path, source) pairs; the unit the tests drive directly."""
    return lint_items(items, config, rules).findings


def _read_items(paths: "list[str]") -> "list[tuple[str, str]]":
    items = []
    for path in collect_files(paths):
        with open(path, encoding="utf-8") as handle:
            items.append((path, handle.read()))
    return items


def run_simlint(
    paths: list[str],
    config: "LintConfig | None" = None,
    cache: "LintCache | None" = None,
) -> list[Finding]:
    """Lint files/directories on disk and return all findings."""
    return lint_items(_read_items(paths), config, cache=cache).findings


# -- output formats ----------------------------------------------------------


def render_text(findings: "list[Finding]") -> str:
    lines = [finding.format() for finding in findings]
    lines.append(
        f"{len(findings)} finding(s)" if findings else "simlint: clean"
    )
    return "\n".join(lines)


def render_json(findings: "list[Finding]") -> str:
    payload = {
        "version": 1,
        "count": len(findings),
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "code": finding.code,
                "message": finding.message,
                "fixit": finding.fixit,
            }
            for finding in findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(findings: "list[Finding]") -> str:
    """Minimal SARIF 2.1.0 — one run, one result per finding."""
    rule_ids = sorted({finding.code for finding in findings})
    by_code = {code: i for i, code in enumerate(rule_ids)}
    sarif = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "simlint",
                "informationUri": "https://example.invalid/simlint",
                "rules": [{"id": code} for code in rule_ids],
            }},
            "results": [
                {
                    "ruleId": finding.code,
                    "ruleIndex": by_code[finding.code],
                    "level": "error",
                    "message": {
                        "text": f"{finding.message}  [fix: {finding.fixit}]"
                    },
                    "locations": [{
                        "physicalLocation": {
                            "artifactLocation": {"uri": finding.path},
                            "region": {
                                "startLine": finding.line,
                                "startColumn": finding.col + 1,
                            },
                        },
                    }],
                }
                for finding in findings
            ],
        }],
    }
    return json.dumps(sarif, indent=2, sort_keys=True)


_RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}


# -- CLI ---------------------------------------------------------------------


def _default_lint_path() -> str:
    """``src/repro`` relative to a checkout, else this installed package."""
    candidate = os.path.join(os.getcwd(), "src", "repro")
    if os.path.isdir(candidate):
        return candidate
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="simlint",
        description="Static correctness analysis for the STFM simulator "
        "(determinism and numeric-hygiene invariants).",
    )
    parser.add_argument(
        "paths", nargs="*", help="files/directories (default: src/repro)"
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="run only these comma-separated rule codes",
    )
    parser.add_argument(
        "--ignore", metavar="CODES",
        help="additionally disable these comma-separated rule codes",
    )
    parser.add_argument(
        "--config", metavar="PATH",
        help="ini file with a [simlint] block (default: setup.cfg)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="describe rules and exit"
    )
    parser.add_argument(
        "--format", choices=sorted(_RENDERERS), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the incremental cache entirely",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=DEFAULT_CACHE_DIR,
        help=f"incremental cache location (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print pipeline statistics (files, parses, cache reuse)",
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.summary}")
            print(f"        fix: {rule.fixit}")
        return 0
    config = load_config(args.config)
    if args.select:
        config.enable = _parse_codes(args.select)
    if args.ignore:
        config.disable = config.disable | _parse_codes(args.ignore)
    paths = args.paths or [_default_lint_path()]
    cache = None if args.no_cache else LintCache(args.cache_dir)
    result = lint_items(_read_items(paths), config, cache=cache)
    if cache is not None:
        cache.save()
    print(_RENDERERS[args.format](result.findings))
    if args.stats:
        stats = result.stats
        print(
            f"stats: {stats.files} file(s), {stats.parsed} parsed, "
            f"{stats.index_reused} index entr(ies) reused, "
            f"{stats.findings_reused} findings replayed",
            file=sys.stderr,
        )
    return 1 if result.findings else 0


if __name__ == "__main__":
    sys.exit(main())
