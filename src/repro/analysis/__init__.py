"""Result analysis and the simulator correctness-analysis layer.

Result analysis (paper vs. measurement):

* :mod:`repro.analysis.paper_data` — the reference values transcribed
  from the paper's figures and tables.
* :mod:`repro.analysis.compare` — shape checks: policy orderings,
  trends, who-wins agreements between paper and measurement.
* :mod:`repro.analysis.report` — generates the EXPERIMENTS.md
  paper-vs-measured report from a results JSON
  (``stfm-sim run all --json results.json`` then
  ``stfm-sim report results.json``).

Correctness analysis (the simulator's own invariants):

* :mod:`repro.analysis.simlint` — AST-based static lint enforcing the
  determinism/numeric-hygiene invariants (``stfm-sim lint``).
* :mod:`repro.analysis.protocol` — the runtime DRAM protocol sanitizer
  (``--sanitize``): validates every issued command against DDR2 timing
  and raises :class:`ProtocolViolation` with the offending window.
"""

from repro.analysis.compare import (
    OrderingCheck,
    ordering_agreement,
    stfm_is_best,
    trend_direction,
)
from repro.analysis.paper_data import (
    PAPER_UNFAIRNESS,
    PAPER_FIG5,
    PAPER_TABLE5,
)
from repro.analysis.protocol import (
    IssuedCommand,
    ProtocolSanitizer,
    ProtocolViolation,
)
from repro.analysis.report import generate_report
from repro.analysis.simlint import LintConfig, run_simlint

__all__ = [
    "IssuedCommand",
    "LintConfig",
    "OrderingCheck",
    "PAPER_FIG5",
    "PAPER_TABLE5",
    "PAPER_UNFAIRNESS",
    "ProtocolSanitizer",
    "ProtocolViolation",
    "generate_report",
    "ordering_agreement",
    "run_simlint",
    "stfm_is_best",
    "trend_direction",
]
