"""Analysis of reproduction results against the paper's numbers.

* :mod:`repro.analysis.paper_data` — the reference values transcribed
  from the paper's figures and tables.
* :mod:`repro.analysis.compare` — shape checks: policy orderings,
  trends, who-wins agreements between paper and measurement.
* :mod:`repro.analysis.report` — generates the EXPERIMENTS.md
  paper-vs-measured report from a results JSON
  (``stfm-sim run all --json results.json`` then
  ``stfm-sim report results.json``).
"""

from repro.analysis.compare import (
    OrderingCheck,
    ordering_agreement,
    stfm_is_best,
    trend_direction,
)
from repro.analysis.paper_data import (
    PAPER_UNFAIRNESS,
    PAPER_FIG5,
    PAPER_TABLE5,
)
from repro.analysis.report import generate_report

__all__ = [
    "OrderingCheck",
    "PAPER_FIG5",
    "PAPER_TABLE5",
    "PAPER_UNFAIRNESS",
    "generate_report",
    "ordering_agreement",
    "stfm_is_best",
    "trend_direction",
]
