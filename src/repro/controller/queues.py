"""Request buffering: per-bank read queues and per-channel write buffers.

Besides the queues themselves, this module maintains the incremental
counters STFM's slowdown estimation needs every DRAM cycle:

* ``waiting_bank_count(thread)`` — the number of banks (across all
  channels) in which the thread has at least one waiting *read* request;
  this is the paper's ``BankWaitingParallelism`` register (Table 1).

Only reads are counted because only reads stall the core and therefore
contribute to memory stall time; writebacks drain from a separate buffer
and never appear on a core's critical path.
"""

from __future__ import annotations

from repro.controller.request import MemoryRequest


class ChannelQueues:
    """Read/write queues of one channel.

    Args:
        num_banks: Banks on the channel (one read queue each).
        read_capacity: Request-buffer entries for reads (128 baseline).
        write_capacity: Write data-buffer entries (32 baseline).
    """

    __slots__ = (
        "bank_queues",
        "write_queue",
        "read_capacity",
        "write_capacity",
        "read_count",
    )

    def __init__(self, num_banks: int, read_capacity: int, write_capacity: int):
        self.bank_queues: list[list[MemoryRequest]] = [[] for _ in range(num_banks)]
        self.write_queue: list[MemoryRequest] = []
        self.read_capacity = read_capacity
        self.write_capacity = write_capacity
        self.read_count = 0

    @property
    def write_count(self) -> int:
        return len(self.write_queue)

    def reads_full(self) -> bool:
        return self.read_count >= self.read_capacity

    def writes_full(self) -> bool:
        return len(self.write_queue) >= self.write_capacity


class RequestQueues:
    """All channel queues plus the thread-level waiting-bank counters."""

    def __init__(
        self,
        num_channels: int,
        num_banks: int,
        num_threads: int,
        read_capacity: int = 128,
        write_capacity: int = 32,
    ) -> None:
        self.num_channels = num_channels
        self.num_banks = num_banks
        self.num_threads = num_threads
        self.channels = [
            ChannelQueues(num_banks, read_capacity, write_capacity)
            for _ in range(num_channels)
        ]
        # waiting[thread][global_bank] -> number of waiting reads.
        total_banks = num_channels * num_banks
        self._waiting = [[0] * total_banks for _ in range(num_threads)]
        self._waiting_banks = [0] * num_threads
        # Total queued reads per thread (any channel), for the "has at
        # least one ready request" test of STFM's unfairness computation.
        self._queued_reads = [0] * num_threads

    def global_bank(self, channel: int, bank: int) -> int:
        return channel * self.num_banks + bank

    def enqueue_read(self, request: MemoryRequest) -> bool:
        """Queue a demand read; returns False if the buffer is full."""
        coords = request.coords
        queues = self.channels[coords.channel]
        if queues.reads_full():
            return False
        queues.bank_queues[coords.bank].append(request)
        queues.read_count += 1
        thread = request.thread_id
        gbank = self.global_bank(coords.channel, coords.bank)
        counts = self._waiting[thread]
        if counts[gbank] == 0:
            self._waiting_banks[thread] += 1
        counts[gbank] += 1
        self._queued_reads[thread] += 1
        return True

    def enqueue_write(self, request: MemoryRequest) -> bool:
        """Queue a writeback; returns False if the write buffer is full."""
        queues = self.channels[request.coords.channel]
        if queues.writes_full():
            return False
        queues.write_queue.append(request)
        return True

    def remove_read(self, request: MemoryRequest) -> None:
        """Remove a read at service time (its column command issued)."""
        coords = request.coords
        queues = self.channels[coords.channel]
        queues.bank_queues[coords.bank].remove(request)
        queues.read_count -= 1
        thread = request.thread_id
        gbank = self.global_bank(coords.channel, coords.bank)
        counts = self._waiting[thread]
        counts[gbank] -= 1
        if counts[gbank] == 0:
            self._waiting_banks[thread] -= 1
        self._queued_reads[thread] -= 1

    def remove_write(self, request: MemoryRequest) -> None:
        self.channels[request.coords.channel].write_queue.remove(request)

    def waiting_bank_count(self, thread_id: int) -> int:
        """``BankWaitingParallelism``: banks with a waiting read."""
        return self._waiting_banks[thread_id]

    def queued_reads(self, thread_id: int) -> int:
        return self._queued_reads[thread_id]

    def threads_with_reads(self) -> list[int]:
        """Threads that currently have at least one queued read."""
        return [t for t in range(self.num_threads) if self._queued_reads[t]]

    def total_reads(self) -> int:
        return sum(queues.read_count for queues in self.channels)

    def total_writes(self) -> int:
        return sum(queues.write_count for queues in self.channels)
