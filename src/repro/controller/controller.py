"""The DRAM memory controller (Sections 2.2, 2.3 and 5 of the paper).

Each DRAM cycle the controller, per channel:

1. decides whether to service reads or drain writebacks (reads are
   prioritized over writes; writes drain when their buffer passes a high
   watermark or no reads are pending — Table 2 baseline),
2. builds the set of *ready* command candidates for every bank,
3. asks the scheduling policy to pick a winner (two-level prioritization),
4. issues the winning command, updating bank/bus state, and — when the
   command is a column access — completes the request and notifies stats.

The controller also maintains the per-thread ``BankAccessParallelism``
count (requests currently being serviced in banks, Table 1) used by STFM.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.controller.queues import RequestQueues
from repro.controller.request import MemoryRequest
from repro.dram.address import AddressMapper
from repro.dram.bank import RowBufferOutcome
from repro.dram.channel import Channel
from repro.dram.commands import CommandCandidate, CommandKind
from repro.dram.timing import DramTiming
from repro.schedulers.base import SchedulingPolicy

#: Sentinel "no future state change" time for the candidate caches.
_NEVER = 1 << 62


class _BankCandidateCache:
    """Per-channel cache of bank-ready candidate lists (event kernel).

    Between two state changes of a bank (enqueue into its queue, command
    issued to it, refresh), the set of bank-ready candidates the naive
    scan would build is a pure function of time with known breakpoints:

    * a busy bank contributes nothing until ``busy_until``;
    * a free, precharged bank offers one ACTIVATE per queued request,
      forever (until an external event);
    * a free bank with an open row offers column accesses for row hits
      immediately and PRECHARGEs for conflicts once ``tRAS`` is
      satisfied (``activated_at + tRAS``).

    ``expires[b]`` stores the earliest such breakpoint; a cached list is
    valid while ``now < expires[b]`` and no invalidation hook fired.
    The ``channel_ready`` bit of cached column candidates is a
    channel-global predicate of ``now`` and is rewritten in one sweep
    whenever its value flips (see ``MemoryController._fast_per_bank``).
    """

    __slots__ = ("cands", "expires", "col_ready")

    def __init__(self, num_banks: int) -> None:
        self.cands: "list[list[CommandCandidate] | None]" = [None] * num_banks
        self.expires = [0] * num_banks
        self.col_ready = True

    def invalidate(self, bank_index: int) -> None:
        self.cands[bank_index] = None

    def invalidate_all(self) -> None:
        cands = self.cands
        for bank_index in range(len(cands)):
            cands[bank_index] = None


@dataclass
class ScanInfo:
    """Side products of one channel's candidate scan.

    STFM's interference updates (Section 3.2.2) need to know, at the
    moment a command issues, which *other* threads had ready commands:

    Attributes:
        channel: Channel index the scan belongs to.
        waiting_column_threads: Threads with a queued request whose next
            command is a column access on the channel — receivers of the
            ``tBus`` bus-interference update.
        waiting_threads_by_bank: Per bank, threads with at least one
            request waiting for that bank — receivers of the
            bank-interference update.
        oldest_row_access_arrival: Per bank, the arrival time of the
            oldest queued request that still needs a row access (activate
            or precharge); used by FR-FCFS+Cap to detect column-over-row
            bypassing.

    The paper phrases the interference receivers as threads with a
    *ready* command (footnote 4).  We default to *waiting* requests
    instead: at DRAM-command granularity a victim's next command is
    typically unready precisely because of the interferer's in-flight
    command (bank busy, tRAS not yet satisfied), so the literal reading
    systematically misses the delay it is supposed to measure.  Waiting
    requests could have been scheduled had the thread run alone, which
    is the quantity ``Talone`` needs (see DESIGN.md).  The literal
    ready-based sets are also collected so the estimator-basis ablation
    can quantify the difference (``stfm-sim run ablate-estimator``).
    """

    channel: int
    waiting_column_threads: set[int] = field(default_factory=set)
    waiting_threads_by_bank: dict[int, set[int]] = field(default_factory=dict)
    ready_column_threads: set[int] = field(default_factory=set)
    ready_threads_by_bank: dict[int, set[int]] = field(default_factory=dict)
    oldest_row_access_arrival: dict[int, int] = field(default_factory=dict)


@dataclass
class ThreadMemStats:
    """Per-thread DRAM service statistics for one simulation."""

    reads_completed: int = 0
    writes_completed: int = 0
    row_hits: int = 0
    row_closed: int = 0
    row_conflicts: int = 0
    total_read_latency: int = 0

    def record_read(self, outcome: RowBufferOutcome, latency: int) -> None:
        self.reads_completed += 1
        self.total_read_latency += latency
        if outcome is RowBufferOutcome.ROW_HIT:
            self.row_hits += 1
        elif outcome is RowBufferOutcome.ROW_CLOSED:
            self.row_closed += 1
        else:
            self.row_conflicts += 1

    @property
    def row_hit_rate(self) -> float:
        total = self.reads_completed
        return self.row_hits / total if total else 0.0

    @property
    def average_read_latency(self) -> float:
        total = self.reads_completed
        return self.total_read_latency / total if total else 0.0


class MemoryController:
    """On-chip DRAM controller managing one or more channels."""

    def __init__(
        self,
        timing: DramTiming,
        mapper: AddressMapper,
        num_threads: int,
        policy: SchedulingPolicy,
        read_capacity: int = 128,
        write_capacity: int = 32,
        write_drain_high: int = 24,
        write_drain_low: int = 8,
        page_policy: str = "open",
        refresh_enabled: bool = False,
        fast_path: "bool | None" = None,
    ) -> None:
        """Create the controller.

        Args:
            fast_path: Use the event-driven scheduling path (cached
                candidate scans).  ``None`` (default) defers to the
                ``STFM_SIM_KERNEL`` environment toggle.  Both paths are
                bit-identical; the naive path is kept as the
                differential-testing oracle (DESIGN.md §3.14).
        """
        if page_policy not in ("open", "closed"):
            raise ValueError("page_policy must be 'open' or 'closed'")
        self.timing = timing
        self.mapper = mapper
        self.num_threads = num_threads
        self.channels = [
            Channel(c, mapper.num_banks, timing) for c in range(mapper.num_channels)
        ]
        self.queues = RequestQueues(
            mapper.num_channels,
            mapper.num_banks,
            num_threads,
            read_capacity=read_capacity,
            write_capacity=write_capacity,
        )
        self.write_drain_high = write_drain_high
        self.write_drain_low = write_drain_low
        self._draining = [False] * mapper.num_channels
        self.policy = policy
        policy.bind(self)

        # BankAccessParallelism: in-flight serviced requests per thread,
        # retired lazily via a (completion_time, thread) heap.
        self._in_service: list[tuple[int, int]] = []
        self._bank_access_parallelism = [0] * num_threads

        self.thread_stats = [ThreadMemStats() for _ in range(num_threads)]
        self.commands_issued = 0

        # Open-page (baseline, Table 2) keeps rows open for hits;
        # closed-page auto-precharges after the last pending column.
        self.page_policy = page_policy
        # Auto-refresh: an all-bank refresh per channel every tREFI.
        self.refresh_enabled = refresh_enabled
        self._next_refresh = [timing.refi] * mapper.num_channels
        self.refreshes_issued = 0

        # Monotonic per-controller request sequence numbers: a stable,
        # allocator-independent identity for request-keyed policy state
        # (PAR-BS batch marking) — unlike id(), never reused.
        self._next_seq = 0
        # Optional DRAM protocol sanitizer (repro.analysis.protocol).
        self.sanitizer = None

        # Event-kernel state.  The caches stay coherent on both paths
        # (the invalidation hooks in submit/_issue/_refresh are O(1) and
        # unconditional) so the event-driven run loop may consult
        # ``channel_quiet_bound`` regardless of the scheduling path.
        if fast_path is None:
            # Imported lazily: repro.sim's package __init__ pulls in
            # modules that import this one.
            from repro.sim.kernel import event_kernel_enabled

            fast_path = event_kernel_enabled()
        self._fast_path = fast_path
        self._scan_caches = [
            _BankCandidateCache(mapper.num_banks)
            for _ in range(mapper.num_channels)
        ]

    def attach_sanitizer(self, sanitizer) -> None:
        """Validate every issued command against DDR2 constraints.

        The sanitizer observes commands on all channels plus the
        out-of-band state changes (refresh, closed-page auto-precharge);
        it never alters simulation state, so results are bit-identical
        with or without it.
        """
        self.sanitizer = sanitizer
        for channel in self.channels:
            channel.sanitizer = sanitizer

    # -- request admission -------------------------------------------------
    def submit(self, request: MemoryRequest, now: int) -> bool:
        """Admit a request into the request buffer.

        Returns False when the corresponding buffer is full; the core
        retries later (back-pressure).
        """
        request.arrival = now
        if request.seq is None:
            request.seq = self._next_seq
            self._next_seq += 1
        if request.is_write:
            accepted = self.queues.enqueue_write(request)
        else:
            accepted = self.queues.enqueue_read(request)
            if accepted:
                self._scan_caches[request.channel].invalidate(request.bank)
        if accepted:
            self.policy.on_enqueue(request, now)
        return accepted

    def can_accept(self, thread_id: int, address: int, is_write: bool) -> bool:
        """Whether a submit for ``address`` would be admitted right now.

        Side-effect-free fullness probe used by the cores' quiescence
        check (a fetch blocked on a full buffer stays blocked until a
        command issues, which bounds how far the event kernel may jump).
        """
        queues = self.queues.channels[self.mapper.decode(address).channel]
        if is_write:
            return not queues.writes_full()
        return not queues.reads_full()

    def make_request(
        self, thread_id: int, address: int, is_write: bool, now: int
    ) -> MemoryRequest:
        coords = self.mapper.decode(address)
        return MemoryRequest(thread_id, address, coords, is_write, now)

    # -- scheduling ----------------------------------------------------------
    def tick(self, now: int) -> None:
        """Make one scheduling decision per channel (one DRAM cycle)."""
        self._retire_in_service(now)
        if self.refresh_enabled:
            self._refresh(now)
        self.policy.begin_cycle(now)
        if self._fast_path:
            for channel in self.channels:
                self._schedule_channel_fast(channel, now)
        else:
            for channel in self.channels:
                self._schedule_channel(channel, now)

    def _refresh(self, now: int) -> None:
        """All-bank auto-refresh: every tREFI the channel's banks are
        precharged and unavailable for tRFC."""
        timing = self.timing
        for channel in self.channels:
            if now < self._next_refresh[channel.index]:
                continue
            self._next_refresh[channel.index] = now + timing.refi
            self.refreshes_issued += 1
            if self.sanitizer is not None:
                self.sanitizer.on_refresh(channel.index, now)
            for bank in channel.banks:
                bank.open_row = None
                bank.busy_until = max(bank.busy_until, now) + timing.rfc
            self._scan_caches[channel.index].invalidate_all()

    def _retire_in_service(self, now: int) -> None:
        heap = self._in_service
        while heap and heap[0][0] <= now:
            _, thread = heapq.heappop(heap)
            self._bank_access_parallelism[thread] -= 1

    def bank_access_parallelism(self, thread_id: int) -> int:
        """Banks currently servicing requests from the thread (Table 1)."""
        return self._bank_access_parallelism[thread_id]

    def has_work(self) -> bool:
        return self.queues.total_reads() > 0 or self.queues.total_writes() > 0

    def _schedule_channel(self, channel: Channel, now: int) -> None:
        queues = self.queues.channels[channel.index]
        draining = self._update_drain_mode(channel.index, queues)
        if draining:
            per_bank, scan = self._scan_writes(channel, queues, now)
        else:
            per_bank, scan = self._scan_reads(channel, queues, now)
        if not per_bank:
            return
        candidate = self.policy.select(channel.index, per_bank, now)
        if candidate is None:
            return
        self._issue(channel, candidate, scan, now)

    def _update_drain_mode(self, channel_index: int, queues) -> bool:
        writes = queues.write_count
        if self._draining[channel_index]:
            if writes <= self.write_drain_low:
                self._draining[channel_index] = False
        else:
            if writes >= self.write_drain_high or (
                queues.read_count == 0 and writes > 0
            ):
                self._draining[channel_index] = True
        return self._draining[channel_index]

    def _scan_reads(self, channel: Channel, queues, now: int):
        """Build ready read candidates and the STFM scan side-info."""
        per_bank: dict[int, list[CommandCandidate]] = {}
        scan = ScanInfo(channel.index)
        for bank_index, queue in enumerate(queues.bank_queues):
            if not queue:
                continue
            bank = channel.banks[bank_index]
            candidates: list[CommandCandidate] = []
            waiting_threads: set[int] = set()
            oldest_row_access: int | None = None
            for request in queue:
                kind = bank.next_command_for(request.coords.row)
                if kind.is_column and request.is_write:
                    kind = CommandKind.WRITE
                waiting_threads.add(request.thread_id)
                if kind.is_column:
                    scan.waiting_column_threads.add(request.thread_id)
                elif oldest_row_access is None or request.arrival < oldest_row_access:
                    oldest_row_access = request.arrival
                # Per-bank selection respects only bank constraints;
                # channel constraints (data bus) are checked at the
                # across-bank level via `channel_ready` (Section 2.3).
                if not bank.is_ready(kind, now):
                    continue
                channel_ready = not kind.is_column or channel.column_ready(now)
                candidates.append(
                    CommandCandidate(
                        kind,
                        request,
                        bank_index,
                        bank.command_latency(kind),
                        channel_ready=channel_ready,
                    )
                )
            if candidates:
                per_bank[bank_index] = candidates
                scan.ready_threads_by_bank[bank_index] = {
                    c.thread_id for c in candidates
                }
                scan.ready_column_threads.update(
                    c.thread_id
                    for c in candidates
                    if c.is_column and c.channel_ready
                )
            scan.waiting_threads_by_bank[bank_index] = waiting_threads
            if oldest_row_access is not None:
                scan.oldest_row_access_arrival[bank_index] = oldest_row_access
        return per_bank, scan

    def _scan_writes(self, channel: Channel, queues, now: int):
        """Build ready write candidates (write-drain mode).

        For interference accounting during drains, threads with queued
        reads stand in for "threads with ready commands" (the banks were
        necessarily free for the command that is about to issue).
        """
        per_bank: dict[int, list[CommandCandidate]] = {}
        scan = ScanInfo(channel.index)
        for request in queues.write_queue:
            bank_index = request.coords.bank
            bank = channel.banks[bank_index]
            kind = bank.next_command_for(request.coords.row)
            if kind.is_column:
                kind = CommandKind.WRITE
            if not bank.is_ready(kind, now):
                continue
            channel_ready = not kind.is_column or channel.column_ready(now)
            candidate = CommandCandidate(
                kind,
                request,
                bank_index,
                bank.command_latency(kind),
                channel_ready=channel_ready,
            )
            per_bank.setdefault(bank_index, []).append(candidate)
        if per_bank:
            for bank_index, bank_queue in enumerate(queues.bank_queues):
                if not bank_queue:
                    continue
                threads = {r.thread_id for r in bank_queue}
                scan.waiting_threads_by_bank.setdefault(bank_index, set()).update(
                    threads
                )
                scan.waiting_column_threads.update(threads)
                # During drains, queued reads stand in for ready reads in
                # both accounting bases (the issuing bank was free).
                scan.ready_threads_by_bank.setdefault(bank_index, set()).update(
                    threads
                )
                scan.ready_column_threads.update(threads)
        return per_bank, scan

    # -- event-kernel fast path ---------------------------------------------
    #
    # Same decisions as `_schedule_channel`, computed incrementally: the
    # per-bank candidate lists are cached between bank-state changes
    # (see _BankCandidateCache) and the STFM scan side-info is only
    # materialized when a command actually issues and the policy reads
    # it.  DESIGN.md §3.14 carries the equivalence argument; the
    # differential tests in tests/test_event_kernel.py enforce it.

    def _schedule_channel_fast(self, channel: Channel, now: int) -> None:
        queues = self.queues.channels[channel.index]
        if self._update_drain_mode(channel.index, queues):
            per_bank = self._write_candidates(channel, queues, now)
            if not per_bank:
                return
            candidate = self.policy.select(channel.index, per_bank, now)
            if candidate is None:
                return
            if self.policy.needs_scan:
                scan = self._write_scan_info(channel.index, queues)
            else:
                scan = ScanInfo(channel.index)
            self._issue(channel, candidate, scan, now)
            return
        per_bank = self._fast_per_bank(channel, queues, now)
        if not per_bank:
            return
        candidate = self.policy.select(channel.index, per_bank, now)
        if candidate is None:
            return
        if self.policy.needs_scan:
            scan = self._read_scan_info(channel, queues, per_bank)
        else:
            scan = ScanInfo(channel.index)
        self._issue(channel, candidate, scan, now)

    def _fast_per_bank(
        self, channel: Channel, queues, now: int
    ) -> dict[int, list[CommandCandidate]]:
        """Cached equivalent of `_scan_reads`'s per-bank candidates."""
        cache = self._scan_caches[channel.index]
        cands = cache.cands
        col_ready = channel.column_ready(now)
        if col_ready != cache.col_ready:
            # The data-bus predicate is channel-global: rewrite the bit
            # on every cached column candidate in one sweep.
            for lst in cands:
                if lst:
                    for candidate in lst:
                        if candidate.is_column:
                            candidate.channel_ready = col_ready
            cache.col_ready = col_ready
        per_bank: dict[int, list[CommandCandidate]] = {}
        expires = cache.expires
        banks = channel.banks
        for bank_index, queue in enumerate(queues.bank_queues):
            if not queue:
                continue
            lst = cands[bank_index]
            if lst is None or now >= expires[bank_index]:
                lst, expiry = self._rebuild_bank(
                    banks[bank_index], bank_index, queue, now, col_ready
                )
                cands[bank_index] = lst
                expires[bank_index] = expiry
            if lst:
                per_bank[bank_index] = lst
        return per_bank

    def _rebuild_bank(
        self, bank, bank_index: int, queue, now: int, col_ready: bool
    ) -> "tuple[list[CommandCandidate], int]":
        """Rebuild one bank's candidate list; returns (list, expiry)."""
        timing = self.timing
        busy_until = bank.busy_until
        if now < busy_until:
            return [], busy_until
        open_row = bank.open_row
        out: list[CommandCandidate] = []
        if open_row is None:
            latency = timing.rcd
            for request in queue:
                out.append(
                    CommandCandidate(
                        CommandKind.ACTIVATE, request, bank_index, latency
                    )
                )
            return out, _NEVER
        expiry = _NEVER
        ras_at = bank.activated_at + timing.ras
        ras_ok = now >= ras_at
        column_latency = timing.cl + timing.burst
        rp = timing.rp
        for request in queue:
            if request.row == open_row:
                out.append(
                    CommandCandidate(
                        CommandKind.READ,
                        request,
                        bank_index,
                        column_latency,
                        channel_ready=col_ready,
                    )
                )
            elif ras_ok:
                out.append(
                    CommandCandidate(CommandKind.PRECHARGE, request, bank_index, rp)
                )
            else:
                expiry = ras_at
        return out, expiry

    def _write_candidates(
        self, channel: Channel, queues, now: int
    ) -> dict[int, list[CommandCandidate]]:
        """Fast-path equivalent of `_scan_writes`'s per-bank candidates.

        Bank classification and readiness are inlined (the bank state
        machine's `next_command_for`/`is_ready` composition collapses to
        three branches for a known-write request); the scan side-info is
        deferred to `_write_scan_info` at issue time.
        """
        per_bank: dict[int, list[CommandCandidate]] = {}
        banks = channel.banks
        timing = self.timing
        col_ready = channel.column_ready(now)
        column_latency = timing.cl + timing.burst
        rcd = timing.rcd
        rp = timing.rp
        ras = timing.ras
        for request in queues.write_queue:
            bank_index = request.bank
            bank = banks[bank_index]
            if now < bank.busy_until:
                continue
            open_row = bank.open_row
            if open_row is None:
                candidate = CommandCandidate(
                    CommandKind.ACTIVATE, request, bank_index, rcd
                )
            elif open_row == request.row:
                candidate = CommandCandidate(
                    CommandKind.WRITE,
                    request,
                    bank_index,
                    column_latency,
                    channel_ready=col_ready,
                )
            elif now >= bank.activated_at + ras:
                candidate = CommandCandidate(
                    CommandKind.PRECHARGE, request, bank_index, rp
                )
            else:
                continue
            lst = per_bank.get(bank_index)
            if lst is None:
                per_bank[bank_index] = [candidate]
            else:
                lst.append(candidate)
        return per_bank

    def _write_scan_info(self, channel_index: int, queues) -> ScanInfo:
        """Materialize the scan side-info `_scan_writes` would have built
        (only called at issue time for policies with ``needs_scan``)."""
        scan = ScanInfo(channel_index)
        for bank_index, bank_queue in enumerate(queues.bank_queues):
            if not bank_queue:
                continue
            threads = {r.thread_id for r in bank_queue}
            scan.waiting_threads_by_bank[bank_index] = threads
            scan.waiting_column_threads.update(threads)
            # During drains, queued reads stand in for ready reads in
            # both accounting bases (the issuing bank was free).
            scan.ready_threads_by_bank[bank_index] = set(threads)
            scan.ready_column_threads.update(threads)
        return scan

    def _read_scan_info(
        self,
        channel: Channel,
        queues,
        per_bank: dict[int, list[CommandCandidate]],
    ) -> ScanInfo:
        """Materialize the scan side-info `_scan_reads` would have built.

        Called at issue time, before any state mutates, so the live
        queues and open rows are exactly what the naive scan saw; the
        ready sets derive from the (cache-validated) candidates.
        """
        scan = ScanInfo(channel.index)
        banks = channel.banks
        for bank_index, queue in enumerate(queues.bank_queues):
            if not queue:
                continue
            open_row = banks[bank_index].open_row
            waiting_threads: set[int] = set()
            oldest_row_access: "int | None" = None
            for request in queue:
                waiting_threads.add(request.thread_id)
                if open_row is not None and request.row == open_row:
                    scan.waiting_column_threads.add(request.thread_id)
                elif (
                    oldest_row_access is None
                    or request.arrival < oldest_row_access
                ):
                    oldest_row_access = request.arrival
            candidates = per_bank.get(bank_index)
            if candidates:
                scan.ready_threads_by_bank[bank_index] = {
                    c.thread_id for c in candidates
                }
                scan.ready_column_threads.update(
                    c.thread_id
                    for c in candidates
                    if c.is_column and c.channel_ready
                )
            scan.waiting_threads_by_bank[bank_index] = waiting_threads
            if oldest_row_access is not None:
                scan.oldest_row_access_arrival[bank_index] = oldest_row_access
        return scan

    # -- inert-window analysis (event kernel) --------------------------------

    def _drain_next(self, draining: bool, reads: int, writes: int) -> bool:
        """One `_update_drain_mode` transition with frozen queue counts."""
        if draining:
            return writes > self.write_drain_low
        return writes >= self.write_drain_high or (reads == 0 and writes > 0)

    def channel_quiet_bound(self, channel: Channel, now: int, quantum: int) -> int:
        """First tick >= ``now`` at which scheduling this channel could
        issue or build a candidate, assuming no external events (no
        enqueue, no refresh) until then.  Returns ``now`` itself when the
        channel is not provably quiet.

        With frozen queue counts the drain-mode trajectory is exact (it
        either reaches a fixed point after one transition or alternates
        every tick when ``reads == 0 < writes <= write_drain_low``); the
        bound must hold under every mode the trajectory visits.
        """
        queues = self.queues.channels[channel.index]
        reads = queues.read_count
        writes = queues.write_count
        state = self._drain_next(self._draining[channel.index], reads, writes)
        later = self._drain_next(state, reads, writes)
        modes = (state,) if later == state else (state, later)
        horizon = _NEVER
        for mode in modes:
            if mode:
                bound = self._write_quiet_bound(channel, queues, now)
            else:
                bound = self._read_quiet_bound(channel, queues, now)
            if bound <= now:
                return now
            if bound < horizon:
                horizon = bound
        if horizon >= _NEVER:
            return _NEVER
        # Readiness thresholds are exact CPU-cycle times; the first tick
        # that can observe one is the next quantum boundary at/after it.
        return -(-horizon // quantum) * quantum

    def _read_quiet_bound(self, channel: Channel, queues, now: int) -> int:
        per_bank = self._fast_per_bank(channel, queues, now)
        if per_bank:
            if channel.column_ready(now):
                return now  # a ready column may issue this tick
            for candidates in per_bank.values():
                for candidate in candidates:
                    if not candidate.is_column:
                        return now  # a bank-ready row command may issue
            if not self.policy.pure_select:
                # NFQ's select pops its inversion-window stamp whenever a
                # bank's earliest-deadline candidate is a column; skipping
                # those calls would leave stale stamps alive.  Run live.
                return now
            # Every candidate is a column waiting for the data bus:
            # select() filters non-channel-ready winners, so a pure-select
            # policy cannot issue (or change state) until the bus frees —
            # or a bank deadline below surfaces a new candidate.
            bound = channel.data_bus_busy_until - self.timing.cl
        else:
            bound = _NEVER
        expires = self._scan_caches[channel.index].expires
        for bank_index, queue in enumerate(queues.bank_queues):
            if queue and expires[bank_index] < bound:
                bound = expires[bank_index]
        return bound

    def _write_quiet_bound(self, channel: Channel, queues, now: int) -> int:
        timing = self.timing
        banks = channel.banks
        bound = _NEVER
        for request in queues.write_queue:
            bank = banks[request.bank]
            busy_until = bank.busy_until
            if now < busy_until:
                if busy_until < bound:
                    bound = busy_until
                continue
            open_row = bank.open_row
            if open_row is None or open_row == request.row:
                return now  # an ACTIVATE or WRITE is bank-ready
            ras_at = bank.activated_at + timing.ras
            if now >= ras_at:
                return now  # a PRECHARGE is bank-ready
            if ras_at < bound:
                bound = ras_at
        return bound

    def fast_forward_drain(self, ticks: int) -> None:
        """Apply ``ticks`` skipped `_update_drain_mode` transitions.

        Queue counts are frozen across an inert window, so the per-tick
        transition function is fixed: it reaches a fixed point after one
        application or alternates with period two.
        """
        if ticks <= 0:
            return
        for channel_index, queues in enumerate(self.queues.channels):
            reads = queues.read_count
            writes = queues.write_count
            initial = self._draining[channel_index]
            state = self._drain_next(initial, reads, writes)
            later = self._drain_next(state, reads, writes)
            if later == state:
                self._draining[channel_index] = state
            else:
                self._draining[channel_index] = state if ticks % 2 else initial

    def _issue(
        self, channel: Channel, candidate: CommandCandidate, scan: ScanInfo, now: int
    ) -> None:
        request = candidate.request
        bank = channel.banks[candidate.bank_index]
        kind = candidate.kind
        self.commands_issued += 1
        # The issued bank's state (busy window, open row, queue
        # membership) changes below — drop its cached candidates.
        self._scan_caches[channel.index].invalidate(candidate.bank_index)
        if kind is CommandKind.PRECHARGE:
            channel.issue(bank, kind, request.coords.row, now)
            request.got_precharge = True
        elif kind is CommandKind.ACTIVATE:
            channel.issue(bank, kind, request.coords.row, now)
            request.got_activate = True
        else:
            data_end = channel.issue(bank, kind, request.coords.row, now)
            request.completed_at = data_end + self.timing.overhead
            stats = self.thread_stats[request.thread_id]
            if request.is_write:
                self.queues.remove_write(request)
                stats.writes_completed += 1
            else:
                self.queues.remove_read(request)
                latency = request.completed_at - request.arrival
                stats.record_read(request.service_outcome(), latency)
                heapq.heappush(
                    self._in_service, (request.completed_at, request.thread_id)
                )
                self._bank_access_parallelism[request.thread_id] += 1
            if self.page_policy == "closed":
                # After the serviced request left the queue: close the row
                # unless another request to it is still pending.
                self._maybe_auto_precharge(channel, bank, request, now)
            self.policy.on_request_completed(request, now)
        self.policy.on_command_issued(candidate, scan, now)

    def _maybe_auto_precharge(
        self, channel: Channel, bank, request: MemoryRequest, now: int
    ) -> None:
        """Closed-page policy: precharge after the last pending column.

        The row stays open only while more requests to the same row are
        queued (a read-burst optimization real closed-page controllers
        also apply); otherwise the bank precharges immediately after the
        burst, respecting tRAS.
        """
        row = request.coords.row
        queue = self.queues.channels[channel.index].bank_queues[
            request.coords.bank
        ]
        if any(r.coords.row == row for r in queue):
            return
        precharge_start = max(
            now + self.timing.burst, bank.activated_at + self.timing.ras
        )
        if self.sanitizer is not None:
            self.sanitizer.on_auto_precharge(
                channel.index, bank.index, now, precharge_start
            )
        bank.open_row = None
        bank.busy_until = precharge_start + self.timing.rp
