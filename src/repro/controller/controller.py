"""The DRAM memory controller (Sections 2.2, 2.3 and 5 of the paper).

Each DRAM cycle the controller, per channel:

1. decides whether to service reads or drain writebacks (reads are
   prioritized over writes; writes drain when their buffer passes a high
   watermark or no reads are pending — Table 2 baseline),
2. builds the set of *ready* command candidates for every bank,
3. asks the scheduling policy to pick a winner (two-level prioritization),
4. issues the winning command, updating bank/bus state, and — when the
   command is a column access — completes the request and notifies stats.

The controller also maintains the per-thread ``BankAccessParallelism``
count (requests currently being serviced in banks, Table 1) used by STFM.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.controller.queues import RequestQueues
from repro.controller.request import MemoryRequest
from repro.dram.address import AddressMapper
from repro.dram.bank import RowBufferOutcome
from repro.dram.channel import Channel
from repro.dram.commands import CommandCandidate, CommandKind
from repro.dram.timing import DramTiming
from repro.schedulers.base import SchedulingPolicy


@dataclass
class ScanInfo:
    """Side products of one channel's candidate scan.

    STFM's interference updates (Section 3.2.2) need to know, at the
    moment a command issues, which *other* threads had ready commands:

    Attributes:
        channel: Channel index the scan belongs to.
        waiting_column_threads: Threads with a queued request whose next
            command is a column access on the channel — receivers of the
            ``tBus`` bus-interference update.
        waiting_threads_by_bank: Per bank, threads with at least one
            request waiting for that bank — receivers of the
            bank-interference update.
        oldest_row_access_arrival: Per bank, the arrival time of the
            oldest queued request that still needs a row access (activate
            or precharge); used by FR-FCFS+Cap to detect column-over-row
            bypassing.

    The paper phrases the interference receivers as threads with a
    *ready* command (footnote 4).  We default to *waiting* requests
    instead: at DRAM-command granularity a victim's next command is
    typically unready precisely because of the interferer's in-flight
    command (bank busy, tRAS not yet satisfied), so the literal reading
    systematically misses the delay it is supposed to measure.  Waiting
    requests could have been scheduled had the thread run alone, which
    is the quantity ``Talone`` needs (see DESIGN.md).  The literal
    ready-based sets are also collected so the estimator-basis ablation
    can quantify the difference (``stfm-sim run ablate-estimator``).
    """

    channel: int
    waiting_column_threads: set[int] = field(default_factory=set)
    waiting_threads_by_bank: dict[int, set[int]] = field(default_factory=dict)
    ready_column_threads: set[int] = field(default_factory=set)
    ready_threads_by_bank: dict[int, set[int]] = field(default_factory=dict)
    oldest_row_access_arrival: dict[int, int] = field(default_factory=dict)


@dataclass
class ThreadMemStats:
    """Per-thread DRAM service statistics for one simulation."""

    reads_completed: int = 0
    writes_completed: int = 0
    row_hits: int = 0
    row_closed: int = 0
    row_conflicts: int = 0
    total_read_latency: int = 0

    def record_read(self, outcome: RowBufferOutcome, latency: int) -> None:
        self.reads_completed += 1
        self.total_read_latency += latency
        if outcome is RowBufferOutcome.ROW_HIT:
            self.row_hits += 1
        elif outcome is RowBufferOutcome.ROW_CLOSED:
            self.row_closed += 1
        else:
            self.row_conflicts += 1

    @property
    def row_hit_rate(self) -> float:
        total = self.reads_completed
        return self.row_hits / total if total else 0.0

    @property
    def average_read_latency(self) -> float:
        total = self.reads_completed
        return self.total_read_latency / total if total else 0.0


class MemoryController:
    """On-chip DRAM controller managing one or more channels."""

    def __init__(
        self,
        timing: DramTiming,
        mapper: AddressMapper,
        num_threads: int,
        policy: SchedulingPolicy,
        read_capacity: int = 128,
        write_capacity: int = 32,
        write_drain_high: int = 24,
        write_drain_low: int = 8,
        page_policy: str = "open",
        refresh_enabled: bool = False,
    ) -> None:
        if page_policy not in ("open", "closed"):
            raise ValueError("page_policy must be 'open' or 'closed'")
        self.timing = timing
        self.mapper = mapper
        self.num_threads = num_threads
        self.channels = [
            Channel(c, mapper.num_banks, timing) for c in range(mapper.num_channels)
        ]
        self.queues = RequestQueues(
            mapper.num_channels,
            mapper.num_banks,
            num_threads,
            read_capacity=read_capacity,
            write_capacity=write_capacity,
        )
        self.write_drain_high = write_drain_high
        self.write_drain_low = write_drain_low
        self._draining = [False] * mapper.num_channels
        self.policy = policy
        policy.bind(self)

        # BankAccessParallelism: in-flight serviced requests per thread,
        # retired lazily via a (completion_time, thread) heap.
        self._in_service: list[tuple[int, int]] = []
        self._bank_access_parallelism = [0] * num_threads

        self.thread_stats = [ThreadMemStats() for _ in range(num_threads)]
        self.commands_issued = 0

        # Open-page (baseline, Table 2) keeps rows open for hits;
        # closed-page auto-precharges after the last pending column.
        self.page_policy = page_policy
        # Auto-refresh: an all-bank refresh per channel every tREFI.
        self.refresh_enabled = refresh_enabled
        self._next_refresh = [timing.refi] * mapper.num_channels
        self.refreshes_issued = 0

        # Monotonic per-controller request sequence numbers: a stable,
        # allocator-independent identity for request-keyed policy state
        # (PAR-BS batch marking) — unlike id(), never reused.
        self._next_seq = 0
        # Optional DRAM protocol sanitizer (repro.analysis.protocol).
        self.sanitizer = None

    def attach_sanitizer(self, sanitizer) -> None:
        """Validate every issued command against DDR2 constraints.

        The sanitizer observes commands on all channels plus the
        out-of-band state changes (refresh, closed-page auto-precharge);
        it never alters simulation state, so results are bit-identical
        with or without it.
        """
        self.sanitizer = sanitizer
        for channel in self.channels:
            channel.sanitizer = sanitizer

    # -- request admission -------------------------------------------------
    def submit(self, request: MemoryRequest, now: int) -> bool:
        """Admit a request into the request buffer.

        Returns False when the corresponding buffer is full; the core
        retries later (back-pressure).
        """
        request.arrival = now
        if request.seq is None:
            request.seq = self._next_seq
            self._next_seq += 1
        if request.is_write:
            accepted = self.queues.enqueue_write(request)
        else:
            accepted = self.queues.enqueue_read(request)
        if accepted:
            self.policy.on_enqueue(request, now)
        return accepted

    def make_request(
        self, thread_id: int, address: int, is_write: bool, now: int
    ) -> MemoryRequest:
        coords = self.mapper.decode(address)
        return MemoryRequest(thread_id, address, coords, is_write, now)

    # -- scheduling ----------------------------------------------------------
    def tick(self, now: int) -> None:
        """Make one scheduling decision per channel (one DRAM cycle)."""
        self._retire_in_service(now)
        if self.refresh_enabled:
            self._refresh(now)
        self.policy.begin_cycle(now)
        for channel in self.channels:
            self._schedule_channel(channel, now)

    def _refresh(self, now: int) -> None:
        """All-bank auto-refresh: every tREFI the channel's banks are
        precharged and unavailable for tRFC."""
        timing = self.timing
        for channel in self.channels:
            if now < self._next_refresh[channel.index]:
                continue
            self._next_refresh[channel.index] = now + timing.refi
            self.refreshes_issued += 1
            if self.sanitizer is not None:
                self.sanitizer.on_refresh(channel.index, now)
            for bank in channel.banks:
                bank.open_row = None
                bank.busy_until = max(bank.busy_until, now) + timing.rfc

    def _retire_in_service(self, now: int) -> None:
        heap = self._in_service
        while heap and heap[0][0] <= now:
            _, thread = heapq.heappop(heap)
            self._bank_access_parallelism[thread] -= 1

    def bank_access_parallelism(self, thread_id: int) -> int:
        """Banks currently servicing requests from the thread (Table 1)."""
        return self._bank_access_parallelism[thread_id]

    def has_work(self) -> bool:
        return self.queues.total_reads() > 0 or self.queues.total_writes() > 0

    def _schedule_channel(self, channel: Channel, now: int) -> None:
        queues = self.queues.channels[channel.index]
        draining = self._update_drain_mode(channel.index, queues)
        if draining:
            per_bank, scan = self._scan_writes(channel, queues, now)
        else:
            per_bank, scan = self._scan_reads(channel, queues, now)
        if not per_bank:
            return
        candidate = self.policy.select(channel.index, per_bank, now)
        if candidate is None:
            return
        self._issue(channel, candidate, scan, now)

    def _update_drain_mode(self, channel_index: int, queues) -> bool:
        writes = queues.write_count
        if self._draining[channel_index]:
            if writes <= self.write_drain_low:
                self._draining[channel_index] = False
        else:
            if writes >= self.write_drain_high or (
                queues.read_count == 0 and writes > 0
            ):
                self._draining[channel_index] = True
        return self._draining[channel_index]

    def _scan_reads(self, channel: Channel, queues, now: int):
        """Build ready read candidates and the STFM scan side-info."""
        per_bank: dict[int, list[CommandCandidate]] = {}
        scan = ScanInfo(channel.index)
        for bank_index, queue in enumerate(queues.bank_queues):
            if not queue:
                continue
            bank = channel.banks[bank_index]
            candidates: list[CommandCandidate] = []
            waiting_threads: set[int] = set()
            oldest_row_access: int | None = None
            for request in queue:
                kind = bank.next_command_for(request.coords.row)
                if kind.is_column and request.is_write:
                    kind = CommandKind.WRITE
                waiting_threads.add(request.thread_id)
                if kind.is_column:
                    scan.waiting_column_threads.add(request.thread_id)
                elif oldest_row_access is None or request.arrival < oldest_row_access:
                    oldest_row_access = request.arrival
                # Per-bank selection respects only bank constraints;
                # channel constraints (data bus) are checked at the
                # across-bank level via `channel_ready` (Section 2.3).
                if not bank.is_ready(kind, now):
                    continue
                channel_ready = not kind.is_column or channel.column_ready(now)
                candidates.append(
                    CommandCandidate(
                        kind,
                        request,
                        bank_index,
                        bank.command_latency(kind),
                        channel_ready=channel_ready,
                    )
                )
            if candidates:
                per_bank[bank_index] = candidates
                scan.ready_threads_by_bank[bank_index] = {
                    c.thread_id for c in candidates
                }
                scan.ready_column_threads.update(
                    c.thread_id
                    for c in candidates
                    if c.is_column and c.channel_ready
                )
            scan.waiting_threads_by_bank[bank_index] = waiting_threads
            if oldest_row_access is not None:
                scan.oldest_row_access_arrival[bank_index] = oldest_row_access
        return per_bank, scan

    def _scan_writes(self, channel: Channel, queues, now: int):
        """Build ready write candidates (write-drain mode).

        For interference accounting during drains, threads with queued
        reads stand in for "threads with ready commands" (the banks were
        necessarily free for the command that is about to issue).
        """
        per_bank: dict[int, list[CommandCandidate]] = {}
        scan = ScanInfo(channel.index)
        for request in queues.write_queue:
            bank_index = request.coords.bank
            bank = channel.banks[bank_index]
            kind = bank.next_command_for(request.coords.row)
            if kind.is_column:
                kind = CommandKind.WRITE
            if not bank.is_ready(kind, now):
                continue
            channel_ready = not kind.is_column or channel.column_ready(now)
            candidate = CommandCandidate(
                kind,
                request,
                bank_index,
                bank.command_latency(kind),
                channel_ready=channel_ready,
            )
            per_bank.setdefault(bank_index, []).append(candidate)
        if per_bank:
            for bank_index, bank_queue in enumerate(queues.bank_queues):
                if not bank_queue:
                    continue
                threads = {r.thread_id for r in bank_queue}
                scan.waiting_threads_by_bank.setdefault(bank_index, set()).update(
                    threads
                )
                scan.waiting_column_threads.update(threads)
                # During drains, queued reads stand in for ready reads in
                # both accounting bases (the issuing bank was free).
                scan.ready_threads_by_bank.setdefault(bank_index, set()).update(
                    threads
                )
                scan.ready_column_threads.update(threads)
        return per_bank, scan

    def _issue(
        self, channel: Channel, candidate: CommandCandidate, scan: ScanInfo, now: int
    ) -> None:
        request = candidate.request
        bank = channel.banks[candidate.bank_index]
        kind = candidate.kind
        self.commands_issued += 1
        if kind is CommandKind.PRECHARGE:
            channel.issue(bank, kind, request.coords.row, now)
            request.got_precharge = True
        elif kind is CommandKind.ACTIVATE:
            channel.issue(bank, kind, request.coords.row, now)
            request.got_activate = True
        else:
            data_end = channel.issue(bank, kind, request.coords.row, now)
            request.completed_at = data_end + self.timing.overhead
            stats = self.thread_stats[request.thread_id]
            if request.is_write:
                self.queues.remove_write(request)
                stats.writes_completed += 1
            else:
                self.queues.remove_read(request)
                latency = request.completed_at - request.arrival
                stats.record_read(request.service_outcome(), latency)
                heapq.heappush(
                    self._in_service, (request.completed_at, request.thread_id)
                )
                self._bank_access_parallelism[request.thread_id] += 1
            if self.page_policy == "closed":
                # After the serviced request left the queue: close the row
                # unless another request to it is still pending.
                self._maybe_auto_precharge(channel, bank, request, now)
            self.policy.on_request_completed(request, now)
        self.policy.on_command_issued(candidate, scan, now)

    def _maybe_auto_precharge(
        self, channel: Channel, bank, request: MemoryRequest, now: int
    ) -> None:
        """Closed-page policy: precharge after the last pending column.

        The row stays open only while more requests to the same row are
        queued (a read-burst optimization real closed-page controllers
        also apply); otherwise the bank precharges immediately after the
        burst, respecting tRAS.
        """
        row = request.coords.row
        queue = self.queues.channels[channel.index].bank_queues[
            request.coords.bank
        ]
        if any(r.coords.row == row for r in queue):
            return
        precharge_start = max(
            now + self.timing.burst, bank.activated_at + self.timing.ras
        )
        if self.sanitizer is not None:
            self.sanitizer.on_auto_precharge(
                channel.index, bank.index, now, precharge_start
            )
        bank.open_row = None
        bank.busy_until = precharge_start + self.timing.rp
