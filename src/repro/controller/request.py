"""Memory request representation.

A request corresponds to one cache-line transfer (an L2 miss or a
writeback) and carries the state the paper's request buffer holds per
entry: address, type, thread id, age, readiness and completion status
(Section 2.2), plus the bookkeeping flags our simulator uses to classify
the row-buffer outcome at service time.
"""

from __future__ import annotations

from repro.dram.address import DecodedAddress
from repro.dram.bank import RowBufferOutcome


class MemoryRequest:
    """One outstanding DRAM request.

    Attributes:
        thread_id: Id of the issuing thread/core (the per-request
            ``Thread-ID`` register of the paper's Table 1).
        address: Byte address of the cache line.
        coords: Decoded (channel, bank, row, column).
        is_write: Writeback (True) or demand read (False).
        arrival: CPU cycle the request entered the request buffer; the
            age used by the oldest-first rules.
        completed_at: CPU cycle the data transfer (plus fixed overhead)
            finishes; None while unserviced.  Cores compare against this
            to decide when a load stall ends.
        got_activate / got_precharge: Whether an ACTIVATE / PRECHARGE was
            issued on this request's behalf, used to classify its service
            as row-hit / row-closed / row-conflict.
        seq: Per-controller admission sequence number, assigned by
            ``MemoryController.submit``.  Policies that need request
            identity (PAR-BS batch marking) key on this — unlike
            ``id()``, it is deterministic and never reused.
        channel / bank / row: The decoded coordinates hoisted into flat
            attributes.  The controller's candidate scan reads them every
            DRAM cycle for every queued request; the flat copies avoid a
            ``coords`` attribute hop on the hottest loads in the
            simulator.
    """

    __slots__ = (
        "thread_id",
        "address",
        "coords",
        "is_write",
        "arrival",
        "completed_at",
        "got_activate",
        "got_precharge",
        "seq",
        "channel",
        "bank",
        "row",
    )

    def __init__(
        self,
        thread_id: int,
        address: int,
        coords: DecodedAddress,
        is_write: bool,
        arrival: int,
        seq: int | None = None,
    ) -> None:
        self.thread_id = thread_id
        self.address = address
        self.coords = coords
        self.is_write = is_write
        self.arrival = arrival
        self.seq = seq
        self.completed_at: int | None = None
        self.got_activate = False
        self.got_precharge = False
        self.channel = coords.channel
        self.bank = coords.bank
        self.row = coords.row

    @property
    def done(self) -> bool:
        return self.completed_at is not None

    def service_outcome(self) -> RowBufferOutcome:
        """Row-buffer outcome of this request's service.

        Only meaningful after the column command has been issued.
        """
        if self.got_precharge:
            return RowBufferOutcome.ROW_CONFLICT
        if self.got_activate:
            return RowBufferOutcome.ROW_CLOSED
        return RowBufferOutcome.ROW_HIT

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "W" if self.is_write else "R"
        return (
            f"MemoryRequest({kind}, thread={self.thread_id}, "
            f"ch={self.coords.channel}, bank={self.coords.bank}, "
            f"row={self.coords.row}, arrival={self.arrival})"
        )
