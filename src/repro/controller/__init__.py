"""DRAM memory controller: request buffering and two-level scheduling.

Mirrors the paper's controller organization (Sections 2.2-2.3): a request
buffer with per-bank queues, read/write data buffers, and a DRAM access
scheduler that, each DRAM cycle, picks per-bank best commands and then a
channel winner, according to a pluggable scheduling policy.
"""

from repro.controller.controller import MemoryController, ScanInfo
from repro.controller.queues import ChannelQueues, RequestQueues
from repro.controller.request import MemoryRequest

__all__ = [
    "ChannelQueues",
    "MemoryController",
    "MemoryRequest",
    "RequestQueues",
    "ScanInfo",
]
