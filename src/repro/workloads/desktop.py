"""Windows desktop application characteristics (the paper's Table 4).

Used by the Section 7.4 case study: two memory-intensive background
threads (an XML parser searching a file database and Matlab convolving
two images) run with two interactive foreground threads (Internet
Explorer and Instant Messenger).  Section 7.4 notes the foreground
applications' accesses are concentrated on two (iexplorer) and three
(instant-messenger) banks, which is what NFQ penalizes.
"""

from __future__ import annotations

from repro.workloads.spec2006 import BenchmarkSpec


DESKTOP_BENCHMARKS: dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in [
        BenchmarkSpec(
            name="matlab",
            itype="INT",
            mcpi=11.06,
            mpki=60.26,
            rb_hit_rate=0.978,
            category=3,
            burstiness=0.2,
            burst_len=12,
            streaming=True,
            dependence=0.0,
            mlp=10,
        ),
        BenchmarkSpec(
            name="instant-messenger",
            itype="INT",
            mcpi=1.56,
            mpki=7.72,
            rb_hit_rate=0.228,
            category=0,
            burstiness=0.8,
            burst_len=3,
            bank_focus=3,
            dependence=0.5,
        ),
        BenchmarkSpec(
            name="xml-parser",
            itype="INT",
            mcpi=8.56,
            mpki=53.46,
            rb_hit_rate=0.958,
            category=3,
            burstiness=0.2,
            burst_len=10,
            streaming=True,
            dependence=0.0,
            mlp=10,
        ),
        BenchmarkSpec(
            name="iexplorer",
            itype="INT",
            mcpi=0.55,
            mpki=3.55,
            rb_hit_rate=0.414,
            category=0,
            burstiness=0.8,
            burst_len=3,
            bank_focus=2,
            dependence=0.5,
        ),
    ]
}

#: The Figure 13 workload, in the paper's plotting order.
DESKTOP_WORKLOAD = ["xml-parser", "matlab", "iexplorer", "instant-messenger"]
