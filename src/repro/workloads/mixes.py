"""Workload mixes for the multi-core sweeps (Figures 9, 11 and 12).

The paper evaluates combinations of benchmarks drawn from the four
(intensiveness x row-buffer-locality) categories: all 256 category
patterns for 4 cores, 32 diverse combinations for 8 cores, and three
hand-picked 16-core workloads (most intensive 16, most-8 + least-8,
least intensive 16).

``category_pattern_workloads`` reproduces that construction: it
enumerates category patterns (all ``4**n`` for 4 cores) and picks a
concrete benchmark per slot with a seeded RNG, so a given (count, seed)
always yields the same workloads.
"""

from __future__ import annotations

import itertools
import random

from repro.workloads.spec2006 import (
    BenchmarkSpec,
    benchmarks_by_category,
    intensive_order,
)


def workload_name(names: list[str]) -> str:
    """Canonical display name of a workload."""
    return "+".join(names)


def category_pattern_workloads(
    num_cores: int,
    count: int | None = None,
    seed: int = 0,
) -> list[list[str]]:
    """Build multiprogrammed workloads from category patterns.

    Args:
        num_cores: Benchmarks per workload.
        count: How many workloads to return; None returns one workload
            per category pattern (``4**num_cores`` — only sensible for
            4 cores, where it reproduces the paper's 256 combinations).
        seed: RNG seed for both pattern sampling and benchmark choice.

    Returns:
        A list of workloads, each a list of benchmark names.
    """
    if num_cores < 1:
        raise ValueError("num_cores must be positive")
    rng = random.Random(seed)
    all_patterns = itertools.product(range(4), repeat=num_cores)
    if count is None:
        patterns = list(all_patterns)
    else:
        # Sampling the full 4**n space is infeasible for large n; draw
        # patterns directly instead, deduplicated, stratified so every
        # category appears.
        patterns = []
        seen: set[tuple[int, ...]] = set()
        while len(patterns) < count:
            pattern = tuple(rng.randrange(4) for _ in range(num_cores))
            if pattern in seen:
                continue
            seen.add(pattern)
            patterns.append(pattern)
    by_category = {c: benchmarks_by_category(c) for c in range(4)}
    workloads = []
    for pattern in patterns:
        names: list[str] = []
        for category in pattern:
            choices = by_category[category]
            pick = rng.choice(choices)
            # Avoid duplicate benchmarks within one workload when the
            # category has alternatives left.
            alternatives = [spec for spec in choices if spec.name not in names]
            if alternatives:
                pick = rng.choice(alternatives)
            names.append(pick.name)
        workloads.append(names)
    return workloads


def sixteen_core_workloads() -> dict[str, list[str]]:
    """The paper's three 16-core workloads (Figure 12).

    ``high16``: the 16 most memory-intensive benchmarks; ``high8+low8``:
    the most intensive 8 with the least intensive 8; ``low16``: the 16
    least intensive benchmarks.
    """
    ordered = [spec.name for spec in intensive_order()]
    return {
        "high16": ordered[:16],
        "high8+low8": ordered[:8] + ordered[-8:],
        "low16": ordered[-16:],
    }


def sample_workloads_4core(seed: int = 0, count: int = 10) -> list[list[str]]:
    """Ten representative 4-core sample workloads shown in Figure 9.

    The figure's exact sample mixes are taken from its axis labels where
    legible; remaining slots are filled with category-stratified samples.
    """
    explicit = [
        ["libquantum", "leslie3d", "milc", "cactusADM"],
        ["milc", "mcf", "libquantum", "leslie3d"],
        ["mcf", "libquantum", "astar", "omnetpp"],
        ["lbm", "libquantum", "cactusADM", "hmmer"],
        ["lbm", "astar", "omnetpp", "sphinx3"],
        ["libquantum", "omnetpp", "h264ref", "GemsFDTD"],
        ["mcf", "astar", "omnetpp", "hmmer"],
        ["astar", "omnetpp", "hmmer", "dealII"],
        ["omnetpp", "hmmer", "h264ref", "bzip2"],
        ["hmmer", "h264ref", "dealII", "gromacs"],
    ]
    if count <= len(explicit):
        return explicit[:count]
    extra = category_pattern_workloads(4, count - len(explicit), seed=seed + 1)
    return explicit + extra


def sample_workloads_8core(seed: int = 0, count: int = 10) -> list[list[str]]:
    """Representative 8-core sample workloads in the spirit of Figure 11.

    Figure 11 labels workloads by Table 3 benchmark indices; the exact
    sets are only partially legible in the source, so we reconstruct ten
    mixes spanning the same intensity spectrum (from all-intensive to
    all-non-intensive).
    """
    ordered = [spec.name for spec in intensive_order()]
    explicit = [
        ordered[0:8],                      # the 8 most intensive
        ordered[0:4] + ordered[8:12],      # intensive + middle
        ordered[4:12],                     # middle of the spectrum
        ordered[0:2] + ordered[10:16],     # 2 intensive + 6 light
        ordered[8:16],                     # moderately light
        ordered[0:1] + ordered[13:20],     # 1 intensive + 7 light
        ordered[12:20],                    # light
        ordered[2:6] + ordered[18:22],     # intensive + very light
        ordered[18:26],                    # the 8 least intensive
        ordered[0:4] + ordered[22:26],     # extremes mixed
    ]
    if count <= len(explicit):
        return explicit[:count]
    extra = category_pattern_workloads(8, count - len(explicit), seed=seed + 1)
    return explicit + extra
