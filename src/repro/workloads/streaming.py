"""Heterogeneous streaming agents: GPU-like traffic classes.

Ausavarungnirun et al. ("Staged Memory Scheduling: Achieving High
Performance and Scalability in Heterogeneous Systems", ISCA 2012)
evaluate CPU cores sharing a memory system with a GPU whose traffic is
qualitatively different from any SPEC benchmark: enormously memory
intensive, highly bursty, streaming through rows with near-perfect
row-buffer locality, sustaining far more outstanding misses than a CPU
core — and *latency tolerant*, because thousands of in-flight threads
hide individual miss latency.

This module models that agent class as :class:`BenchmarkSpec` instances
(the same vocabulary the SPEC/desktop registries use, so every existing
trace-generation, engine and experiment path accepts them unchanged):

* ``gpu-stream`` — a shader-core frame sweep: streaming rows, maximal
  MLP, zero dependence, long bursts.
* ``gpu-texture`` — texture fetches concentrated on few banks
  (bank-focused like dealII/astar but vastly more intensive).
* ``gpu-compute`` — a GPGPU kernel: intensive and bursty but with some
  pointer dependence, between the CPU and graphics extremes.

``itype`` is ``"GPU"`` so schedulers, matrices and reports can identify
the class (:func:`is_streaming_agent`).  The high ``mlp`` values are
what makes the agents latency tolerant in this simulator: a core that
can keep 24+ misses in flight rarely stalls on any single one.
"""

from __future__ import annotations

from repro.workloads.spec2006 import BenchmarkSpec


STREAMING_AGENTS: dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in [
        BenchmarkSpec(
            name="gpu-stream",
            itype="GPU",
            mcpi=12.0,
            mpki=150.0,
            rb_hit_rate=0.95,
            category=3,
            burstiness=0.3,
            burst_len=24,
            dependence=0.0,
            mlp=24,
            write_fraction=0.3,
            streaming=True,
        ),
        BenchmarkSpec(
            name="gpu-texture",
            itype="GPU",
            mcpi=9.0,
            mpki=110.0,
            rb_hit_rate=0.85,
            category=3,
            burstiness=0.5,
            burst_len=16,
            bank_focus=2,
            bank_focus_weight=0.85,
            dependence=0.0,
            mlp=16,
            write_fraction=0.05,
        ),
        BenchmarkSpec(
            name="gpu-compute",
            itype="GPU",
            mcpi=7.0,
            mpki=80.0,
            rb_hit_rate=0.6,
            category=2,
            burstiness=0.6,
            burst_len=12,
            dependence=0.1,
            mlp=12,
            write_fraction=0.4,
        ),
    ]
}


def is_streaming_agent(spec_or_name: "BenchmarkSpec | str") -> bool:
    """True for the GPU-like agent class (by spec or registry name)."""
    if isinstance(spec_or_name, BenchmarkSpec):
        return spec_or_name.itype == "GPU"
    return spec_or_name in STREAMING_AGENTS


def heterogeneous_workloads(
    num_cores: int,
    count: int,
    seed: int = 0,
) -> "list[list[str]]":
    """CPU+GPU mixes: one streaming agent plus ``num_cores - 1`` SPEC
    benchmarks drawn category-stratified (the SMS evaluation shape).

    Deterministic in ``(num_cores, count, seed)``, like the homogeneous
    mix builders in :mod:`repro.workloads.mixes`.
    """
    if num_cores < 2:
        raise ValueError("heterogeneous workloads need at least 2 cores")
    from repro.workloads.mixes import category_pattern_workloads

    agents = sorted(STREAMING_AGENTS)
    cpu_mixes = category_pattern_workloads(num_cores - 1, count, seed=seed)
    return [
        [agents[index % len(agents)]] + mix
        for index, mix in enumerate(cpu_mixes)
    ]
