"""Synthetic L2-miss trace generation from benchmark characteristics.

Given a :class:`~repro.workloads.spec2006.BenchmarkSpec`, the generator
produces a seeded, deterministic trace whose statistics match the spec:

* **memory intensity** — demand reads appear at ``mpki`` per 1000
  instructions, spaced by exponentially distributed compute gaps;
* **burstiness** — misses arrive in bursts of ``burst_len`` on average,
  with ``burstiness`` shifting compute from intra-burst gaps into the
  inter-burst gap (creating the idle periods behind NFQ's idleness
  problem, Section 4);
* **row-buffer locality** — with probability ``rb_hit_rate`` an access
  stays in the current row (next column), otherwise it opens a new row;
* **bank-access balance** — row switches land on ``bank_focus`` favoured
  banks with probability ``bank_focus_weight`` (dealII/astar-style skew),
  or uniformly across all banks;
* **MLP** — loads are marked dependent with probability ``dependence``,
  serializing them in the core (omnetpp-style pointer chasing);
* **writebacks** — each read is followed by a writeback with probability
  ``write_fraction``.

Address streams of different partitions (cores) are disjoint row ranges,
mirroring multiprogrammed workloads that share no data.
"""

from __future__ import annotations

import random

from repro.cpu.trace import Trace, TraceRecord
from repro.dram.address import AddressMapper
from repro.workloads.spec2006 import BenchmarkSpec


class SyntheticTraceGenerator:
    """Generates deterministic traces for benchmark specs."""

    def __init__(self, mapper: AddressMapper, seed: int = 0) -> None:
        self.mapper = mapper
        self.seed = seed

    def trace_for(
        self,
        spec: BenchmarkSpec,
        instructions: int,
        partition: int = 0,
        num_partitions: int = 1,
    ) -> Trace:
        """Build a trace of roughly ``instructions`` instructions.

        Args:
            spec: The benchmark to model.
            instructions: Target instruction count of one trace pass.
            partition: Which address partition (core slot) to use.
            num_partitions: Total partitions; rows are split evenly so
                threads never share rows.
        """
        if instructions < 1:
            raise ValueError("instructions must be positive")
        if not 0 <= partition < num_partitions:
            raise ValueError("partition out of range")
        rng = random.Random(f"{self.seed}/{spec.name}/{partition}")
        mapper = self.mapper

        span = max(1, mapper.num_rows // num_partitions)
        row_base = partition * span
        row_limit = row_base + span

        num_reads = max(4, round(instructions * spec.mpki / 1000.0))
        mean_gap = max(0.0, 1000.0 / max(spec.mpki, 1e-9) - 1.0)
        intra_mean = mean_gap * (1.0 - spec.burstiness)

        banks = list(range(mapper.num_banks))
        rng.shuffle(banks)
        focus_banks = banks[: spec.bank_focus] if spec.bank_focus else banks

        stream = _AddressStream(
            spec, mapper, rng, row_base, row_limit, focus_banks
        )

        records: list[TraceRecord] = []
        reads_emitted = 0
        first_burst = True
        while reads_emitted < num_reads:
            if spec.periodic_bursts:
                burst = spec.burst_len
            else:
                burst = max(1, round(rng.expovariate(1.0 / spec.burst_len)))
            burst = min(burst, num_reads - reads_emitted)
            # The inter-burst gap carries the compute displaced from the
            # intra-burst gaps, keeping the average MPKI on target.
            leading_mean = burst * mean_gap - (burst - 1) * intra_mean
            for position in range(burst):
                gap_mean = leading_mean if position == 0 else intra_mean
                if spec.periodic_bursts:
                    compute = int(round(gap_mean))
                    if position == 0 and first_burst:
                        # Phase-stagger the burst schedules of different
                        # partitions (paper Figure 3: each bursty thread
                        # is active in a different interval).
                        period = spec.burst_len * mean_gap
                        compute += int(period * partition / num_partitions)
                        first_burst = False
                else:
                    compute = _sample_gap(rng, gap_mean)
                address = stream.next_address()
                dependent = rng.random() < spec.dependence
                records.append(
                    TraceRecord(
                        compute=compute,
                        is_write=False,
                        address=address,
                        dependent=dependent,
                    )
                )
                reads_emitted += 1
                if rng.random() < spec.write_fraction:
                    records.append(
                        TraceRecord(
                            compute=0,
                            is_write=True,
                            address=stream.writeback_address(),
                        )
                    )
        return Trace(records)


class _AddressStream:
    """Stateful address generation honouring locality and bank balance."""

    def __init__(
        self,
        spec: BenchmarkSpec,
        mapper: AddressMapper,
        rng: random.Random,
        row_base: int,
        row_limit: int,
        focus_banks: list[int],
    ) -> None:
        self.spec = spec
        self.mapper = mapper
        self.rng = rng
        self.row_base = row_base
        self.row_limit = row_limit
        self.focus_banks = focus_banks
        self.channel = rng.randrange(mapper.num_channels)
        self.bank = focus_banks[0]
        self.row = row_base
        self.column = 0
        self._switch_row()

    def _switch_row(self) -> None:
        rng = self.rng
        spec = self.spec
        mapper = self.mapper
        if spec.bank_focus and rng.random() < spec.bank_focus_weight:
            self.bank = rng.choice(self.focus_banks)
        else:
            self.bank = rng.randrange(mapper.num_banks)
        self.channel = rng.randrange(mapper.num_channels)
        if spec.streaming:
            self.row += 1
            if self.row >= self.row_limit:
                self.row = self.row_base
            self.column = 0
        else:
            self.row = rng.randrange(self.row_base, self.row_limit)
            self.column = rng.randrange(mapper.lines_per_row)

    def next_address(self) -> int:
        rng = self.rng
        stay_in_row = (
            rng.random() < self.spec.rb_hit_rate
            and self.column + 1 < self.mapper.lines_per_row
        )
        if stay_in_row:
            self.column += 1
        else:
            self._switch_row()
        return self.mapper.compose(self.channel, self.bank, self.row, self.column)

    def writeback_address(self) -> int:
        """A writeback targets an old (evicted) row in a used bank."""
        rng = self.rng
        row = rng.randrange(self.row_base, self.row_limit)
        column = rng.randrange(self.mapper.lines_per_row)
        return self.mapper.compose(self.channel, self.bank, row, column)


def _sample_gap(rng: random.Random, mean: float) -> int:
    """Sample a compute-gap length with the requested mean."""
    if mean <= 0:
        return 0
    return int(rng.expovariate(1.0 / mean))


def generate_trace(
    spec: BenchmarkSpec,
    mapper: AddressMapper,
    instructions: int,
    seed: int = 0,
    partition: int = 0,
    num_partitions: int = 1,
) -> Trace:
    """Functional wrapper around :class:`SyntheticTraceGenerator`."""
    generator = SyntheticTraceGenerator(mapper, seed=seed)
    return generator.trace_for(
        spec, instructions, partition=partition, num_partitions=num_partitions
    )
