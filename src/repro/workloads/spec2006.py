"""SPEC CPU2006 benchmark characteristics (the paper's Table 3).

``MCPI`` (memory cycles per instruction) and ``MPKI`` (L2 misses per
kilo-instruction) and the row-buffer hit rate are the run-alone values
the paper measured; ``category`` encodes (memory intensiveness,
row-buffer locality): 0 = not-intensive/low-RB, 1 = not-intensive/
high-RB, 2 = intensive/low-RB, 3 = intensive/high-RB.

The behavioural fields beyond Table 3 encode what the paper's case
studies report about individual benchmarks:

* dealII's and astar's accesses are "heavily skewed/concentrated in only
  two DRAM banks" (footnote 16, Section 7.2.1) — ``bank_focus = 2``;
* mcf "continuously generates memory requests" while libquantum,
  GemsFDTD and astar "have bursty access patterns" (Section 7.2.1);
* omnetpp's and hmmer's performance collapses when their bank
  parallelism is destroyed because they serialize on individual misses
  (Section 7.2.3) — high ``dependence`` (pointer chasing / low MLP).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class BenchmarkSpec:
    """Characteristics of one benchmark, as the trace generator needs them.

    Attributes:
        name: Benchmark name (without the SPEC numeric prefix).
        itype: 'INT' or 'FP'.
        mcpi: Paper-measured memory cycles per instruction (run alone);
            reported for reference, not a generator input.
        mpki: L2 misses (reads) per 1000 instructions — sets the density
            of memory operations in the generated trace.
        rb_hit_rate: Row-buffer hit rate when run alone — sets the
            probability that consecutive accesses stay in the same row.
        category: The paper's 4-way classification (see module docstring).
        burstiness: Fraction of inter-miss compute concentrated into
            inter-burst gaps; 0 = evenly spaced misses, near 1 = tight
            bursts separated by long idle periods.
        burst_len: Average misses per burst.
        bank_focus: If set, the number of banks receiving the bulk of the
            thread's accesses (the access-balance problem's trigger).
        bank_focus_weight: Fraction of row switches landing on the
            focused banks.
        dependence: Probability a load depends on the previous load
            (cannot issue until it returns) — limits MLP.
        mlp: Maximum outstanding misses the application sustains
            (memory-level parallelism).  Derived from Table 3: the
            paper's MCPI/MPKI ratios imply per-miss stalls close to the
            full uncontended latency, i.e. MLP of roughly 1-3 — far
            below what a 128-entry window could theoretically extract.
        write_fraction: Writebacks emitted per demand read.
        streaming: Sequential (streaming) access pattern rather than
            random rows — libquantum's signature behaviour.
        periodic_bursts: Deterministic on/off burst schedule instead of
            randomized bursts, phase-staggered across address partitions.
            Used by the idleness-problem micro-experiment (the paper's
            Figure 3, where each bursty thread is active in a different
            interval).
    """

    name: str
    itype: str
    mcpi: float
    mpki: float
    rb_hit_rate: float
    category: int
    burstiness: float = 0.5
    burst_len: int = 6
    bank_focus: int | None = None
    bank_focus_weight: float = 0.9
    dependence: float = 0.1
    mlp: int = 3
    write_fraction: float = 0.15
    streaming: bool = False
    periodic_bursts: bool = False

    @property
    def intensive(self) -> bool:
        return self.category >= 2

    @property
    def high_locality(self) -> bool:
        return self.category in (1, 3)

    def with_overrides(self, **kwargs) -> "BenchmarkSpec":
        """A copy with selected fields replaced (for ablations)."""
        return replace(self, **kwargs)


def _spec(
    name: str,
    itype: str,
    mcpi: float,
    mpki: float,
    rb_hit: float,
    category: int,
    **kwargs,
) -> BenchmarkSpec:
    return BenchmarkSpec(
        name=name,
        itype=itype,
        mcpi=mcpi,
        mpki=mpki,
        rb_hit_rate=rb_hit,
        category=category,
        **kwargs,
    )


#: Table 3, ordered by memory intensiveness as in the paper's figures.
SPEC2006: dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in [
        _spec("mcf", "INT", 10.02, 101.06, 0.419, 2,
              burstiness=0.1, burst_len=12, dependence=0.25, mlp=16),
        _spec("libquantum", "INT", 9.10, 50.00, 0.984, 3,
              burstiness=0.2, burst_len=16, streaming=True, dependence=0.0,
              mlp=10),
        _spec("leslie3d", "FP", 7.82, 36.21, 0.825, 3,
              burstiness=0.7, burst_len=10, mlp=8),
        _spec("soplex", "FP", 7.48, 45.66, 0.639, 3,
              burstiness=0.4, burst_len=8, mlp=10),
        _spec("milc", "FP", 6.74, 51.05, 0.9177, 3,
              burstiness=0.1, burst_len=10, mlp=10),
        _spec("lbm", "FP", 6.44, 43.46, 0.546, 3,
              burstiness=0.1, burst_len=10, mlp=10),
        _spec("sphinx3", "FP", 5.49, 24.97, 0.578, 3,
              burstiness=0.5, burst_len=6, mlp=8),
        _spec("GemsFDTD", "FP", 3.87, 17.62, 0.002, 2,
              burstiness=0.6, burst_len=6, mlp=6),
        _spec("cactusADM", "FP", 3.53, 14.66, 0.020, 2,
              burstiness=0.4, burst_len=6, mlp=6),
        _spec("xalancbmk", "INT", 3.18, 21.66, 0.548, 3,
              burstiness=0.4, burst_len=6, mlp=8),
        _spec("astar", "INT", 2.02, 9.25, 0.448, 0,
              burstiness=0.7, burst_len=4, bank_focus=2, dependence=0.4, mlp=4),
        _spec("omnetpp", "INT", 1.78, 13.83, 0.219, 0,
              burstiness=0.6, burst_len=3, dependence=0.3, mlp=3),
        _spec("hmmer", "INT", 1.52, 5.82, 0.327, 0,
              burstiness=0.6, burst_len=3, dependence=0.3, mlp=2),
        _spec("h264ref", "INT", 0.71, 3.22, 0.653, 1,
              burstiness=0.8, burst_len=5, mlp=4),
        _spec("bzip2", "INT", 0.55, 3.55, 0.414, 0,
              burstiness=0.7, burst_len=4, mlp=4),
        _spec("gromacs", "FP", 0.37, 1.26, 0.410, 1,
              burstiness=0.7, burst_len=3),
        _spec("gobmk", "INT", 0.19, 0.94, 0.568, 1,
              burstiness=0.7, burst_len=3),
        _spec("dealII", "FP", 0.16, 0.86, 0.902, 1,
              burstiness=0.7, burst_len=4, bank_focus=2, mlp=2),
        _spec("wrf", "FP", 0.14, 0.77, 0.769, 1,
              burstiness=0.7, burst_len=3),
        _spec("sjeng", "INT", 0.12, 0.51, 0.234, 0,
              burstiness=0.7, burst_len=2, dependence=0.4, mlp=2),
        _spec("namd", "FP", 0.11, 0.54, 0.726, 1,
              burstiness=0.7, burst_len=3),
        _spec("tonto", "FP", 0.07, 0.39, 0.345, 0,
              burstiness=0.7, burst_len=2),
        _spec("gcc", "INT", 0.07, 0.42, 0.586, 1,
              burstiness=0.7, burst_len=3),
        _spec("calculix", "FP", 0.05, 0.29, 0.718, 1,
              burstiness=0.7, burst_len=2),
        _spec("perlbench", "INT", 0.03, 0.20, 0.698, 1,
              burstiness=0.7, burst_len=2),
        _spec("povray", "FP", 0.01, 0.09, 0.766, 1,
              burstiness=0.7, burst_len=2),
    ]
}


def benchmark(name: str) -> BenchmarkSpec:
    """Look up a benchmark spec by name (SPEC, desktop or streaming)."""
    if name in SPEC2006:
        return SPEC2006[name]
    from repro.workloads.desktop import DESKTOP_BENCHMARKS

    if name in DESKTOP_BENCHMARKS:
        return DESKTOP_BENCHMARKS[name]
    from repro.workloads.streaming import STREAMING_AGENTS

    if name in STREAMING_AGENTS:
        return STREAMING_AGENTS[name]
    raise KeyError(f"unknown benchmark {name!r}")


def benchmarks_by_category(category: int) -> list[BenchmarkSpec]:
    """All SPEC benchmarks in one of the paper's four categories."""
    if category not in (0, 1, 2, 3):
        raise ValueError("category must be 0..3")
    return [spec for spec in SPEC2006.values() if spec.category == category]


def intensive_order() -> list[BenchmarkSpec]:
    """Benchmarks ordered by memory intensiveness (Table 3 order)."""
    return sorted(SPEC2006.values(), key=lambda spec: -spec.mcpi)
