"""Workloads: benchmark characteristics and synthetic trace generation.

The paper drives its simulator with Pin traces of SPEC CPU2006 (Table 3)
and Windows desktop applications (Table 4).  We reproduce each benchmark
as a :class:`BenchmarkSpec` carrying the paper-reported characteristics
(memory intensity, row-buffer locality, category) plus the behavioural
annotations the paper's case studies call out (bank-access skew,
burstiness, pointer-chasing dependence), and synthesize seeded L2-miss
traces matching those statistics — see DESIGN.md, substitution 1.
"""

from repro.workloads.desktop import DESKTOP_BENCHMARKS
from repro.workloads.spec2006 import (
    BenchmarkSpec,
    SPEC2006,
    benchmark,
    benchmarks_by_category,
    intensive_order,
)
from repro.workloads.streaming import (
    STREAMING_AGENTS,
    heterogeneous_workloads,
    is_streaming_agent,
)
from repro.workloads.synthetic import SyntheticTraceGenerator, generate_trace
from repro.workloads.mixes import (
    category_pattern_workloads,
    sample_workloads_4core,
    sample_workloads_8core,
    sixteen_core_workloads,
    workload_name,
)

__all__ = [
    "BenchmarkSpec",
    "DESKTOP_BENCHMARKS",
    "SPEC2006",
    "STREAMING_AGENTS",
    "SyntheticTraceGenerator",
    "benchmark",
    "benchmarks_by_category",
    "category_pattern_workloads",
    "generate_trace",
    "heterogeneous_workloads",
    "intensive_order",
    "is_streaming_agent",
    "sample_workloads_4core",
    "sample_workloads_8core",
    "sixteen_core_workloads",
    "workload_name",
]
