"""Scheduling-policy interface.

The controller performs the mechanical two-level selection of Section 2.3
(per-bank best command, then a channel winner); a policy supplies the
priority order and receives hooks on the events it needs for its internal
state (enqueue, command issue, request completion).

Priorities are expressed as sortable tuples where *larger compares
higher*; the default :meth:`SchedulingPolicy.select` simply takes the
maximum over all ready candidates of a channel, which realizes both
scheduler levels at once (the per-bank maximum is a sub-problem of the
channel-wide maximum under a single total order).  Policies that need
per-bank state (e.g. NFQ's priority-inversion prevention) may override
:meth:`select`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.dram.commands import CommandCandidate

if TYPE_CHECKING:
    from repro.controller.controller import MemoryController, ScanInfo
    from repro.controller.request import MemoryRequest


class SchedulingPolicy:
    """Base class for DRAM command prioritization policies."""

    name = "base"

    #: Whether :meth:`on_command_issued` reads the ScanInfo side products
    #: (waiting/ready thread sets, oldest row-access arrivals).  The
    #: event-driven kernel only materializes the ScanInfo for policies
    #: that need it — others receive an empty shell carrying just the
    #: channel index.  The conservative default is True; policies that
    #: ignore the scan (or read only ``scan.channel``) override to False
    #: to skip a per-issue queue walk.  The naive kernel always builds
    #: the full ScanInfo, so a wrong True costs speed, never correctness.
    needs_scan = True

    #: Whether :meth:`select` is observationally pure — calling it on a
    #: frozen candidate set any number of times (including zero) leaves
    #: the policy in the same state as calling it once per tick.  The
    #: event kernel skips select calls across windows where no candidate
    #: is channel-ready; a policy whose select keeps per-tick state that
    #: those calls would mutate (NFQ's priority-inversion bookkeeping
    #: pops its blocked-window entry whenever the earliest-deadline
    #: candidate is a column) must set this False, which forces a live
    #: tick whenever the channel has any candidate at all.
    pure_select = True

    #: Whether :meth:`fast_forward` consumes ``stall_slopes`` to replay
    #: per-cycle stall counters (STFM).  Such policies need every core's
    #: counter slope to be *constant* across a skipped window, so the
    #: event kernel excludes compute-phase cores whose window still holds
    #: an in-flight memory entry (the slope could flip mid-window when it
    #: reaches the head).  Policies that ignore the slopes leave this
    #: False and permit those jumps.
    uses_stall_slopes = False

    def __init__(self) -> None:
        self.controller: "MemoryController | None" = None

    def bind(self, controller: "MemoryController") -> None:
        """Attach the policy to a controller (called once at setup)."""
        self.controller = controller

    # -- per-cycle hooks -------------------------------------------------
    def begin_cycle(self, now: int) -> None:
        """Called once per DRAM cycle before any channel is scheduled."""

    def fast_forward(
        self, start: int, ticks: int, stall_slopes: list[int]
    ) -> None:
        """Replay ``ticks`` consecutive :meth:`begin_cycle` calls at once.

        The event-driven kernel calls this instead of ``begin_cycle``
        when it skips an inert window — ``ticks`` DRAM cycles starting at
        CPU cycle ``start`` during which no command can issue, no request
        arrives or completes, and every core is provably idle or stalled.
        Queue contents are frozen across the window; the only inputs
        that change are the cores' stall counters, which grow linearly:
        ``stall_slopes[t]`` is 1 when thread ``t``'s counter gains one
        per CPU cycle (stalled on memory) and 0 when frozen (idle).

        Implementations must leave the policy in the exact state ``ticks``
        individual ``begin_cycle`` calls would have (the two kernels are
        differential-tested for bit-identity).  The base policy keeps no
        per-cycle state, so there is nothing to replay.
        """

    def select(
        self,
        channel_index: int,
        per_bank: dict[int, list[CommandCandidate]],
        now: int,
    ) -> CommandCandidate | None:
        """Pick the command to issue on a channel this cycle.

        Implements the paper's two-level scheduler (Section 2.3): the
        per-bank level selects the highest-priority bank-ready command of
        each bank; the across-bank level picks the highest-priority
        *channel-ready* winner.  A bank whose winner is waiting for the
        data bus issues nothing — it does not fall back to a
        lower-priority command, so a stream of row hits keeps its bank
        reserved.

        Args:
            channel_index: Which channel is being scheduled.
            per_bank: Bank-ready candidates, keyed by bank index.
                Candidates with ``channel_ready`` False satisfy only the
                bank-level constraints this cycle.
            now: Current CPU cycle.
        """
        best: CommandCandidate | None = None
        best_key = None
        for candidates in per_bank.values():
            winner: CommandCandidate | None = None
            winner_key = None
            for candidate in candidates:
                key = self.priority_key(candidate, now)
                if winner is None or key > winner_key:
                    winner = candidate
                    winner_key = key
            if winner is None or not winner.channel_ready:
                continue
            if best is None or winner_key > best_key:
                best = winner
                best_key = winner_key
        return best

    def priority_key(self, candidate: CommandCandidate, now: int):
        """Sortable priority of a candidate; larger wins."""
        raise NotImplementedError

    # -- event hooks -----------------------------------------------------
    def on_enqueue(self, request: "MemoryRequest", now: int) -> None:
        """A request entered the request buffer."""

    def on_command_issued(
        self, candidate: CommandCandidate, scan: "ScanInfo", now: int
    ) -> None:
        """A DRAM command was issued (after bank/bus state was updated)."""

    def on_request_completed(self, request: "MemoryRequest", now: int) -> None:
        """A request's column command issued; it left the request buffer."""


def oldest(candidates: Iterable[CommandCandidate]) -> CommandCandidate | None:
    """Utility: the earliest-arrival candidate (FCFS tie-break helper)."""
    best = None
    for candidate in candidates:
        if best is None or candidate.arrival < best.arrival:
            best = candidate
    return best
