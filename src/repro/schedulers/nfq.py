"""NFQ: network-fair-queueing memory scheduling (Nesbit et al., MICRO'06).

Implements the FQ-VFTF scheme the paper compares against (Section 4 and
Section 6.3): each thread maintains a *virtual finish time* (VFT) per
bank; when one of its requests is serviced in a bank, that VFT advances
by the request's access latency multiplied by the reciprocal of the
thread's bandwidth share (``num_threads`` for equal shares).  Ready
commands are prioritized earliest-virtual-deadline-first.

Nesbit et al.'s priority-inversion prevention optimization is included:
row-hit (column) commands may bypass an earlier-deadline row access only
for a bounded window (threshold ``tRAS``, the value used in the paper);
once the earliest-deadline request in a bank has been ready-but-bypassed
longer than the threshold, hit-first reordering is disabled in that bank
until it is serviced.

By construction this scheduler exhibits the two pathologies Section 4
analyzes — the *idleness problem* (bursty threads return from idleness
with lagging VFTs and capture the DRAM) and the *access-balance problem*
(threads concentrating on few banks accrue VFT quickly in those banks and
are deprioritized there).
"""

from __future__ import annotations

from repro.dram.commands import CommandCandidate
from repro.schedulers.base import SchedulingPolicy


class NfqPolicy(SchedulingPolicy):
    """Fair-queueing (FQ-VFTF) scheduler with virtual finish times."""

    name = "NFQ"
    # on_command_issued reads only scan.channel (present in the shell
    # ScanInfo the event kernel passes), never the thread sets.
    needs_scan = False
    # select maintains the inversion-prevention bookkeeping per call: it
    # stamps the cycle a bank's earliest-deadline row access first gets
    # bypassed and *clears* the entry whenever the earliest candidate is
    # a column.  Skipping select calls (as the event kernel's
    # all-columns-bus-blocked jump would) can leave a stale stamp alive,
    # shortening a later inversion window — so NFQ demands a live tick
    # whenever candidates exist.
    pure_select = False

    def __init__(
        self,
        num_threads: int,
        shares: list[float] | None = None,
        inversion_threshold_ns: float = 45.0,
    ) -> None:
        """Create the policy.

        Args:
            num_threads: Number of threads sharing the memory system.
            shares: Relative bandwidth share of each thread (NFQ's way of
                expressing thread weights, Section 7.5).  Defaults to
                equal shares.
            inversion_threshold_ns: Priority-inversion prevention window
                (tRAS in the paper's configuration).
        """
        super().__init__()
        self.num_threads = num_threads
        if shares is None:
            shares = [1.0] * num_threads
        if len(shares) != num_threads:
            raise ValueError("need one share per thread")
        if any(share <= 0 for share in shares):
            raise ValueError("shares must be positive")
        total = sum(shares)
        # A thread with share phi may be slowed by 1/phi of the machine:
        # servicing latency L advances its VFT by L * total / share.
        self._stretch = [total / share for share in shares]
        self.inversion_threshold_ns = inversion_threshold_ns
        self._inversion_threshold: int | None = None
        # (thread, channel, bank) -> virtual finish time.
        self._vft: dict[tuple[int, int, int], float] = {}
        # (channel, bank) -> (blocked request, cycle since which it has
        # been the bypassed earliest-deadline request in the bank).
        self._blocked_since: dict[tuple[int, int], tuple[object, int]] = {}

    def bind(self, controller) -> None:
        super().bind(controller)
        self._inversion_threshold = int(
            round(
                self.inversion_threshold_ns
                * controller.timing.cpu_freq_ghz
            )
        )

    def vft(self, thread_id: int, channel: int, bank: int) -> float:
        return self._vft.get((thread_id, channel, bank), 0.0)

    def select(self, channel_index, per_bank, now):
        best: CommandCandidate | None = None
        best_key = None
        for bank_index, candidates in per_bank.items():
            earliest = min(
                candidates,
                key=lambda c: (
                    self.vft(c.thread_id, channel_index, bank_index),
                    c.arrival,
                ),
            )
            hit_first = self._hit_first_allowed(
                channel_index, bank_index, earliest, now
            )
            winner: CommandCandidate | None = None
            winner_key = None
            for candidate in candidates:
                deadline = self.vft(
                    candidate.thread_id, channel_index, bank_index
                )
                key = (
                    1 if (hit_first and candidate.is_column) else 0,
                    -deadline,
                    -candidate.arrival,
                )
                if winner is None or key > winner_key:
                    winner = candidate
                    winner_key = key
            if winner is None or not winner.channel_ready:
                continue
            if best is None or winner_key > best_key:
                best = winner
                best_key = winner_key
        return best

    def _hit_first_allowed(
        self,
        channel_index: int,
        bank_index: int,
        earliest: CommandCandidate,
        now: int,
    ) -> bool:
        """Apply the priority-inversion prevention window."""
        bank_key = (channel_index, bank_index)
        if earliest.is_column:
            # The earliest-deadline command is itself a row hit; no
            # inversion is possible.
            self._blocked_since.pop(bank_key, None)
            return True
        tracked = self._blocked_since.get(bank_key)
        if tracked is None or tracked[0] is not earliest.request:
            # A (new) earliest-deadline request is being bypassed; its
            # inversion window starts now.
            self._blocked_since[bank_key] = (earliest.request, now)
            return True
        assert self._inversion_threshold is not None
        return now - tracked[1] <= self._inversion_threshold

    def priority_key(self, candidate: CommandCandidate, now: int):
        raise NotImplementedError("NfqPolicy overrides select()")

    def on_command_issued(self, candidate, scan, now) -> None:
        bank_key = (scan.channel, candidate.bank_index)
        tracked = self._blocked_since.get(bank_key)
        if tracked is not None and tracked[0] is candidate.request:
            # The bypassed request finally made progress; the window for
            # the *next* earliest request starts fresh.
            self._blocked_since.pop(bank_key)
        if not candidate.is_column:
            return
        request = candidate.request
        key = (request.thread_id, scan.channel, candidate.bank_index)
        # The serviced request's latency depends on how the bank had to be
        # accessed; use the request's actual service composition.
        timing = self.controller.timing
        latency = timing.cl + timing.burst
        if request.got_activate:
            latency += timing.rcd
        if request.got_precharge:
            latency += timing.rp
        # Pure accumulation, as the paper describes the scheme (Section
        # 4): "the thread's virtual deadline in this bank is increased by
        # the request's access latency times the number of threads."
        # There is deliberately no flooring against real time — an idle
        # thread's stale (small) deadline is precisely what produces the
        # idleness problem the paper analyzes.
        current = self._vft.get(key, 0.0)
        self._vft[key] = current + latency * self._stretch[request.thread_id]
