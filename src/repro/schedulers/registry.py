"""Factory for the paper's five scheduling policies and the follow-on
literature's extension zoo (PAR-BS, BLISS, MISE-STFM, STAGED)."""

from __future__ import annotations

from typing import Callable

from repro.schedulers.base import SchedulingPolicy
from repro.schedulers.bliss import BlissPolicy
from repro.schedulers.fcfs import FcfsPolicy
from repro.schedulers.frfcfs import FrFcfsPolicy
from repro.schedulers.frfcfs_cap import FrFcfsCapPolicy
from repro.schedulers.nfq import NfqPolicy
from repro.schedulers.parbs import ParBsPolicy
from repro.schedulers.staged import StagedPolicy


def _make_frfcfs(num_threads: int, **kwargs) -> SchedulingPolicy:
    return FrFcfsPolicy()


def _make_fcfs(num_threads: int, **kwargs) -> SchedulingPolicy:
    return FcfsPolicy()


def _make_frfcfs_cap(num_threads: int, **kwargs) -> SchedulingPolicy:
    return FrFcfsCapPolicy(cap=kwargs.get("cap", 4))


def _make_nfq(num_threads: int, **kwargs) -> SchedulingPolicy:
    return NfqPolicy(num_threads, shares=kwargs.get("shares"))


def _make_parbs(num_threads: int, **kwargs) -> SchedulingPolicy:
    return ParBsPolicy(num_threads, marking_cap=kwargs.get("marking_cap", 5))


def _make_stfm(num_threads: int, **kwargs) -> SchedulingPolicy:
    from repro.core.stfm import StfmPolicy

    return StfmPolicy(
        num_threads,
        alpha=kwargs.get("alpha", 1.10),
        gamma=kwargs.get("gamma", 1.0),
        interval_length=kwargs.get("interval_length", 1 << 24),
        weights=kwargs.get("weights"),
        interference_basis=kwargs.get("interference_basis", "waiting"),
    )


def _make_bliss(num_threads: int, **kwargs) -> SchedulingPolicy:
    return BlissPolicy(
        num_threads,
        threshold=kwargs.get("threshold", 4),
        clearing_interval=kwargs.get("clearing_interval", 10_000),
    )


def _make_mise_stfm(num_threads: int, **kwargs) -> SchedulingPolicy:
    from repro.core.mise import MiseStfmPolicy

    return MiseStfmPolicy(
        num_threads,
        alpha=kwargs.get("alpha", 1.10),
        epoch_length=kwargs.get("epoch_length", 2_000),
        weights=kwargs.get("weights"),
    )


def _make_staged(num_threads: int, **kwargs) -> SchedulingPolicy:
    streaming = kwargs.get("streaming_threads")
    return StagedPolicy(
        num_threads,
        streaming_threads=streaming,
        epoch_length=kwargs.get("epoch_length", 2_000),
        spill_factor=kwargs.get("spill_factor", 2.0),
        min_epoch_requests=kwargs.get("min_epoch_requests", 32),
    )


_FACTORIES: dict[str, Callable[..., SchedulingPolicy]] = {
    "fr-fcfs": _make_frfcfs,
    "fcfs": _make_fcfs,
    "fr-fcfs+cap": _make_frfcfs_cap,
    "nfq": _make_nfq,
    "stfm": _make_stfm,
    # Extensions from the follow-on literature (see DESIGN.md §3.17):
    # the batch scheduler that succeeded STFM (ISCA 2008), the
    # blacklisting scheduler (ICCD 2014), STFM's fairness rule on MISE
    # service-rate slowdowns (HPCA 2013), and staged scheduling for
    # heterogeneous CPU+GPU traffic (ISCA 2012).
    "par-bs": _make_parbs,
    "bliss": _make_bliss,
    "mise-stfm": _make_mise_stfm,
    "staged": _make_staged,
}

#: Canonical display names, in the order the paper's figures use.  The
#: extension schedulers are additionally available via
#: :func:`make_policy` but excluded from paper-figure sweeps.
PAPER_ORDER = ["fr-fcfs", "fcfs", "fr-fcfs+cap", "nfq", "stfm"]

#: Extension schedulers from the follow-on literature, in chronological
#: order of publication.
EXTENSION_ORDER = ["par-bs", "bliss", "mise-stfm", "staged"]


def available_policies(include_extensions: bool = False) -> list[str]:
    """Names accepted by :func:`make_policy`, in the paper's order."""
    names = list(PAPER_ORDER)
    if include_extensions:
        names.extend(EXTENSION_ORDER)
    return names


def make_policy(name: str, num_threads: int, **kwargs) -> SchedulingPolicy:
    """Instantiate a scheduling policy by name.

    Args:
        name: One of ``fr-fcfs``, ``fcfs``, ``fr-fcfs+cap``, ``nfq``,
            ``stfm``, or an extension — ``par-bs``, ``bliss``,
            ``mise-stfm``, ``staged`` (case-insensitive).
        num_threads: Threads sharing the memory system (needed by the
            thread-aware policies).
        **kwargs: Policy-specific options — ``cap`` for FR-FCFS+Cap;
            ``shares`` for NFQ; ``alpha``, ``gamma``, ``interval_length``
            and ``weights`` for STFM; ``marking_cap`` for PAR-BS;
            ``threshold`` and ``clearing_interval`` for BLISS; ``alpha``,
            ``epoch_length`` and ``weights`` for MISE-STFM;
            ``streaming_threads``, ``epoch_length``, ``spill_factor``
            and ``min_epoch_requests`` for STAGED.
    """
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; available: "
            f"{', '.join(PAPER_ORDER + EXTENSION_ORDER)}"
        ) from None
    return factory(num_threads, **kwargs)
