"""Factory for the five scheduling policies evaluated in the paper."""

from __future__ import annotations

from typing import Callable

from repro.schedulers.base import SchedulingPolicy
from repro.schedulers.fcfs import FcfsPolicy
from repro.schedulers.frfcfs import FrFcfsPolicy
from repro.schedulers.frfcfs_cap import FrFcfsCapPolicy
from repro.schedulers.nfq import NfqPolicy
from repro.schedulers.parbs import ParBsPolicy


def _make_frfcfs(num_threads: int, **kwargs) -> SchedulingPolicy:
    return FrFcfsPolicy()


def _make_fcfs(num_threads: int, **kwargs) -> SchedulingPolicy:
    return FcfsPolicy()


def _make_frfcfs_cap(num_threads: int, **kwargs) -> SchedulingPolicy:
    return FrFcfsCapPolicy(cap=kwargs.get("cap", 4))


def _make_nfq(num_threads: int, **kwargs) -> SchedulingPolicy:
    return NfqPolicy(num_threads, shares=kwargs.get("shares"))


def _make_parbs(num_threads: int, **kwargs) -> SchedulingPolicy:
    return ParBsPolicy(num_threads, marking_cap=kwargs.get("marking_cap", 5))


def _make_stfm(num_threads: int, **kwargs) -> SchedulingPolicy:
    from repro.core.stfm import StfmPolicy

    return StfmPolicy(
        num_threads,
        alpha=kwargs.get("alpha", 1.10),
        gamma=kwargs.get("gamma", 1.0),
        interval_length=kwargs.get("interval_length", 1 << 24),
        weights=kwargs.get("weights"),
        interference_basis=kwargs.get("interference_basis", "waiting"),
    )


_FACTORIES: dict[str, Callable[..., SchedulingPolicy]] = {
    "fr-fcfs": _make_frfcfs,
    "fcfs": _make_fcfs,
    "fr-fcfs+cap": _make_frfcfs_cap,
    "nfq": _make_nfq,
    "stfm": _make_stfm,
    # Extension: the batch scheduler that succeeded STFM (ISCA 2008).
    "par-bs": _make_parbs,
}

#: Canonical display names, in the order the paper's figures use.  The
#: extension scheduler PAR-BS is additionally available via
#: :func:`make_policy` but excluded from paper-figure sweeps.
PAPER_ORDER = ["fr-fcfs", "fcfs", "fr-fcfs+cap", "nfq", "stfm"]


def available_policies(include_extensions: bool = False) -> list[str]:
    """Names accepted by :func:`make_policy`, in the paper's order."""
    names = list(PAPER_ORDER)
    if include_extensions:
        names.append("par-bs")
    return names


def make_policy(name: str, num_threads: int, **kwargs) -> SchedulingPolicy:
    """Instantiate a scheduling policy by name.

    Args:
        name: One of ``fr-fcfs``, ``fcfs``, ``fr-fcfs+cap``, ``nfq``,
            ``stfm`` (case-insensitive).
        num_threads: Threads sharing the memory system (needed by the
            thread-aware policies).
        **kwargs: Policy-specific options — ``cap`` for FR-FCFS+Cap;
            ``shares`` for NFQ; ``alpha``, ``gamma``, ``interval_length``
            and ``weights`` for STFM.
    """
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; available: {', '.join(PAPER_ORDER)}"
        ) from None
    return factory(num_threads, **kwargs)
