"""FR-FCFS: first-ready, first-come-first-serve (Rixner et al.).

The paper's baseline and the best-throughput single-thread scheduler
(Section 2.4).  Priority order among ready commands:

1. Column-first: ready column accesses (read/write) over ready row
   accesses (activate/precharge) — maximizes row-buffer hit rate.
2. Oldest-first: earlier-arriving requests over later ones.

Being thread-unaware, FR-FCFS unfairly favors threads with high
row-buffer locality and high memory intensity (Section 2.5) — the
behaviour Figures 1 and 5(a) demonstrate.
"""

from __future__ import annotations

from repro.dram.commands import CommandCandidate
from repro.schedulers.base import SchedulingPolicy


class FrFcfsPolicy(SchedulingPolicy):
    """First-ready FCFS prioritization."""

    name = "FR-FCFS"
    needs_scan = False  # stateless: never reads the scan side-info

    def priority_key(self, candidate: CommandCandidate, now: int):
        return (1 if candidate.is_column else 0, -candidate.arrival)
