"""DRAM scheduling policies evaluated in the paper.

Baselines: FR-FCFS (Section 2.4), FCFS, FR-FCFS+Cap and NFQ (Section 4).
The paper's contribution, STFM, lives in :mod:`repro.core`.
"""

from repro.schedulers.base import SchedulingPolicy
from repro.schedulers.fcfs import FcfsPolicy
from repro.schedulers.frfcfs import FrFcfsPolicy
from repro.schedulers.frfcfs_cap import FrFcfsCapPolicy
from repro.schedulers.nfq import NfqPolicy
from repro.schedulers.registry import available_policies, make_policy

__all__ = [
    "FcfsPolicy",
    "FrFcfsCapPolicy",
    "FrFcfsPolicy",
    "NfqPolicy",
    "SchedulingPolicy",
    "available_policies",
    "make_policy",
]
