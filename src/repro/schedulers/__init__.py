"""DRAM scheduling policies evaluated in the paper.

Baselines: FR-FCFS (Section 2.4), FCFS, FR-FCFS+Cap and NFQ (Section 4).
The paper's contribution, STFM, lives in :mod:`repro.core`.  The
extension zoo from the follow-on literature — PAR-BS, BLISS, MISE-STFM
and STAGED — lives alongside the baselines here (MISE-STFM in
:mod:`repro.core.mise`, next to the STFM machinery it reuses).
"""

from repro.schedulers.base import SchedulingPolicy
from repro.schedulers.bliss import BlissPolicy
from repro.schedulers.fcfs import FcfsPolicy
from repro.schedulers.frfcfs import FrFcfsPolicy
from repro.schedulers.frfcfs_cap import FrFcfsCapPolicy
from repro.schedulers.nfq import NfqPolicy
from repro.schedulers.parbs import ParBsPolicy
from repro.schedulers.registry import available_policies, make_policy
from repro.schedulers.staged import StagedPolicy

__all__ = [
    "BlissPolicy",
    "FcfsPolicy",
    "FrFcfsCapPolicy",
    "FrFcfsPolicy",
    "NfqPolicy",
    "ParBsPolicy",
    "SchedulingPolicy",
    "StagedPolicy",
    "available_policies",
    "make_policy",
]
