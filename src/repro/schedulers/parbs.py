"""PAR-BS: Parallelism-Aware Batch Scheduling (extension).

STFM's authors followed it with PAR-BS (Mutlu & Moscibroda, ISCA 2008),
which provides fairness through *request batching* instead of slowdown
estimation; the paper under reproduction is the direct ancestor, so we
include a faithful-in-spirit PAR-BS as an extension scheduler for
head-to-head comparisons (experiment ``extension-parbs``).

Mechanism:

* **Batching** — when no marked requests remain, mark the oldest up to
  ``marking_cap`` outstanding reads of each thread in each bank.  Marked
  requests are strictly prioritized over unmarked ones, which bounds any
  thread's interference-induced wait (no stream can starve a batch).
* **Within a batch** — threads are ranked by the *shortest-job-first*
  heuristic: ascending maximum per-bank marked-request count (the "max"
  rule), ties broken by ascending total marked requests.  Non-intensive
  threads finish their share of the batch quickly and get out of the
  intensive threads' way, preserving each thread's bank-level
  parallelism (requests of one thread are serviced concurrently).
* **Priority order** — marked-first, then row-hit-first, then
  higher-rank-first, then oldest-first.
"""

from __future__ import annotations

from repro.dram.commands import CommandCandidate
from repro.schedulers.base import SchedulingPolicy


class ParBsPolicy(SchedulingPolicy):
    """Parallelism-aware batch scheduler."""

    name = "PAR-BS"
    needs_scan = False  # priorities derive from marks/ranks, not the scan

    def __init__(self, num_threads: int, marking_cap: int = 5) -> None:
        """Create the policy.

        Args:
            num_threads: Threads sharing the memory system.
            marking_cap: Maximum requests marked per thread per bank when
                a batch forms (5 in the PAR-BS paper).
        """
        super().__init__()
        if marking_cap < 1:
            raise ValueError("marking_cap must be at least 1")
        self.num_threads = num_threads
        self.marking_cap = marking_cap
        # Marked requests by their controller-assigned sequence number
        # (MemoryRequest.seq): stable and never reused, unlike id(),
        # whose values recycle after GC and can corrupt membership.
        self._marked: set[int] = set()
        self._rank_priority = [0] * num_threads
        self.batches_formed = 0

    # -- batching ---------------------------------------------------------
    def begin_cycle(self, now: int) -> None:
        if not self._marked:
            self._form_batch()

    def fast_forward(self, start, ticks, stall_slopes) -> None:
        """Inert-window replay: with frozen queues, ``ticks`` begin_cycle
        calls collapse to one.  Either the first call forms a non-empty
        batch (later calls no-op on ``self._marked``) or the queues hold
        no requests and every call returns without side effects."""
        if not self._marked:
            self._form_batch()

    def _form_batch(self) -> None:
        assert self.controller is not None
        queues = self.controller.queues
        per_thread_bank: dict[int, list[int]] = {
            t: [] for t in range(self.num_threads)
        }
        marked: set[int] = set()
        any_requests = False
        for channel_queues in queues.channels:
            for bank_queue in channel_queues.bank_queues:
                if not bank_queue:
                    continue
                any_requests = True
                taken: dict[int, int] = {}
                for request in sorted(bank_queue, key=lambda r: r.arrival):
                    count = taken.get(request.thread_id, 0)
                    if count >= self.marking_cap:
                        continue
                    taken[request.thread_id] = count + 1
                    marked.add(request.seq)
                for thread, count in taken.items():
                    per_thread_bank[thread].append(count)
        if not any_requests:
            return
        self._marked = marked
        self.batches_formed += 1
        self._rank_threads(per_thread_bank)

    def _rank_threads(self, per_thread_bank: dict[int, list[int]]) -> None:
        """Shortest-job-first ranking: lighter threads rank higher."""

        def load(thread: int) -> tuple[int, int]:
            counts = per_thread_bank[thread]
            return (max(counts, default=0), sum(counts))

        ordered = sorted(range(self.num_threads), key=load)
        # Higher priority value wins in the key; the lightest thread
        # (ordered[0]) gets the largest value.
        for position, thread in enumerate(ordered):
            self._rank_priority[thread] = self.num_threads - 1 - position

    # -- prioritization ------------------------------------------------------
    def priority_key(self, candidate: CommandCandidate, now: int):
        return (
            1 if candidate.request.seq in self._marked else 0,
            1 if candidate.is_column else 0,
            self._rank_priority[candidate.thread_id],
            -candidate.arrival,
        )

    def on_request_completed(self, request, now: int) -> None:
        self._marked.discard(request.seq)

    @property
    def marked_remaining(self) -> int:
        return len(self._marked)
