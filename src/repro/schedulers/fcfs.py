"""FCFS: plain first-come-first-serve over ready DRAM commands.

The simplest "fair" scheduler discussed in Section 4: it removes the
row-buffer-locality bias of FR-FCFS but still implicitly prioritizes
memory-intensive threads (their requests dominate the head of the queue)
and sacrifices DRAM throughput by ignoring open rows.
"""

from __future__ import annotations

from repro.dram.commands import CommandCandidate
from repro.schedulers.base import SchedulingPolicy


class FcfsPolicy(SchedulingPolicy):
    """Oldest-first prioritization among ready commands."""

    name = "FCFS"
    needs_scan = False  # stateless: never reads the scan side-info

    def priority_key(self, candidate: CommandCandidate, now: int):
        return (-candidate.arrival, 1 if candidate.is_column else 0)
