"""FR-FCFS+Cap: FR-FCFS with a cap on column-over-row reordering.

The new comparison algorithm introduced in Section 4 of the paper: per
bank, at most ``cap`` younger column (row-hit) accesses may be serviced
while an older request still awaiting a row access (activate/precharge)
waits in the same bank.  Once the cap is reached the bank falls back to
FCFS until a row access is serviced, which resets the counter.

This bounds the streaming-thread starvation of FR-FCFS (a 2 KB row can
otherwise source 256 consecutive row hits past a waiting row-conflict
request, Section 2.5) but retains FCFS's bias toward memory-intensive
threads.
"""

from __future__ import annotations

from repro.dram.commands import CommandCandidate
from repro.schedulers.base import SchedulingPolicy


class FrFcfsCapPolicy(SchedulingPolicy):
    """FR-FCFS with a per-bank column-bypass cap (default 4, Section 6.3)."""

    name = "FR-FCFS+Cap"

    def __init__(self, cap: int = 4) -> None:
        super().__init__()
        if cap < 1:
            raise ValueError("cap must be at least 1")
        self.cap = cap
        # (channel, bank) -> younger-column bypass count since the last
        # row access serviced in that bank.
        self._bypass_counts: dict[tuple[int, int], int] = {}
        self._channel_being_scanned = 0

    def select(self, channel_index, per_bank, now):
        self._channel_being_scanned = channel_index
        return super().select(channel_index, per_bank, now)

    def priority_key(self, candidate: CommandCandidate, now: int):
        bank_key = (self._channel_being_scanned, candidate.bank_index)
        capped = self._bypass_counts.get(bank_key, 0) >= self.cap
        column_priority = 1 if (candidate.is_column and not capped) else 0
        return (column_priority, -candidate.arrival)

    def on_command_issued(self, candidate, scan, now) -> None:
        bank_key = (scan.channel, candidate.bank_index)
        if candidate.is_column:
            oldest_row_access = scan.oldest_row_access_arrival.get(
                candidate.bank_index
            )
            bypassed_older = (
                oldest_row_access is not None
                and oldest_row_access < candidate.arrival
            )
            if bypassed_older:
                self._bypass_counts[bank_key] = (
                    self._bypass_counts.get(bank_key, 0) + 1
                )
        else:
            # A row access was serviced: the waiting row access made
            # progress, so the bypass window restarts.
            self._bypass_counts[bank_key] = 0
