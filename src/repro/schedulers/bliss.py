"""BLISS: the Blacklisting Memory Scheduler (extension).

Subramanian et al. ("The Blacklisting Memory Scheduler", ICCD 2014;
journal version TPDS 2016) follow up on STFM/PAR-BS with a deliberately
minimal design: instead of computing per-thread slowdowns (STFM's
register file) or forming batches (PAR-BS), the controller merely
observes *consecutive service*: a counter tracks how many requests in a
row were serviced from the same application, and once the streak exceeds
the *blacklisting threshold* the application is blacklisted.
Non-blacklisted applications are strictly prioritized; the blacklist is
cleared periodically so no application is penalized forever.

The state is two registers plus one bit per hardware thread — far
simpler than STFM — yet the scheme breaks the row-hit capture that makes
FR-FCFS unfair: a streaming thread that monopolizes service is demoted
after ``threshold`` consecutive requests, letting interleaved threads
through.

Priority order: non-blacklisted first, then row-hit (column) first, then
oldest first.  Parameter defaults follow the paper: a blacklisting
threshold of 4 consecutive requests and a clearing interval of 10000
DRAM cycles.
"""

from __future__ import annotations

from repro.dram.commands import CommandCandidate
from repro.schedulers.base import SchedulingPolicy


class BlissPolicy(SchedulingPolicy):
    """Blacklisting memory scheduler."""

    name = "BLISS"
    # Priorities derive from the blacklist bits alone; the per-issue
    # ScanInfo side products are never read.
    needs_scan = False

    def __init__(
        self,
        num_threads: int,
        threshold: int = 4,
        clearing_interval: int = 10_000,
    ) -> None:
        """Create the policy.

        Args:
            num_threads: Threads sharing the memory system.
            threshold: Consecutive serviced requests from one thread
                beyond which it is blacklisted (4 in the paper).
            clearing_interval: DRAM cycles between blacklist clears
                (10000 in the paper).
        """
        super().__init__()
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        if clearing_interval < 1:
            raise ValueError("clearing_interval must be at least 1")
        self.num_threads = num_threads
        self.threshold = threshold
        self.clearing_interval = clearing_interval
        # The paper's two registers: the application id of the last
        # serviced request and the length of the current service streak.
        self._streak_thread: int | None = None
        self._streak = 0
        # One bit per hardware thread.
        self._blacklisted = [False] * num_threads
        # DRAM cycles since the last blacklist clear.
        self._ticks = 0
        # Diagnostics.
        self.blacklist_events = 0
        self.clears = 0

    # -- per-cycle timer --------------------------------------------------
    def begin_cycle(self, now: int) -> None:
        self._ticks += 1
        if self._ticks >= self.clearing_interval:
            self._ticks = 0
            self._clear()

    def fast_forward(self, start, ticks, stall_slopes) -> None:
        """Inert-window replay: only the clearing timer advances.

        No request is serviced during an inert window, so the streak
        registers are frozen; the per-cycle work reduces to the timer,
        which is replayed boundary by boundary (clearing is idempotent,
        but the tick counter must land on the exact per-tick value).
        """
        remaining = ticks
        while remaining > 0:
            to_boundary = self.clearing_interval - self._ticks
            if remaining < to_boundary:
                self._ticks += remaining
                break
            self._ticks = 0
            self._clear()
            remaining -= to_boundary

    def _clear(self) -> None:
        self.clears += 1
        for thread in range(self.num_threads):
            self._blacklisted[thread] = False

    # -- prioritization ---------------------------------------------------
    def priority_key(self, candidate: CommandCandidate, now: int):
        return (
            0 if self._blacklisted[candidate.thread_id] else 1,
            1 if candidate.is_column else 0,
            -candidate.arrival,
        )

    # -- event hooks ------------------------------------------------------
    def on_request_completed(self, request, now: int) -> None:
        """A request was serviced: update the streak registers."""
        thread = request.thread_id
        if thread == self._streak_thread:
            self._streak += 1
            if self._streak > self.threshold and not self._blacklisted[thread]:
                self._blacklisted[thread] = True
                self.blacklist_events += 1
        else:
            self._streak_thread = thread
            self._streak = 1

    @property
    def blacklisted_threads(self) -> list[int]:
        """Currently blacklisted thread ids (diagnostics)."""
        return [t for t in range(self.num_threads) if self._blacklisted[t]]
