"""Staged scheduling for heterogeneous CPU+GPU systems (extension).

Ausavarungnirun et al.'s Staged Memory Scheduling (ISCA 2012) splits
scheduling into stages; the stage that matters for fairness in a
heterogeneous system is the *between-class* one: GPU-like streaming
agents are bandwidth hungry but latency tolerant, so their requests are
deprioritized below all CPU requests — the CPU cores' latency-sensitive
misses are served first, and the streaming agent soaks up the remaining
bandwidth (which row-hit batching keeps high).

This variant keeps SMS's classification *online*, the way the paper
motivates it (the controller cannot trust a static label): every epoch
it measures each hardware thread's share of serviced requests, and a
thread consuming more than ``spill_factor`` times its fair share is
classified as streaming for the next epoch.  A static
``streaming_threads`` override is accepted for systems where the
topology is known (e.g. core 0 is the GPU).

Priority order: CPU (non-streaming) class first, then row-hit first,
then oldest first — within the streaming class the same rule preserves
row-buffer batching, which is what keeps the GPU's bandwidth high while
it is deprioritized.
"""

from __future__ import annotations

from repro.dram.commands import CommandCandidate
from repro.schedulers.base import SchedulingPolicy


class StagedPolicy(SchedulingPolicy):
    """Between-class staged scheduler: deprioritize streaming agents."""

    name = "STAGED"
    # Priorities derive from the class bits; the scan is never read.
    needs_scan = False

    def __init__(
        self,
        num_threads: int,
        streaming_threads: "tuple[int, ...] | list[int] | None" = None,
        epoch_length: int = 2_000,
        spill_factor: float = 2.0,
        min_epoch_requests: int = 32,
    ) -> None:
        """Create the policy.

        Args:
            num_threads: Threads sharing the memory system.
            streaming_threads: Static class assignment; None enables
                online classification by bandwidth share.
            epoch_length: Classification-epoch length in DRAM cycles.
            spill_factor: A thread is classified streaming when its
                serviced-request count exceeds ``spill_factor`` times
                the fair share of the epoch's total.
            min_epoch_requests: Epochs with fewer total serviced
                requests than this leave every thread unclassified
                (too little signal to call anyone a hog).
        """
        super().__init__()
        if epoch_length < 1:
            raise ValueError("epoch_length must be at least 1")
        if spill_factor <= 1.0:
            raise ValueError("spill_factor must exceed 1.0")
        self.num_threads = num_threads
        self.epoch_length = epoch_length
        self.spill_factor = spill_factor
        self.min_epoch_requests = min_epoch_requests
        self._static = streaming_threads is not None
        self._streaming = [False] * num_threads
        if streaming_threads is not None:
            for thread in streaming_threads:
                self._streaming[thread] = True
        self._epoch_served = [0] * num_threads
        self._epoch_tick = 0
        self.reclassifications = 0

    # -- per-cycle timer --------------------------------------------------
    def begin_cycle(self, now: int) -> None:
        if self._static:
            return
        self._epoch_tick += 1
        if self._epoch_tick >= self.epoch_length:
            self._epoch_tick = 0
            self._classify()

    def fast_forward(self, start, ticks, stall_slopes) -> None:
        """Inert-window replay: only the classification timer advances.

        Serviced-request counts are frozen across an inert window, so
        boundary crossings replay :meth:`_classify` against the same
        counts :meth:`begin_cycle` would have seen tick by tick.
        """
        if self._static:
            return
        remaining = ticks
        while remaining > 0:
            to_boundary = self.epoch_length - self._epoch_tick
            if remaining < to_boundary:
                self._epoch_tick += remaining
                break
            self._epoch_tick = 0
            self._classify()
            remaining -= to_boundary

    def _classify(self) -> None:
        """Reclassify threads from the finished epoch's service shares."""
        total = sum(self._epoch_served)
        if total < self.min_epoch_requests:
            new = [False] * self.num_threads
        else:
            cutoff = self.spill_factor * total / self.num_threads
            new = [served > cutoff for served in self._epoch_served]
        if new != self._streaming:
            self.reclassifications += 1
            self._streaming = new
        for thread in range(self.num_threads):
            self._epoch_served[thread] = 0

    # -- prioritization ---------------------------------------------------
    def priority_key(self, candidate: CommandCandidate, now: int):
        return (
            0 if self._streaming[candidate.thread_id] else 1,
            1 if candidate.is_column else 0,
            -candidate.arrival,
        )

    # -- event hooks ------------------------------------------------------
    def on_request_completed(self, request, now: int) -> None:
        if not self._static:
            self._epoch_served[request.thread_id] += 1

    @property
    def streaming_classified(self) -> list[int]:
        """Thread ids currently classified as streaming (diagnostics)."""
        return [t for t in range(self.num_threads) if self._streaming[t]]
