"""repro.faults — deterministic, seeded fault injection.

The engine, store, service and client all claim to survive crashes,
corruption and hangs.  This module is how those claims get *exercised*:
a set of named injection points, each firing with a configured
probability, activated by the ``STFM_SIM_FAULTS`` environment variable
(which the ``--inject`` CLI flag sets — the same pattern as the PR 3
protocol sanitizer, so the toggle inherits into fork workers and never
perturbs engine cache keys).

=============  ==========================================================
``crash``      a worker process exits mid-job (engine)
``hang``       a worker process stops making progress (engine)
``timeout``    the parent declares a healthy worker timed out (engine)
``corrupt``    a store read observes torn/garbage bytes (store)
``write``      a store write raises ``OSError`` ENOSPC (store)
``service``    a service worker raises mid-execution (service)
``drop``       the client's connection drops before a request (client)
``refused``    a connection is refused before any bytes leave (network)
``reset``      the connection resets *after* the request was sent — the
               peer may have processed it; the response is lost (network)
``latency``    injected latency past the client timeout (network)
``partition``  a partition window opens: the peer is unreachable for a
               while and the store proxy degrades to local-cache-only
               (network)
``truncate``   a response body arrives truncated mid-stream (network)
=============  ==========================================================

Determinism is the whole point.  A decision is a *pure function* of
``(seed, site, key)``: each consultation draws from a dedicated
``random.Random`` seeded with exactly that triple, so whether a given
fault fires does not depend on thread scheduling, worker interleaving,
or how many other sites fired first — a replayed run with the same
fault seed reproduces the identical fault sequence.  Keys carry the
attempt number where retries must eventually succeed (a job that
crashed on attempt 1 draws fresh on attempt 2).

With ``STFM_SIM_FAULTS`` unset every hook is a near-zero-cost no-op
(one environment lookup and string compare), and the injected faults
never change simulation *inputs*: a chaos run that completes is
bit-identical to a fault-free run.
"""

from __future__ import annotations

import os
import random
import re
import threading

#: Environment toggle the CLI sets; worker processes inherit it.
FAULTS_ENV = "STFM_SIM_FAULTS"

#: Every named injection point (see the module docstring table).
SITES = (
    "crash",
    "hang",
    "timeout",
    "corrupt",
    "write",
    "service",
    "drop",
    "refused",
    "reset",
    "latency",
    "partition",
    "truncate",
)

#: Sites whose keys are *content-derived* (store keys, job ids) rather
#: than wall-clock-derived.  The chaos soak harness compares the set of
#: fired ``(site, key)`` decisions between a chaos run and its replay
#: over exactly these sites — the keys below are consulted for the same
#: identities in both runs regardless of scheduling, so the fired sets
#: must match exactly.  One carve-out: a key containing ``#`` marks a
#: *request-attempt-scoped* decision (the client keys transport faults
#: by ``"METHOD /path #attempt"``); those streams depend on how many
#: requests a particular interleaving issued, so
#: :func:`replay_stable_decisions` filters them out too.
REPLAY_STABLE_SITES = frozenset(
    {"crash", "hang", "timeout", "corrupt", "write",
     "refused", "reset", "latency", "partition", "truncate"}
)


def replay_stable_decisions(
    fired: "set[tuple[str, str]]",
) -> "set[tuple[str, str]]":
    """The subset of fired decisions a replayed run must reproduce
    exactly: replay-stable sites, minus attempt-scoped (``#``) keys."""
    return {
        (site, key)
        for site, key in fired
        if site in REPLAY_STABLE_SITES and "#" not in key
    }

#: Optional durable spool for fired decisions: when this names a
#: directory, every firing appends one ``site\tkey`` line to a
#: per-process file inside it (open/append/close per firing, so a
#: ``kill -9`` loses at most the decision in flight).  The chaos
#: harness points every cluster process at one spool directory and
#: diffs the union afterwards.
FAULT_LOG_ENV = "STFM_SIM_FAULT_LOG"

#: How long an injected hang sleeps — longer than any sane per-job
#: timeout, short enough that a run *without* one eventually finishes.
HANG_SECONDS = 30.0


class FaultSpecError(ValueError):
    """An ``--inject`` / ``STFM_SIM_FAULTS`` spec failed to parse."""


class FaultPlan:
    """A parsed injection config: per-site probabilities plus the seed.

    ``fires`` is safe to call from any thread or (forked) process; the
    firing counters and log are per-process and protected by a lock.
    """

    def __init__(self, rates: "dict[str, float]", seed: int = 0) -> None:
        for site, rate in rates.items():
            if site not in SITES:
                raise FaultSpecError(
                    f"unknown fault site {site!r} (known: {', '.join(SITES)})"
                )
            if not 0.0 <= rate <= 1.0:
                raise FaultSpecError(
                    f"fault rate for {site!r} must be in [0, 1], got {rate!r}"
                )
        self.rates = dict(rates)
        self.seed = seed
        self.counters: dict[str, int] = {}
        self.log: list[tuple[str, str]] = []
        self._lock = threading.Lock()

    def fires(self, site: str, key: str = "") -> bool:
        """Whether the fault at ``site`` fires for ``key``.

        Deterministic: the decision depends only on (seed, site, key).
        Consulting the same (site, key) twice returns the same answer
        but records the firing only once per consultation.
        """
        rate = self.rates.get(site, 0.0)
        if rate <= 0.0:
            return False
        draw = random.Random(f"{self.seed}:{site}:{key}").random()
        if draw >= rate:
            return False
        with self._lock:
            self.counters[site] = self.counters.get(site, 0) + 1
            self.log.append((site, key))
        _spool_firing(site, key)
        return True

    def total_fired(self) -> int:
        with self._lock:
            return sum(self.counters.values())

    def describe(self) -> str:
        parts = [
            f"{site}={self.rates[site]:g}"
            for site in SITES
            if site in self.rates
        ]
        parts.append(f"seed={self.seed}")
        return " ".join(parts)


def parse_faults(spec: str) -> FaultPlan:
    """``"crash=0.2,hang=0.05,seed=7"`` → :class:`FaultPlan`.

    Entries are ``site=rate`` pairs separated by commas and/or
    whitespace; the optional ``seed=N`` entry seeds the decision
    streams (default 0).
    """
    rates: dict[str, float] = {}
    seed = 0
    for token in re.split(r"[,\s]+", spec.strip()):
        if not token:
            continue
        name, sep, value = token.partition("=")
        if not sep:
            raise FaultSpecError(
                f"malformed fault entry {token!r} (expected site=rate)"
            )
        if name == "seed":
            try:
                seed = int(value)
            except ValueError:
                raise FaultSpecError(
                    f"fault seed must be an integer, got {value!r}"
                ) from None
            continue
        try:
            rates[name] = float(value)
        except ValueError:
            raise FaultSpecError(
                f"fault rate for {name!r} must be a number, got {value!r}"
            ) from None
    if not rates:
        raise FaultSpecError(
            f"fault spec {spec!r} configures no injection site"
        )
    return FaultPlan(rates, seed=seed)


# -- process-wide activation -------------------------------------------------

#: (env string, parsed plan) — revalidated against the environment on
#: every lookup so tests and the CLI can flip ``STFM_SIM_FAULTS`` at
#: any time; counters persist as long as the env string is unchanged.
_CACHED: "tuple[str, FaultPlan | None]" = ("", None)
_CACHE_LOCK = threading.Lock()


def active_plan() -> "FaultPlan | None":
    """The plan configured by ``STFM_SIM_FAULTS``, or None."""
    global _CACHED
    raw = os.environ.get(FAULTS_ENV, "")
    cached_raw, cached_plan = _CACHED
    if raw == cached_raw:
        return cached_plan
    with _CACHE_LOCK:
        cached_raw, cached_plan = _CACHED
        if raw == cached_raw:
            return cached_plan
        plan = parse_faults(raw) if raw else None
        _CACHED = (raw, plan)
        return plan


def fires(site: str, key: str = "") -> bool:
    """Module-level hook: False (fast) unless a plan is active."""
    plan = active_plan()
    return plan is not None and plan.fires(site, key)


def injected_total() -> int:
    """Faults fired so far in this process (0 when inactive)."""
    plan = active_plan()
    return plan.total_fired() if plan is not None else 0


def _spool_firing(site: str, key: str) -> None:
    """Append one fired decision to the ``STFM_SIM_FAULT_LOG`` spool.

    Best-effort by design: chaos must keep injecting even when the
    spool directory is gone (the harness owns its lifetime).
    """
    spool = os.environ.get(FAULT_LOG_ENV, "")
    if not spool:
        return
    try:
        os.makedirs(spool, exist_ok=True)
        path = os.path.join(spool, f"faults-{os.getpid()}.log")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(f"{site}\t{key}\n")
    except OSError:
        pass


def read_spool(spool: str) -> "set[tuple[str, str]]":
    """The union of fired ``(site, key)`` decisions across every
    process that wrote to ``spool``.

    A *set*, not a multiset: a decision is a pure function of
    ``(seed, site, key)``, so consulting it twice (a redelivered job,
    a retried request) fires twice but is one decision.  Comparing
    sets is what makes the chaos replay check robust to scheduling.
    """
    fired: "set[tuple[str, str]]" = set()
    try:
        names = sorted(os.listdir(spool))
    except OSError:
        return fired
    for name in names:
        if not name.startswith("faults-"):
            continue
        try:
            with open(os.path.join(spool, name), encoding="utf-8") as handle:
                for line in handle:
                    site, sep, key = line.rstrip("\n").partition("\t")
                    if sep:
                        fired.add((site, key))
        except OSError:
            continue
    return fired


def install(spec: str) -> FaultPlan:
    """Validate ``spec``, export it via the environment, and return
    the now-active plan (the ``--inject`` CLI path)."""
    parse_faults(spec)  # validate before touching the environment
    os.environ[FAULTS_ENV] = spec
    plan = active_plan()
    assert plan is not None
    return plan
