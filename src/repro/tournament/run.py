"""Tournament execution: one engine batch, per-cell metrics, frontier.

The whole policies × workloads cross product runs as a single engine
batch (:meth:`repro.sim.runner.ExperimentRunner.run_sweep`): alone
baselines shared between cells are simulated once, cells parallelize
across the worker pool when the ambient engine options request it, and
every cell is content-addressed — a warm rerun against a persistent
store performs zero new simulations.  Serial and parallel execution are
bit-identical, inherited from the engine's determinism guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.options import EngineOptions, current_options
from repro.metrics.stats import geometric_mean
from repro.sim.config import SystemConfig
from repro.sim.results import format_table
from repro.sim.runner import ExperimentRunner
from repro.tournament.frontier import frontier_chart, pareto_frontier
from repro.tournament.spec import TournamentSpec


@dataclass
class TournamentResult:
    """Everything a tournament produced, ready for JSON or the terminal."""

    spec: TournamentSpec
    cells: list[dict]
    aggregates: list[dict]
    frontier: list[str]
    text: str

    def to_payload(self) -> dict:
        """JSON-ready payload (the ``--json`` artifact)."""
        return {
            "kind": "tournament",
            "spec_digest": self.spec.digest(),
            "policies": [p.lower() for p in self.spec.policies],
            "workloads": self.spec.labels,
            "num_cores": self.spec.num_cores,
            "budget": self.spec.budget,
            "seed": self.spec.seed,
            "cells": self.cells,
            "aggregates": self.aggregates,
            "frontier": self.frontier,
        }


def run_tournament(
    spec: TournamentSpec,
    engine: "EngineOptions | None" = None,
) -> TournamentResult:
    """Run every (workload, policy) cell and aggregate the results.

    Engine options come from the argument or the ambient
    :func:`repro.engine.options.engine_options` context, exactly like
    the experiment harness.
    """
    options = engine if engine is not None else current_options()
    config = SystemConfig(num_cores=spec.num_cores)
    runner = ExperimentRunner(
        config,
        instruction_budget=spec.budget,
        seed=spec.seed,
        jobs=options.jobs,
        cache_dir=options.cache_dir,
        store=options.store,
        timeout=options.timeout,
        retries=options.retries,
    )
    policies = [p.lower() for p in spec.policies]
    policy_kwargs = {
        policy: spec.kwargs_for(policy)
        for policy in policies
        if spec.kwargs_for(policy)
    }
    sweep = runner.run_sweep(
        [list(w) for w in spec.workloads], policies, policy_kwargs or None
    )

    cells = []
    for workload, label in zip(spec.workloads, spec.labels):
        for policy in policies:
            result = sweep[label][policy]
            cells.append(
                {
                    "key": spec.cell_key(workload, policy),
                    "workload": label,
                    "policy": policy,
                    "unfairness": result.unfairness,
                    "weighted_speedup": result.weighted_speedup,
                    "hmean_speedup": result.hmean_speedup,
                    "sum_of_ipcs": result.sum_of_ipcs,
                    "slowdowns": {
                        t.name: t.slowdown for t in result.threads
                    },
                }
            )

    aggregates = []
    for policy in policies:
        results = [sweep[label][policy] for label in spec.labels]
        aggregates.append(
            {
                "policy": policy,
                "unfairness": geometric_mean(
                    [r.unfairness for r in results]
                ),
                "max_unfairness": max(r.unfairness for r in results),
                "weighted_speedup": geometric_mean(
                    [r.weighted_speedup for r in results]
                ),
                "hmean_speedup": geometric_mean(
                    [r.hmean_speedup for r in results]
                ),
                "sum_of_ipcs": geometric_mean(
                    [max(r.sum_of_ipcs, 1e-9) for r in results]
                ),
            }
        )

    frontier = pareto_frontier(aggregates)
    text = _render(spec, aggregates, frontier)
    return TournamentResult(
        spec=spec,
        cells=cells,
        aggregates=aggregates,
        frontier=frontier,
        text=text,
    )


def _render(
    spec: TournamentSpec,
    aggregates: "list[dict]",
    frontier: "list[str]",
) -> str:
    """The Table-5-style summary plus the frontier scatter chart."""
    frontier_set = set(frontier)
    table = format_table(
        [
            "policy",
            "GMEAN-unfairness",
            "max-unfairness",
            "GMEAN-w-speedup",
            "GMEAN-hmean",
            "frontier",
        ],
        [
            [
                row["policy"],
                row["unfairness"],
                row["max_unfairness"],
                row["weighted_speedup"],
                row["hmean_speedup"],
                "*" if row["policy"] in frontier_set else "",
            ]
            for row in aggregates
        ],
    )
    chart = frontier_chart(aggregates)
    return (
        f"tournament: {len(spec.policies)} policies x "
        f"{len(spec.workloads)} workloads "
        f"({spec.num_cores} cores, budget {spec.budget}, "
        f"seed {spec.seed})\n\n{table}\n\n{chart}"
    )
