"""Head-to-head scheduler tournaments (DESIGN.md §3.17).

The paper compares five schedulers; the follow-on literature added a
zoo.  This package races every registered policy across a stratified
workload matrix — the paper's category-pattern CPU mixes plus
heterogeneous CPU+GPU mixes — and reduces the grid to the trade-off
every paper in the line negotiates: fairness versus throughput.

* :mod:`repro.tournament.spec` — declarative, validated tournament
  specs with content-addressed cell keys.
* :mod:`repro.tournament.matrix` — deterministic stratified matrices.
* :mod:`repro.tournament.run` — execution through the experiment
  engine (one batch; serial/parallel bit-identical; warm reruns hit
  the result store).
* :mod:`repro.tournament.frontier` — Pareto analysis and the terminal
  frontier chart.

CLI entry: ``stfm-sim tournament`` (see README, section "Tournament").
"""

from repro.tournament.frontier import frontier_chart, pareto_frontier
from repro.tournament.matrix import MATRIX_SIZES, build_matrix, stratified_matrix
from repro.tournament.run import TournamentResult, run_tournament
from repro.tournament.spec import TournamentSpec

__all__ = [
    "MATRIX_SIZES",
    "TournamentResult",
    "TournamentSpec",
    "build_matrix",
    "frontier_chart",
    "pareto_frontier",
    "run_tournament",
    "stratified_matrix",
]
