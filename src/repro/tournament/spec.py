"""Declarative tournament specifications.

A tournament is a cross product: every entered scheduling policy runs
every workload in a stratified matrix, under one system configuration,
budget and seed.  The spec is a frozen value object validated at
construction, with two content-addressing hooks:

* :meth:`TournamentSpec.digest` — a stable identity for the whole
  tournament (spec files, result provenance).
* :meth:`TournamentSpec.cell_key` — a stable identity for one
  (workload, policy) cell.  Cell keys are derived purely from spec
  content, so re-running the same tournament resolves every cell from
  the result store: a warm rerun performs **zero** new simulations
  (the engine's own job cache keys are a superset of the cell key's
  inputs — see :meth:`repro.engine.jobs.SharedJob.cache_key`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.schedulers.registry import available_policies
from repro.workloads.mixes import workload_name
from repro.workloads.spec2006 import benchmark


@dataclass(frozen=True)
class TournamentSpec:
    """One head-to-head tournament: policies × workloads."""

    policies: tuple[str, ...]
    workloads: tuple[tuple[str, ...], ...]
    num_cores: int = 4
    budget: int = 20_000
    seed: int = 0
    policy_kwargs: tuple[tuple[str, tuple[tuple[str, object], ...]], ...] = (
        field(default=())
    )

    def __post_init__(self) -> None:
        known = {name.lower() for name in available_policies(True)}
        if not self.policies:
            raise ValueError("tournament needs at least one policy")
        seen: set[str] = set()
        for policy in self.policies:
            lowered = policy.lower()
            if lowered not in known:
                raise ValueError(
                    f"unknown policy {policy!r}; available: "
                    f"{', '.join(available_policies(True))}"
                )
            if lowered in seen:
                raise ValueError(f"duplicate policy {policy!r}")
            seen.add(lowered)
        if not self.workloads:
            raise ValueError("tournament needs at least one workload")
        if self.num_cores < 1:
            raise ValueError("num_cores must be positive")
        if self.budget < 1:
            raise ValueError("budget must be positive")
        labels: set[str] = set()
        for workload in self.workloads:
            if not workload:
                raise ValueError("empty workload in tournament matrix")
            if len(workload) > self.num_cores:
                raise ValueError(
                    f"workload {workload_name(list(workload))!r} has "
                    f"{len(workload)} benchmarks for {self.num_cores} cores"
                )
            for name in workload:
                benchmark(name)  # raises KeyError on unknown benchmarks
            label = workload_name(list(workload))
            if label in labels:
                raise ValueError(f"duplicate workload {label!r}")
            labels.add(label)
        unknown = {p for p, _ in self.policy_kwargs} - {
            policy.lower() for policy in self.policies
        }
        if unknown:
            raise ValueError(
                f"policy_kwargs for policies not entered: {sorted(unknown)}"
            )

    # -- construction helpers ---------------------------------------------
    @classmethod
    def create(
        cls,
        policies: "list[str]",
        workloads: "list[list[str]]",
        num_cores: int = 4,
        budget: int = 20_000,
        seed: int = 0,
        policy_kwargs: "dict[str, dict] | None" = None,
    ) -> "TournamentSpec":
        """Build a spec from plain lists/dicts (the CLI/test entry)."""
        frozen_kwargs = tuple(
            (policy.lower(), tuple(sorted(kwargs.items())))
            for policy, kwargs in sorted((policy_kwargs or {}).items())
        )
        return cls(
            policies=tuple(policies),
            workloads=tuple(tuple(w) for w in workloads),
            num_cores=num_cores,
            budget=budget,
            seed=seed,
            policy_kwargs=frozen_kwargs,
        )

    def kwargs_for(self, policy: str) -> dict:
        for name, frozen in self.policy_kwargs:
            if name == policy.lower():
                return dict(frozen)
        return {}

    @property
    def labels(self) -> list[str]:
        """Workload labels, in matrix order."""
        return [workload_name(list(w)) for w in self.workloads]

    # -- content addressing -------------------------------------------------
    def _canonical(self) -> dict:
        return {
            "policies": [p.lower() for p in self.policies],
            "workloads": [list(w) for w in self.workloads],
            "num_cores": self.num_cores,
            "budget": self.budget,
            "seed": self.seed,
            "policy_kwargs": [
                [policy, [list(item) for item in kwargs]]
                for policy, kwargs in self.policy_kwargs
            ],
        }

    def digest(self) -> str:
        """Stable identity of the whole tournament."""
        return _sha256(self._canonical())

    def cell_key(self, workload: "tuple[str, ...]", policy: str) -> str:
        """Stable identity of one (workload, policy) cell.

        Depends only on the cell's simulation inputs — the workload, the
        policy (with its kwargs), and the shared system parameters — so
        a cell keeps its key when the surrounding matrix changes.
        """
        return _sha256(
            {
                "workload": list(workload),
                "policy": policy.lower(),
                "policy_kwargs": [
                    list(item)
                    for item in dict(
                        sorted(self.kwargs_for(policy).items())
                    ).items()
                ],
                "num_cores": self.num_cores,
                "budget": self.budget,
                "seed": self.seed,
            }
        )


def _sha256(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]
