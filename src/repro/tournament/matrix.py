"""Stratified workload matrices for tournaments.

The matrix mirrors the paper's evaluation methodology (Section 6.2's
category-pattern sampling) and extends it with the heterogeneous
stratum the follow-on SMS work evaluates: a fixed fraction of the
matrix pairs a GPU-like streaming agent with CPU benchmarks
(:mod:`repro.workloads.streaming`).  Everything is deterministic in
``(size, num_cores, seed)``, so matrices — and therefore tournament
cell keys — are reproducible across machines and reruns.
"""

from __future__ import annotations

from repro.workloads.mixes import category_pattern_workloads, workload_name
from repro.workloads.streaming import heterogeneous_workloads

#: Named matrix sizes accepted by the CLI's ``--matrix`` flag.
MATRIX_SIZES = {
    "quick": 2,
    "small": 4,
    "default": 8,
    "full": 16,
}


def stratified_matrix(
    num_cores: int = 4,
    count: int = 8,
    seed: int = 0,
    heterogeneous: bool = True,
) -> "list[list[str]]":
    """``count`` workloads: a CPU stratum plus a heterogeneous stratum.

    Roughly one quarter of the matrix (at least one workload, when the
    matrix has room and ``num_cores`` permits an agent + one CPU thread)
    carries a streaming agent; the remainder is the paper's
    category-stratified CPU sampling.
    """
    if count < 1:
        raise ValueError("matrix needs at least one workload")
    hetero_count = 0
    if heterogeneous and count >= 2 and num_cores >= 2:
        hetero_count = max(1, count // 4)
    cpu_count = count - hetero_count
    matrix = category_pattern_workloads(num_cores, cpu_count, seed=seed)
    if hetero_count:
        matrix = matrix + heterogeneous_workloads(
            num_cores, hetero_count, seed=seed
        )
    # Defensive dedup by label: the strata cannot collide (only the
    # heterogeneous one contains agents), but a pathological sampler
    # seed could repeat a CPU mix.
    seen: set[str] = set()
    unique: list[list[str]] = []
    for workload in matrix:
        label = workload_name(workload)
        if label not in seen:
            seen.add(label)
            unique.append(workload)
    return unique


def build_matrix(
    name: str = "default",
    num_cores: int = 4,
    seed: int = 0,
) -> "list[list[str]]":
    """Resolve a named matrix size to a stratified workload list."""
    try:
        count = MATRIX_SIZES[name]
    except KeyError:
        raise ValueError(
            f"unknown matrix {name!r}; available: "
            f"{', '.join(MATRIX_SIZES)}"
        ) from None
    return stratified_matrix(num_cores, count, seed=seed)
