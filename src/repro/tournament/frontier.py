"""Fairness-vs-throughput frontier: Pareto analysis and terminal chart.

The tournament's headline artifact is the trade-off the paper's Figure 9
and Table 5 describe in prose: schedulers trade system throughput
(weighted speedup, higher is better) against unfairness (max/min
slowdown ratio, lower is better).  This module computes the Pareto
frontier over per-policy aggregate points and renders a terminal
scatter chart in the same spirit as :mod:`repro.experiments.charts` —
the best corner is bottom-right (high throughput, low unfairness).
"""

from __future__ import annotations

from typing import Mapping, Sequence

_MARKERS = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def pareto_frontier(points: Sequence[Mapping]) -> list[str]:
    """Policies not dominated on (weighted_speedup ↑, unfairness ↓).

    A point is dominated when another point is at least as good on both
    axes and strictly better on one.  Returns policy names in the input
    order.
    """
    frontier = []
    for point in points:
        dominated = False
        for other in points:
            if other is point:
                continue
            no_worse = (
                other["weighted_speedup"] >= point["weighted_speedup"]
                and other["unfairness"] <= point["unfairness"]
            )
            better = (
                other["weighted_speedup"] > point["weighted_speedup"]
                or other["unfairness"] < point["unfairness"]
            )
            if no_worse and better:
                dominated = True
                break
        if not dominated:
            frontier.append(point["policy"])
    return frontier


def frontier_chart(
    points: Sequence[Mapping],
    width: int = 56,
    height: int = 12,
) -> str:
    """ASCII scatter of policies in the fairness-throughput plane.

    X axis: weighted speedup (right is better).  Y axis: unfairness
    (down is better — the axis is drawn descending so the ideal corner
    is bottom-right).  Each policy gets a letter marker; the legend maps
    markers to names and stars the Pareto-frontier members.
    """
    if not points:
        raise ValueError("frontier chart needs at least one point")
    if len(points) > len(_MARKERS):
        raise ValueError("too many policies to chart")
    xs = [p["weighted_speedup"] for p in points]
    ys = [p["unfairness"] for p in points]
    x_lo, x_hi = _padded_range(min(xs), max(xs))
    y_lo, y_hi = _padded_range(min(ys), max(ys))
    grid = [[" "] * width for _ in range(height)]
    for index, point in enumerate(points):
        col = _scale(point["weighted_speedup"], x_lo, x_hi, width)
        row = _scale(point["unfairness"], y_lo, y_hi, height)
        # Row 0 is the top of the chart: highest unfairness.
        row = height - 1 - row
        cell = grid[row][col]
        grid[row][col] = "+" if cell not in (" ", _MARKERS[index]) else (
            _MARKERS[index]
        )
    label_width = 8
    lines = [
        "unfairness (lower is better)  vs  "
        "weighted speedup (higher is better)"
    ]
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_hi:7.2f}x"
        elif row_index == len(grid) - 1:
            label = f"{y_lo:7.2f}x"
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}|")
    lines.append(" " * label_width + "+" + "-" * width + "+")
    left = f"{x_lo:.2f}"
    right = f"{x_hi:.2f}"
    gap = width - len(left) - len(right)
    lines.append(
        " " * (label_width + 1) + left + " " * max(gap, 1) + right
    )
    frontier = set(pareto_frontier(points))
    legend = []
    for index, point in enumerate(points):
        star = " *" if point["policy"] in frontier else ""
        legend.append(
            f"  {_MARKERS[index]} = {point['policy']}"
            f" ({point['weighted_speedup']:.2f}, "
            f"{point['unfairness']:.2f}x){star}"
        )
    lines.append("legend (* = Pareto frontier):")
    lines.extend(legend)
    return "\n".join(lines)


def _padded_range(lo: float, hi: float) -> tuple[float, float]:
    """Pad a degenerate or tight range so every point lands in-grid."""
    if hi - lo < 1e-9:
        pad = abs(hi) * 0.05 + 0.05
        return lo - pad, hi + pad
    pad = (hi - lo) * 0.05
    return lo - pad, hi + pad


def _scale(value: float, lo: float, hi: float, cells: int) -> int:
    fraction = (value - lo) / (hi - lo)
    index = int(fraction * cells)
    return min(max(index, 0), cells - 1)
