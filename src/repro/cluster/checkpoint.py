"""Durable coordinator checkpoint: survive ``kill -9`` mid-sweep.

The coordinator's hard state is already durable piecemeal — the job
store persists every job atomically and the lease table persists one
file per active lease.  What those files *cannot* carry across a crash
is incarnation-scoped bookkeeping:

* **incarnation** — how many times this state directory has been
  started.  Lease ids embed it (``lease-i3-000001``), so a lease
  granted by a restarted coordinator can never collide with one a
  pre-crash runner still holds.  Without this, a late completion for
  the *old* ``lease-000001`` could settle the *new* ``lease-000001``'s
  job — an exactly-once violation.
* **resume_recoveries** — cumulative count of jobs re-queued by
  startup recovery across all incarnations (the
  ``stfm_cluster_resume_recoveries_total`` metric; the chaos soak
  asserts it went up after the mid-sweep ``kill -9``).
* **lease counter bases** — expirations / redeliveries / late
  completions, so the fairness of ``/metrics`` time series survives a
  restart instead of resetting to zero.

The checkpoint is one JSON file written atomically (tmp + rename) —
torn writes leave the previous complete checkpoint in place, and a
missing or corrupt file degrades to incarnation 0 with zeroed bases,
which is exactly the fresh-directory behavior.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path


@dataclass
class CheckpointState:
    """The durable counters (see module docstring)."""

    incarnation: int = 0
    resume_recoveries: int = 0
    expirations: int = 0
    redeliveries: int = 0
    late_completions: int = 0

    @classmethod
    def from_dict(cls, raw: dict) -> "CheckpointState":
        state = cls()
        for field in asdict(state):
            try:
                setattr(state, field, max(0, int(raw.get(field, 0))))
            except (TypeError, ValueError):
                pass
        return state


class CoordinatorCheckpoint:
    """``checkpoint.json`` under the coordinator state directory."""

    FILENAME = "checkpoint.json"

    def __init__(self, state_dir: "str | Path") -> None:
        self.root = Path(state_dir).expanduser()
        self.path = self.root / self.FILENAME

    def load(self) -> CheckpointState:
        """The last persisted state; a fresh default when the file is
        missing or unreadable (never raises)."""
        try:
            raw = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return CheckpointState()
        if not isinstance(raw, dict):
            return CheckpointState()
        return CheckpointState.from_dict(raw)

    def save(self, state: CheckpointState) -> None:
        """Persist atomically; best-effort (a full disk must not take
        the coordinator down — the checkpoint only degrades metrics
        continuity, never correctness of job settlement)."""
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.root, prefix=".tmp-ckpt-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(asdict(state), handle)
                os.replace(tmp, self.path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            pass
