"""The cluster coordinator: admission, leases, and the store proxy.

A :class:`ClusterCoordinator` *is* a :class:`SimulationService` with
zero in-process workers: the same submission endpoints, job state,
idempotency and digest-coalescing behavior — but instead of a worker
pool draining the admission queue, runner processes lease jobs over
HTTP and post results back.  Extra endpoints::

    POST /v1/leases                  lease a job      200 | 204 (none) | 400 | 503
    POST /v1/leases/<id>/heartbeat   extend deadline  200 | 410 (lost)
    POST /v1/leases/<id>/complete    settle the job   200 | 400 | 410 (redelivered)
    GET  /v1/cluster                 topology view    200
    GET  /v1/store/<key>             store proxy      200 | 404
    PUT  /v1/store/<key>             store proxy      204 | 412 (conditional)
    POST /v1/store/<key>/quarantine  store proxy      204
    GET  /v1/store                   store stats      200
    POST /v1/store/prune             prune the store  200

Leases are routed with *cache affinity*: each pending job's spec digest
maps onto a live runner by rendezvous hashing, and a requesting runner
is preferentially given jobs it owns — identical and near-identical
specs keep landing on the runner whose engine memory cache is already
warm.  Routing is work-conserving: a runner that owns nothing pending
takes the oldest job rather than idling.

A lease that misses its heartbeats expires: the job is requeued at the
front and the next lease request redelivers it (at-least-once).  A
completion for an expired lease is answered ``410 Gone`` and its
payload discarded, so only one attempt ever settles a job.

The lease lifecycle and the status codes above are declared once, as
data, in :mod:`repro.cluster.lease_model`; ``simlint`` (SIM107/SIM108)
checks the handlers against that model statically, and the opt-in
:class:`~repro.cluster.lease_model.LeaseSanitizer` replays every
transition at runtime during cluster tests.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import math
import re
import time
from dataclasses import dataclass
from pathlib import Path

from repro.service import state as jobstate
from repro.service.metrics import MetricsRegistry
from repro.service.server import (
    ServiceConfig,
    SimulationService,
    _HttpError,
    _json_response,
)
from repro.cluster.checkpoint import CheckpointState, CoordinatorCheckpoint
from repro.cluster.leases import LeaseTable

_KEY_RE = re.compile(r"[A-Za-z0-9._-]{1,200}")

#: A runner counts as live for affinity routing for this many lease
#: TTLs after its last contact.
_LIVENESS_TTLS = 3.0


@dataclass(frozen=True)
class CoordinatorConfig:
    """Everything ``stfm-sim coordinator`` needs."""

    host: str = "127.0.0.1"
    port: int = 8765  # 0 = pick a free port (tests)
    queue_limit: int = 32
    cache_dir: "str | None" = None  # shared store location (any backend)
    state_dir: str = "stfm-coordinator-state"
    lease_ttl: float = 15.0

    def service_config(self) -> ServiceConfig:
        return ServiceConfig(
            host=self.host,
            port=self.port,
            workers=0,  # runners execute; the coordinator only routes
            queue_limit=self.queue_limit,
            cache_dir=self.cache_dir,
            state_dir=self.state_dir,
        )


class ClusterCoordinator(SimulationService):
    """A workerless service whose queue drains through leases."""

    def __init__(self, config: CoordinatorConfig) -> None:
        self.cluster_config = config
        # The checkpoint makes incarnation-scoped state durable: lease
        # ids embed the incarnation (no cross-crash collisions), and
        # the recovery / expiry counters accumulate across restarts.
        self.checkpoint = CoordinatorCheckpoint(config.state_dir)
        prior = self.checkpoint.load()
        self.incarnation = prior.incarnation + 1
        self.resume_recoveries = prior.resume_recoveries
        self.leases = LeaseTable(
            Path(config.state_dir) / "leases",
            ttl=config.lease_ttl,
            id_prefix=f"i{self.incarnation}-",
        )
        self.leases.expirations = prior.expirations
        self.leases.redeliveries = prior.redeliveries
        self.leases.late_completions = prior.late_completions
        self._runners_seen: dict[str, float] = {}
        self._runner_engine: dict[str, dict[str, int]] = {}
        self._runner_capacity: dict[str, int] = {}
        self._runner_breaker_opens: dict[str, int] = {}
        self._sweep_task: "asyncio.Task | None" = None
        super().__init__(config.service_config())

    # -- metrics -------------------------------------------------------------
    def _register_extra_metrics(self, m: MetricsRegistry) -> None:
        m.multi_gauge(
            "stfm_cluster_active_leases",
            "Leases currently held, per runner.",
            read=lambda: [
                ({"runner": runner}, count)
                for runner, count in sorted(self.leases.active_by_runner().items())
            ],
        )
        m.multi_gauge(
            "stfm_cluster_leases_granted_total",
            "Leases ever granted, per runner.",
            read=lambda: [
                ({"runner": runner}, count)
                for runner, count in sorted(self.leases.granted.items())
            ],
        )
        m.multi_gauge(
            "stfm_cluster_runner_sims_total",
            "Simulation jobs actually executed, per runner (from "
            "completion reports).",
            read=lambda: [
                ({"runner": runner}, counts.get("jobs_run", 0))
                for runner, counts in sorted(self._runner_engine.items())
            ],
        )
        m.multi_gauge(
            "stfm_cluster_runner_cache_hits_total",
            "Engine cache hits, per runner (from completion reports).",
            read=lambda: [
                ({"runner": runner}, counts.get("hits", 0))
                for runner, counts in sorted(self._runner_engine.items())
            ],
        )
        m.gauge(
            "stfm_cluster_lease_expirations_total",
            "Leases that missed their heartbeats and expired.",
            read=lambda: self.leases.expirations,
        )
        m.gauge(
            "stfm_cluster_redeliveries_total",
            "Jobs requeued after their lease expired (at-least-once).",
            read=lambda: self.leases.redeliveries,
        )
        m.gauge(
            "stfm_cluster_late_completions_total",
            "Completions discarded because the lease had expired.",
            read=lambda: self.leases.late_completions,
        )
        m.gauge(
            "stfm_cluster_runners_live",
            "Runners that requested or heartbeat a lease recently.",
            read=lambda: len(self._live_runners()),
        )
        self.m_proxy = m.counter(
            "stfm_store_proxy_requests_total",
            "Store-proxy operations served, by op and outcome.",
        )
        self.m_duplicate_puts = m.counter(
            "stfm_store_proxy_duplicate_puts_total",
            "Unconditional proxy puts whose key already existed — "
            "nonzero means two runners re-uploaded the same sub-job.",
        )
        self.m_conditional_skips = m.counter(
            "stfm_store_proxy_conditional_put_skips_total",
            "Conditional puts (If-None-Match: *) answered 412 because "
            "the blob was already stored — redundant uploads avoided.",
        )
        m.gauge(
            "stfm_cluster_incarnation",
            "How many times this coordinator state dir has been started.",
            read=lambda: self.incarnation,
        )
        m.gauge(
            "stfm_cluster_resume_recoveries_total",
            "Jobs re-queued by crash-restart recovery, cumulative "
            "across coordinator incarnations.",
            read=lambda: self.resume_recoveries,
        )
        m.multi_gauge(
            "stfm_cluster_runner_breaker_opens_total",
            "Circuit-breaker openings, per runner (from completion "
            "reports; each runner reports its own cumulative count).",
            read=lambda: [
                ({"runner": runner}, opens)
                for runner, opens in sorted(
                    self._runner_breaker_opens.items()
                )
            ],
        )

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> None:
        stale = self.leases.recover()
        if stale:
            print(
                f"recovered: discarded {stale} stale lease(s) from a "
                f"previous incarnation",
                flush=True,
            )
        await super().start()
        # super().start() re-queued every non-terminal job; fold the
        # count into the durable cumulative recovery counter.
        self.resume_recoveries += self.resumed_jobs
        if self.resumed_jobs:
            print(
                f"recovered: re-queued {self.resumed_jobs} job(s) "
                f"(incarnation {self.incarnation})",
                flush=True,
            )
        self._save_checkpoint()
        self._sweep_task = asyncio.create_task(self._sweep_loop())

    def _save_checkpoint(self) -> None:
        self.checkpoint.save(CheckpointState(
            incarnation=self.incarnation,
            resume_recoveries=self.resume_recoveries,
            expirations=self.leases.expirations,
            redeliveries=self.leases.redeliveries,
            late_completions=self.leases.late_completions,
        ))

    async def drain_and_stop(self) -> None:
        self.draining = True
        # Outstanding leases either complete (live runner) or expire and
        # requeue.  Requeued jobs persist as QUEUED and recover on the
        # next start, so drain waits for active leases only — never for
        # the queue to empty.
        deadline = time.monotonic() + self.leases.ttl + 5.0
        while self.leases.active() and time.monotonic() < deadline:
            self._expire_due()
            await asyncio.sleep(0.05)
        if self._sweep_task is not None:
            self._sweep_task.cancel()
            try:
                await self._sweep_task
            except asyncio.CancelledError:
                pass
            self._sweep_task = None
        self._save_checkpoint()
        await super().drain_and_stop()

    async def _sweep_loop(self) -> None:
        interval = max(0.05, min(1.0, self.leases.ttl / 4.0))
        while True:
            await asyncio.sleep(interval)
            self._expire_due()
            # Keep the durable counter bases fresh: a kill -9 loses at
            # most one sweep interval of counter increments.
            self._save_checkpoint()

    def _expire_due(self) -> None:
        for lease in self.leases.expire_due(time.monotonic()):
            job = self.jobs.get(lease.job_id)
            if job is None or job.status in jobstate.TERMINAL:
                continue
            job.status = jobstate.QUEUED
            self.state.save(job)
            self.queue.requeue(job.id)
            self.m_jobs.inc(event="redelivered")

    # -- routing -------------------------------------------------------------
    def _route_extra(
        self, method: str, path: str, headers: dict, body: bytes
    ) -> "tuple[int, dict, bytes] | None":
        if path == "/v1/leases" and method == "POST":
            return self._route_lease_request(body)
        if path.startswith("/v1/leases/") and method == "POST":
            rest = path[len("/v1/leases/"):]
            lease_id, _, action = rest.partition("/")
            if action == "heartbeat":
                return self._route_heartbeat(lease_id)
            if action == "complete":
                return self._route_complete(lease_id, body)
            raise _HttpError(404, f"no such lease action: {action!r}")
        if path == "/v1/cluster" and method == "GET":
            return _json_response(200, self._cluster_view())
        if path == "/v1/store" or path.startswith("/v1/store/"):
            return self._route_store(method, path, headers, body)
        return None

    # -- leases --------------------------------------------------------------
    def _route_lease_request(self, body: bytes) -> tuple[int, dict, bytes]:
        payload = _parse_json(body)
        runner = str(payload.get("runner") or "").strip()
        if not runner:
            raise _HttpError(400, "lease request needs a 'runner' id")
        now = time.monotonic()
        self._runners_seen[runner] = now
        try:
            capacity = max(1, int(payload.get("capacity") or 1))
        except (TypeError, ValueError):
            raise _HttpError(400, "lease 'capacity' must be an integer") from None
        self._runner_capacity[runner] = capacity
        if self.draining:
            raise _HttpError(503, "coordinator is draining; no new leases")
        if self.leases.active_by_runner().get(runner, 0) >= capacity:
            return 204, {}, b""  # the runner's slots are all busy
        job_id = self.queue.try_take(chooser=self._affinity_chooser(runner))
        if job_id is None:
            return 204, {}, b""
        job = self.jobs[job_id]
        job.status = jobstate.RUNNING
        lease = self.leases.grant(job_id, job.digest, runner, now)
        job.attempts = lease.attempt
        self.state.save(job)
        self.m_jobs.inc(event="leased")
        return _json_response(200, {
            "lease_id": lease.id,
            "job_id": job.id,
            "spec": job.spec,
            "digest": job.digest,
            "ttl": self.leases.ttl,
            "attempt": lease.attempt,
        })

    def _route_heartbeat(self, lease_id: str) -> tuple[int, dict, bytes]:
        now = time.monotonic()
        lease = self.leases.heartbeat(lease_id, now)
        if lease is None:
            return _json_response(410, {
                "error": f"lease {lease_id!r} expired or settled; abandon the job",
            })
        self._runners_seen[lease.runner] = now
        return _json_response(200, {"lease_id": lease.id, "ttl": self.leases.ttl})

    def _route_complete(
        self, lease_id: str, body: bytes
    ) -> tuple[int, dict, bytes]:
        payload = _parse_json(body)
        lease = self.leases.complete(lease_id)
        if lease is None:
            # The lease expired and the job was redelivered: this result
            # is a late duplicate.  Determinism makes it *identical* to
            # the one the redelivered attempt will produce, but only one
            # attempt may settle the job.
            return _json_response(410, {
                "accepted": False,
                "error": f"lease {lease_id!r} expired; job was redelivered",
            })
        self._runners_seen[lease.runner] = time.monotonic()
        self._absorb_engine_report(lease.runner, payload.get("engine"))
        self._absorb_breaker_report(lease.runner, payload.get("breaker_opens"))
        job = self.jobs[lease.job_id]
        job.runner = lease.runner
        wall = float(payload.get("wall") or 0.0)
        error = payload.get("error")
        result = payload.get("result")
        if error is None and result is None:
            error = "runner reported neither result nor error"
        self._job_done(job.id, result, error, wall)
        self.queue.observe(wall)
        self.queue.task_done()
        return _json_response(200, {"accepted": True, "status": job.status})

    def _absorb_engine_report(self, runner: str, report: object) -> None:
        if not isinstance(report, dict):
            return
        counts = self._runner_engine.setdefault(runner, {})
        for field in ("jobs_run", "hits", "retries", "fallbacks"):
            try:
                counts[field] = counts.get(field, 0) + int(report.get(field, 0))
            except (TypeError, ValueError):
                continue

    def _absorb_breaker_report(self, runner: str, opens: object) -> None:
        """Each runner reports its *cumulative* breaker-open count, so
        absorption takes the max (reports may arrive out of order)."""
        try:
            value = int(opens)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return
        if value > self._runner_breaker_opens.get(runner, 0):
            self._runner_breaker_opens[runner] = value

    # -- affinity ------------------------------------------------------------
    def _live_runners(self) -> list[str]:
        horizon = time.monotonic() - _LIVENESS_TTLS * self.leases.ttl
        return sorted(
            runner
            for runner, seen in self._runners_seen.items()
            if seen >= horizon
        )

    def _affinity_chooser(self, runner: str):
        live = self._live_runners()
        capacities = dict(self._runner_capacity)

        def choose(pending):
            if len(live) > 1:
                for job_id in pending:
                    job = self.jobs.get(job_id)
                    if (
                        job is not None
                        and _owner(job.digest, live, capacities) == runner
                    ):
                        return job_id
            # Work-conserving fallback: owning nothing pending never
            # means idling while work waits.
            return pending[0] if pending else None

        return choose

    # -- store proxy ---------------------------------------------------------
    def _route_store(
        self, method: str, path: str, headers: dict, body: bytes
    ) -> tuple[int, dict, bytes]:
        if self.store is None:
            raise _HttpError(503, "coordinator has no shared store configured")
        backend = self.store.backend
        if path == "/v1/store":
            if method != "GET":
                raise _HttpError(405, f"{method} not allowed on {path}")
            stats = backend.stats()
            return _json_response(200, {
                "entries": stats.entries,
                "total_bytes": stats.total_bytes,
                "backend": backend.location(),
            })
        if path == "/v1/store/prune":
            if method != "POST":
                raise _HttpError(405, f"{method} not allowed on {path}")
            removed = backend.prune()
            self.m_proxy.inc(op="prune", outcome="ok")
            return _json_response(200, {
                "entries": removed.entries,
                "total_bytes": removed.total_bytes,
            })
        rest = path[len("/v1/store/"):]
        if rest.endswith("/quarantine"):
            key = rest[: -len("/quarantine")]
            if method != "POST":
                raise _HttpError(405, f"{method} not allowed on {path}")
            _check_key(key)
            backend.quarantine(key)
            self.m_proxy.inc(op="quarantine", outcome="ok")
            return 204, {}, b""
        key = rest
        _check_key(key)
        if method == "GET":
            blob = backend.read(key)
            if blob is None:
                self.m_proxy.inc(op="get", outcome="miss")
                raise _HttpError(404, f"no store entry {key[:12]}")
            self.m_proxy.inc(op="get", outcome="hit")
            return 200, {"Content-Type": "application/octet-stream"}, blob
        if method == "PUT":
            existed = backend.contains(key)
            if existed and headers.get("if-none-match", "").strip() == "*":
                # Conditional put: the content-addressed blob is already
                # here, so the upload is redundant — not a duplicate.
                self.m_proxy.inc(op="put", outcome="skipped")
                self.m_conditional_skips.inc()
                return 412, {}, b""
            try:
                backend.write(key, body)
            except OSError as exc:
                self.m_proxy.inc(op="put", outcome="error")
                raise _HttpError(500, f"store write failed: {exc}") from None
            self.m_proxy.inc(op="put", outcome="ok")
            if existed:
                self.m_duplicate_puts.inc()
            return 204, {}, b""
        raise _HttpError(405, f"{method} not allowed on {path}")

    # -- views ---------------------------------------------------------------
    def _cluster_view(self) -> dict:
        now = time.monotonic()
        active = self.leases.active_by_runner()
        runners = {}
        for runner, seen in sorted(self._runners_seen.items()):
            engine = self._runner_engine.get(runner, {})
            runners[runner] = {
                "active_leases": active.get(runner, 0),
                "capacity": self._runner_capacity.get(runner, 1),
                "granted": self.leases.granted.get(runner, 0),
                "completed": self.leases.completed.get(runner, 0),
                "sims": engine.get("jobs_run", 0),
                "cache_hits": engine.get("hits", 0),
                "breaker_opens": self._runner_breaker_opens.get(runner, 0),
                "last_seen_seconds": round(now - seen, 3),
                "live": runner in self._live_runners(),
            }
        return {
            "lease_ttl": self.leases.ttl,
            "incarnation": self.incarnation,
            "queue_depth": self.queue.depth,
            "active_leases": len(self.leases),
            "expirations": self.leases.expirations,
            "redeliveries": self.leases.redeliveries,
            "late_completions": self.leases.late_completions,
            "resume_recoveries": self.resume_recoveries,
            "runners": runners,
        }

    def _health(self) -> dict:
        health = super()._health()
        health["role"] = "coordinator"
        health["active_leases"] = len(self.leases)
        health["runners_live"] = len(self._live_runners())
        return health


def _owner(
    digest: str,
    live_runners: list[str],
    capacities: "dict[str, int] | None" = None,
) -> str:
    """Capacity-weighted rendezvous hashing: the live runner with the
    highest score for this digest owns it — stable under runner churn
    (only keys owned by a departed runner move).

    Weighting follows the classic WRH construction: hash the
    (digest, runner) pair to a uniform ``u`` in (0, 1) and score
    ``-capacity / ln(u)``.  A runner with capacity *k* then owns *k*
    times its fair share of digests in expectation.  The score is
    monotone increasing in ``u``, so with equal capacities the choice
    degenerates to plain max-hash rendezvous — identical routing to
    clusters that never declare capacities.
    """
    capacities = capacities or {}

    def score(runner: str) -> float:
        raw = int(
            hashlib.sha256(f"{digest}:{runner}".encode()).hexdigest(), 16
        )
        u = (raw + 1) / (2**256 + 1)  # uniform in (0, 1), never 0 or 1
        return -max(1, capacities.get(runner, 1)) / math.log(u)

    return max(live_runners, key=score)


def _check_key(key: str) -> None:
    if not _KEY_RE.fullmatch(key):
        raise _HttpError(400, f"malformed store key {key[:40]!r}")


def _parse_json(body: bytes) -> dict:
    if not body:
        return {}
    try:
        decoded = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        raise _HttpError(400, "request body is not valid JSON") from None
    if not isinstance(decoded, dict):
        raise _HttpError(400, "request body must be a JSON object")
    return decoded


def run_coordinator(config: CoordinatorConfig) -> int:
    """Blocking entry point for ``stfm-sim coordinator``."""
    service = ClusterCoordinator(config)
    asyncio.run(service.run())
    return 0
