"""The cluster runner: lease, execute, heartbeat, report.

A runner is a plain blocking process — no asyncio — looping over::

    POST /v1/leases                 -> a job (or 204: sleep and retry)
    execute_spec(...)                  the same engine path as `serve`
    POST /v1/leases/<id>/complete   -> result or error, + engine deltas

While a job executes, a daemon thread heartbeats the lease every
``ttl / 3`` seconds.  A ``410 Gone`` heartbeat means the lease expired
(the coordinator redelivered the job): the runner keeps executing —
the engine path is not interruptible mid-simulation — but its eventual
completion will be answered 410 and discarded, so nothing it produces
after losing the lease can reach job state.

Results flow through the shared store, not the completion payload
alone: by default the runner mounts the coordinator's store proxy
(:class:`~repro.engine.backends.HttpStoreBackend`), so sub-job results
land in the shared content-addressed store as they finish.  A
redelivered job therefore resumes from cache hits — at-least-once
delivery without duplicate simulation work.

SIGTERM finishes the current job, reports it, and exits; ``kill -9``
is the lease-expiry path the cluster is designed around.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time
from dataclasses import dataclass

from repro import faults
from repro.engine import session_report
from repro.engine.backends import HttpStoreBackend
from repro.engine.store import CacheStore
from repro.service.client import ServiceClient
from repro.service.workers import execute_spec


@dataclass(frozen=True)
class RunnerConfig:
    """Everything ``stfm-sim runner`` needs."""

    coordinator: str = "http://127.0.0.1:8765"
    runner_id: "str | None" = None  # default: <hostname>-<pid>
    #: "proxy" mounts the coordinator's store over HTTP; any other
    #: backend location (directory, sqlite file, URL) is used directly;
    #: None disables the shared store.
    store: "str | None" = "proxy"
    engine_jobs: int = 1
    poll: float = 0.5  # idle sleep between empty lease requests
    max_jobs: "int | None" = None  # exit after N jobs (tests, batch mode)

    def resolved_id(self) -> str:
        return self.runner_id or f"{socket.gethostname()}-{os.getpid()}"


class ClusterRunner:
    """One runner process bound to one coordinator."""

    def __init__(self, config: RunnerConfig) -> None:
        self.config = config
        self.id = config.resolved_id()
        self.client = ServiceClient(config.coordinator, timeout=30.0)
        if config.store == "proxy":
            self.store: "CacheStore | None" = CacheStore(
                HttpStoreBackend(config.coordinator)
            )
        elif config.store:
            self.store = CacheStore(config.store)
        else:
            self.store = None
        self._stop = threading.Event()
        self.jobs_completed = 0

    def request_stop(self) -> None:
        """Signal-safe: finish the current job, then exit the loop."""
        self._stop.set()

    # -- main loop -----------------------------------------------------------
    def run(self) -> int:
        """Lease/execute until stopped; returns a process exit code."""
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                signal.signal(sig, lambda *_: self.request_stop())
            except ValueError:
                pass  # not the main thread (embedded in tests)
        print(
            f"runner {self.id} polling {self.config.coordinator}",
            flush=True,
        )
        idle_sleep = self.config.poll
        while not self._stop.is_set():
            lease = self._acquire()
            if lease is None:
                self._stop.wait(idle_sleep)
                continue
            self._execute(lease)
            self.jobs_completed += 1
            if (
                self.config.max_jobs is not None
                and self.jobs_completed >= self.config.max_jobs
            ):
                break
        print(
            f"runner {self.id} stopping after "
            f"{self.jobs_completed} job(s)",
            flush=True,
        )
        if self.store is not None:
            self.store.close()
        return 0

    def _acquire(self) -> "dict | None":
        """One lease request; None when there is nothing to do (or the
        coordinator is briefly unreachable/draining)."""
        try:
            status, _headers, decoded = self.client.request(
                "POST", "/v1/leases", body={"runner": self.id}
            )
        except OSError:
            return None
        if status == 200 and isinstance(decoded, dict):
            return decoded
        return None

    # -- execution -----------------------------------------------------------
    def _execute(self, lease: dict) -> None:
        lease_id = lease["lease_id"]
        ttl = float(lease.get("ttl") or 15.0)
        stop_heartbeat = threading.Event()
        lost = threading.Event()
        beater = threading.Thread(
            target=self._heartbeat_loop,
            args=(lease_id, ttl, stop_heartbeat, lost),
            daemon=True,
        )
        beater.start()
        before = session_report().snapshot()
        started = time.monotonic()
        result: "dict | None" = None
        error: "str | None" = None
        try:
            # Same crash semantics as the single-process service: an
            # injected `service` fault takes the whole runner down,
            # which is exactly the lease-expiry scenario.
            if faults.fires("service", lease.get("job_id", lease_id)):
                raise SystemExit("injected service crash")
            result = execute_spec(
                lease["spec"],
                store=self.store,
                engine_jobs=self.config.engine_jobs,
            )
        except SystemExit:
            raise
        except BaseException as exc:  # report, don't die: leases must settle
            error = f"{type(exc).__name__}: {exc}"
        finally:
            stop_heartbeat.set()
        beater.join(timeout=5.0)
        if lost.is_set():
            # The heartbeat loop saw a 410: the lease expired and the
            # job was redelivered.  Posting the completion would only
            # earn another 410 (the contract's late-duplicate answer),
            # so drop it here and let the new attempt settle the job.
            print(
                f"runner {self.id}: lease {lease_id} lost; "
                f"discarding result",
                flush=True,
            )
            return
        wall = time.monotonic() - started
        delta = session_report().since(before)
        body = {
            "runner": self.id,
            "wall": wall,
            "engine": {
                "jobs_run": delta.jobs_run,
                "hits": delta.hits,
                "retries": delta.retries,
                "fallbacks": delta.fallbacks,
            },
        }
        if error is None:
            body["result"] = result
        else:
            body["error"] = error
        self._report(lease_id, body)

    def _report(self, lease_id: str, body: dict) -> None:
        """Post the completion; a 410 means the lease expired and the
        job was redelivered — the payload is correctly discarded.  An
        unreachable coordinator is retried a few times, then the result
        is dropped: lease expiry redelivers the job, and the shared
        store already holds the sub-job results."""
        for attempt in range(4):
            try:
                self.client.request(
                    "POST", f"/v1/leases/{lease_id}/complete", body=body
                )
                return
            except OSError:
                time.sleep(0.25 * (attempt + 1))
        print(
            f"runner {self.id}: could not report lease {lease_id}; "
            f"relying on redelivery",
            flush=True,
        )

    def _heartbeat_loop(
        self,
        lease_id: str,
        ttl: float,
        stop: threading.Event,
        lost: threading.Event,
    ) -> None:
        interval = max(0.05, ttl / 3.0)
        while not stop.wait(interval):
            try:
                status, _headers, _decoded = self.client.request(
                    "POST", f"/v1/leases/{lease_id}/heartbeat"
                )
            except OSError:
                continue  # transient; the next beat may land in time
            if status == 410:
                lost.set()
                return


def run_runner(config: RunnerConfig) -> int:
    """Blocking entry point for ``stfm-sim runner``."""
    return ClusterRunner(config).run()
