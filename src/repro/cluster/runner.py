"""The cluster runner: lease, execute, heartbeat, report.

A runner is a plain blocking process — no asyncio — looping over::

    POST /v1/leases                 -> a job (or 204: sleep and retry)
    execute_spec(...)                  the same engine path as `serve`
    POST /v1/leases/<id>/complete   -> result or error, + engine deltas

While a job executes, a daemon thread heartbeats the lease every
``ttl / 3`` seconds.  A ``410 Gone`` heartbeat means the lease expired
(the coordinator redelivered the job): the runner keeps executing —
the engine path is not interruptible mid-simulation — but its eventual
completion will be answered 410 and discarded, so nothing it produces
after losing the lease can reach job state.

With ``--capacity N`` the runner holds up to N leases at once,
executing them on a small thread pool; it declares the capacity in
every lease request so the coordinator can weight rendezvous routing
and refuse over-grants.

Every coordinator round trip goes through a
:class:`~repro.cluster.breaker.CircuitBreaker`: a coordinator that
disappears (crash, partition, restart) opens the breaker after a few
consecutive connection failures, and the runner backs off
exponentially (deterministic per-runner jitter) instead of spinning on
``connect()``.  Half-open probes rediscover the coordinator the moment
it returns — which is what lets a mid-sweep ``kill -9`` + restart of
the coordinator finish the sweep.

Results flow through the shared store, not the completion payload
alone: by default the runner mounts the coordinator's store proxy
(:class:`~repro.engine.backends.HttpStoreBackend`), so sub-job results
land in the shared content-addressed store as they finish.  A
redelivered job therefore resumes from cache hits — at-least-once
delivery without duplicate simulation work.

SIGTERM finishes the current job(s), reports them, and exits;
``kill -9`` is the lease-expiry path the cluster is designed around.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro import faults
from repro.cluster.breaker import CircuitBreaker
from repro.engine import session_report
from repro.engine.backends import HttpStoreBackend
from repro.engine.store import CacheStore
from repro.service.client import ServiceClient
from repro.service.workers import execute_spec


@dataclass(frozen=True)
class RunnerConfig:
    """Everything ``stfm-sim runner`` needs."""

    coordinator: str = "http://127.0.0.1:8765"
    runner_id: "str | None" = None  # default: <hostname>-<pid>
    #: "proxy" mounts the coordinator's store over HTTP; any other
    #: backend location (directory, sqlite file, URL) is used directly;
    #: None disables the shared store.
    store: "str | None" = "proxy"
    engine_jobs: int = 1
    poll: float = 0.5  # idle sleep between empty lease requests
    max_jobs: "int | None" = None  # exit after N jobs (tests, batch mode)
    capacity: int = 1  # concurrent leases this runner will hold

    def resolved_id(self) -> str:
        return self.runner_id or f"{socket.gethostname()}-{os.getpid()}"


class ClusterRunner:
    """One runner process bound to one coordinator."""

    def __init__(self, config: RunnerConfig) -> None:
        if config.capacity < 1:
            raise ValueError("runner capacity must be at least 1")
        self.config = config
        self.id = config.resolved_id()
        self.client = ServiceClient(config.coordinator, timeout=30.0)
        self.breaker = CircuitBreaker(seed=self.id)
        if config.store == "proxy":
            self.store: "CacheStore | None" = CacheStore(
                HttpStoreBackend(config.coordinator)
            )
        elif config.store:
            self.store = CacheStore(config.store)
        else:
            self.store = None
        self._stop = threading.Event()
        self._count_lock = threading.Lock()
        self.jobs_completed = 0

    def request_stop(self) -> None:
        """Signal-safe: finish the current job(s), then exit the loop."""
        self._stop.set()

    def _job_finished(self) -> int:
        with self._count_lock:
            self.jobs_completed += 1
            return self.jobs_completed

    # -- main loop -----------------------------------------------------------
    def run(self) -> int:
        """Lease/execute until stopped; returns a process exit code."""
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                signal.signal(sig, lambda *_: self.request_stop())
            except ValueError:
                pass  # not the main thread (embedded in tests)
        print(
            f"runner {self.id} polling {self.config.coordinator} "
            f"(capacity {self.config.capacity})",
            flush=True,
        )
        if self.config.capacity <= 1:
            self._run_serial()
        else:
            self._run_concurrent()
        print(
            f"runner {self.id} stopping after "
            f"{self.jobs_completed} job(s)",
            flush=True,
        )
        if self.store is not None:
            self.store.close()
        return 0

    def _run_serial(self) -> None:
        while not self._stop.is_set():
            lease = self._acquire()
            if lease is None:
                self._stop.wait(self._idle_sleep())
                continue
            self._execute(lease)
            done = self._job_finished()
            if self.config.max_jobs is not None and done >= self.config.max_jobs:
                break

    def _run_concurrent(self) -> None:
        capacity = self.config.capacity
        inflight: "set" = set()
        pool = ThreadPoolExecutor(
            max_workers=capacity, thread_name_prefix=f"{self.id}-exec"
        )
        try:
            while not self._stop.is_set():
                inflight = {f for f in inflight if not f.done()}
                done = self.jobs_completed
                if (
                    self.config.max_jobs is not None
                    and done >= self.config.max_jobs
                ):
                    break
                budget_left = (
                    self.config.max_jobs - done - len(inflight)
                    if self.config.max_jobs is not None
                    else capacity
                )
                if len(inflight) >= capacity or budget_left <= 0:
                    self._stop.wait(0.05)
                    continue
                lease = self._acquire()
                if lease is None:
                    self._stop.wait(
                        0.05 if inflight else self._idle_sleep()
                    )
                    continue
                inflight.add(pool.submit(self._execute_guarded, lease))
        finally:
            pool.shutdown(wait=True)  # SIGTERM semantics: finish, report

    def _idle_sleep(self) -> float:
        """Idle wait between lease polls: the configured poll interval,
        stretched to the breaker's cooldown while the coordinator is
        away (no tight retry loop against a dead endpoint)."""
        return max(
            self.config.poll,
            min(self.breaker.seconds_until_probe(time.monotonic()), 5.0),
        )

    def _acquire(self) -> "dict | None":
        """One lease request; None when there is nothing to do (or the
        coordinator is unreachable / the breaker is open)."""
        if not self.breaker.allow(time.monotonic()):
            return None
        try:
            status, _headers, decoded = self.client.request(
                "POST", "/v1/leases",
                body={"runner": self.id, "capacity": self.config.capacity},
            )
        except OSError:
            self.breaker.record_failure(time.monotonic())
            return None
        self.breaker.record_success()
        if status == 200 and isinstance(decoded, dict):
            return decoded
        return None

    # -- execution -----------------------------------------------------------
    def _execute_guarded(self, lease: dict) -> None:
        """Thread-pool wrapper: an injected service crash must take the
        whole runner down (the lease-expiry scenario), not one thread."""
        try:
            self._execute(lease)
        except SystemExit:
            os._exit(1)
        self._job_finished()

    def _execute(self, lease: dict) -> None:
        lease_id = lease["lease_id"]
        ttl = float(lease.get("ttl") or 15.0)
        stop_heartbeat = threading.Event()
        lost = threading.Event()
        beater = threading.Thread(
            target=self._heartbeat_loop,
            args=(lease_id, ttl, stop_heartbeat, lost),
            daemon=True,
        )
        beater.start()
        before = session_report().snapshot()
        started = time.monotonic()
        result: "dict | None" = None
        error: "str | None" = None
        try:
            # Same crash semantics as the single-process service: an
            # injected `service` fault takes the whole runner down,
            # which is exactly the lease-expiry scenario.  Keyed by
            # delivery attempt so a redelivered job draws fresh — a
            # job-only key at rate 1.0 would crash every redelivery.
            fault_key = (
                f"{lease.get('job_id', lease_id)}"
                f"#a{lease.get('attempt', 1)}"
            )
            if faults.fires("service", fault_key):
                raise SystemExit("injected service crash")
            result = execute_spec(
                lease["spec"],
                store=self.store,
                engine_jobs=self.config.engine_jobs,
            )
        except SystemExit:
            raise
        except BaseException as exc:  # report, don't die: leases must settle
            error = f"{type(exc).__name__}: {exc}"
        finally:
            stop_heartbeat.set()
        beater.join(timeout=5.0)
        if lost.is_set():
            # The heartbeat loop saw a 410: the lease expired and the
            # job was redelivered.  Posting the completion would only
            # earn another 410 (the contract's late-duplicate answer),
            # so drop it here and let the new attempt settle the job.
            print(
                f"runner {self.id}: lease {lease_id} lost; "
                f"discarding result",
                flush=True,
            )
            return
        wall = time.monotonic() - started
        delta = session_report().since(before)
        body = {
            "runner": self.id,
            "wall": wall,
            "breaker_opens": self.breaker.opens,
            "engine": {
                "jobs_run": delta.jobs_run,
                "hits": delta.hits,
                "retries": delta.retries,
                "fallbacks": delta.fallbacks,
            },
        }
        if error is None:
            body["result"] = result
        else:
            body["error"] = error
        self._report(lease_id, body)

    def _report(self, lease_id: str, body: dict) -> None:
        """Post the completion; a 410 means the lease expired and the
        job was redelivered — the payload is correctly discarded.  An
        unreachable coordinator is retried through the breaker (paced
        by its backoff), then the result is dropped: lease expiry
        redelivers the job, and the shared store already holds the
        sub-job results."""
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if not self.breaker.allow(time.monotonic()):
                self._stop.wait(
                    min(
                        self.breaker.seconds_until_probe(time.monotonic()),
                        0.5,
                    )
                    or 0.05
                )
                continue
            try:
                self.client.request(
                    "POST", f"/v1/leases/{lease_id}/complete", body=body
                )
            except OSError:
                self.breaker.record_failure(time.monotonic())
                continue
            self.breaker.record_success()
            return
        print(
            f"runner {self.id}: could not report lease {lease_id}; "
            f"relying on redelivery",
            flush=True,
        )

    def _heartbeat_loop(
        self,
        lease_id: str,
        ttl: float,
        stop: threading.Event,
        lost: threading.Event,
    ) -> None:
        interval = max(0.05, ttl / 3.0)
        while not stop.wait(interval):
            if not self.breaker.allow(time.monotonic()):
                continue  # open breaker: skip the beat, not the job
            try:
                status, _headers, _decoded = self.client.request(
                    "POST", f"/v1/leases/{lease_id}/heartbeat"
                )
            except OSError:
                self.breaker.record_failure(time.monotonic())
                continue  # transient; the next beat may land in time
            self.breaker.record_success()
            if status == 410:
                lost.set()
                return


def run_runner(config: RunnerConfig) -> int:
    """Blocking entry point for ``stfm-sim runner``."""
    return ClusterRunner(config).run()
