"""The coordinator's durable lease table.

A lease is the unit of work ownership in the cluster: one job granted
to one runner for a bounded time.  Heartbeats extend the deadline;
missing them expires the lease, and the coordinator requeues the job
for another runner (at-least-once delivery).  A completion arriving
after the lease expired is *discarded* — the redelivered attempt is
authoritative — which keeps late duplicates out of the job state.

Leases persist one-file-per-lease under the coordinator state
directory.  A restarted coordinator cannot trust wall-clock deadlines
written by a previous incarnation (deadlines are monotonic-clock
values), so recovery treats every persisted lease as already expired:
the job store independently requeues non-terminal jobs, and the stale
lease files are counted and removed.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.cluster.lease_model import LeaseSanitizer, sanitize_enabled


@dataclass
class Lease:
    """One job granted to one runner until ``deadline`` (monotonic)."""

    id: str
    job_id: str
    digest: str
    runner: str
    deadline: float
    attempt: int

    def to_dict(self) -> dict:
        # The deadline is deliberately absent: monotonic-clock values
        # are meaningless to any other process or incarnation.
        return {
            "id": self.id,
            "job_id": self.job_id,
            "digest": self.digest,
            "runner": self.runner,
            "attempt": self.attempt,
        }


class LeaseTable:
    """Grant / heartbeat / complete / expire bookkeeping, durably.

    Args:
        root: Directory for lease persistence, or None for in-memory
            only (unit tests).
        ttl: Seconds a lease lives without a heartbeat.
        id_prefix: Namespace baked into every lease id (the coordinator
            passes its incarnation, e.g. ``"i3-"``).  A restarted
            coordinator restarts the sequence counter, so without the
            prefix a pre-crash runner's late completion for the *old*
            ``lease-000001`` could settle the *new* ``lease-000001``'s
            job.
    """

    def __init__(
        self, root: "str | Path | None", ttl: float, id_prefix: str = ""
    ) -> None:
        if ttl <= 0:
            raise ValueError("lease ttl must be positive")
        self.ttl = ttl
        self.id_prefix = id_prefix
        self.root = Path(root).expanduser() if root is not None else None
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
        self._leases: dict[str, Lease] = {}
        self._by_job: dict[str, str] = {}
        self._seq = 0
        # Counters surfaced through /metrics.
        self.granted: dict[str, int] = {}  # per runner
        self.completed: dict[str, int] = {}  # per runner
        self.expirations = 0
        self.redeliveries = 0
        self.late_completions = 0
        self._attempts: dict[str, int] = {}  # job_id -> deliveries so far
        # Opt-in shadow checker (STFM_SIM_LEASE_SANITIZE=1): replays
        # every transition against the declarative protocol model and
        # raises on the first illegal one.  Observation-only — results
        # are bit-identical with it on or off.
        self.sanitizer: "LeaseSanitizer | None" = (
            LeaseSanitizer() if sanitize_enabled() else None
        )

    # -- recovery ------------------------------------------------------------
    def recover(self) -> int:
        """Discard leases persisted by a previous incarnation.

        Returns how many stale leases were found; each counts as an
        expiration (the jobs themselves are requeued by the job store's
        own recovery, which re-queues every non-terminal job).
        """
        if self.root is None:
            return 0
        stale = 0
        for path in sorted(self.root.glob("*.json")):
            try:
                raw = json.loads(path.read_text())
                self._attempts[raw["job_id"]] = max(
                    self._attempts.get(raw["job_id"], 0), int(raw["attempt"])
                )
                stale += 1
                if self.sanitizer is not None:
                    self.sanitizer.observe_recover(str(raw.get("id", path.stem)))
            except (OSError, ValueError, KeyError, TypeError):
                pass
            try:
                path.unlink()
            except OSError:
                pass
        self.expirations += stale
        return stale

    # -- lifecycle -----------------------------------------------------------
    def grant(self, job_id: str, digest: str, runner: str, now: float) -> Lease:
        """Lease ``job_id`` to ``runner``; the caller has already taken
        the job off the admission queue."""
        if job_id in self._by_job:
            raise ValueError(f"job {job_id!r} is already leased")
        self._seq += 1
        attempt = self._attempts.get(job_id, 0) + 1
        self._attempts[job_id] = attempt
        lease = Lease(
            id=f"lease-{self.id_prefix}{self._seq:06d}",
            job_id=job_id,
            digest=digest,
            runner=runner,
            deadline=now + self.ttl,
            attempt=attempt,
        )
        self._leases[lease.id] = lease
        self._by_job[job_id] = lease.id
        self.granted[runner] = self.granted.get(runner, 0) + 1
        self._persist(lease)
        if self.sanitizer is not None:
            self.sanitizer.observe_grant(lease.id, job_id, runner, attempt)
        return lease

    def heartbeat(self, lease_id: str, now: float) -> "Lease | None":
        """Extend the lease's deadline; None when the lease is gone
        (expired or completed) — the runner should abandon the job."""
        lease = self._leases.get(lease_id)
        if self.sanitizer is not None:
            self.sanitizer.observe_heartbeat(lease_id, hit=lease is not None)
        if lease is None:
            return None
        lease.deadline = now + self.ttl
        return lease

    def complete(self, lease_id: str) -> "Lease | None":
        """Settle a lease on completion; None when it already expired
        (the result is a late duplicate and must be discarded)."""
        lease = self._leases.pop(lease_id, None)
        if self.sanitizer is not None:
            self.sanitizer.observe_complete(lease_id, hit=lease is not None)
        if lease is None:
            self.late_completions += 1
            return None
        del self._by_job[lease.job_id]
        self._attempts.pop(lease.job_id, None)
        self.completed[lease.runner] = self.completed.get(lease.runner, 0) + 1
        self._unpersist(lease)
        return lease

    def expire_due(self, now: float) -> list[Lease]:
        """Remove and return every lease past its deadline."""
        due = [l for l in self._leases.values() if l.deadline <= now]
        for lease in due:
            del self._leases[lease.id]
            del self._by_job[lease.job_id]
            self.expirations += 1
            self.redeliveries += 1
            self._unpersist(lease)
            if self.sanitizer is not None:
                self.sanitizer.observe_expire(lease.id)
        return due

    # -- views ---------------------------------------------------------------
    def active(self) -> list[Lease]:
        return list(self._leases.values())

    def active_by_runner(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for lease in self._leases.values():
            counts[lease.runner] = counts.get(lease.runner, 0) + 1
        return counts

    def for_job(self, job_id: str) -> "Lease | None":
        lease_id = self._by_job.get(job_id)
        return self._leases.get(lease_id) if lease_id else None

    def __len__(self) -> int:
        return len(self._leases)

    # -- persistence ---------------------------------------------------------
    def _persist(self, lease: Lease) -> None:
        if self.root is None:
            return
        path = self.root / f"{lease.id}.json"
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(lease.to_dict(), handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _unpersist(self, lease: Lease) -> None:
        if self.root is None:
            return
        try:
            (self.root / f"{lease.id}.json").unlink()
        except OSError:
            pass
