"""``stfm-sim chaos`` — the cluster chaos soak harness.

One command that proves the headline robustness claim at cluster
scale: *a chaotic cluster still produces bit-identical figures*.  The
soak runs fig3 through a real subprocess cluster three times::

    baseline   in-process, fault-free          -> reference rows
    chaos      cluster + seeded network faults
               + coordinator kill -9 mid-sweep
               + restart on the same port      -> must match baseline
    replay     the same chaos schedule again   -> must match baseline,
                                                  and must fire the
                                                  identical replay-
                                                  stable decision set

and asserts, from ``/metrics`` and the fault spool:

* rows bit-identical to the fault-free baseline (both chaos runs);
* exactly-once settlement — ``stfm_store_proxy_duplicate_puts_total``
  is 0 (every proxy PUT is conditional; a redundant upload is a 412
  skip, never a duplicate);
* ``stfm_cluster_resume_recoveries_total`` >= 1 — the killed
  coordinator really did resume the sweep from persisted state;
* ``stfm_cluster_runner_breaker_opens_total`` >= 1 — the runner rode
  out the outage through its circuit breaker, not a tight retry loop;
* ``stfm_store_proxy_conditional_put_skips_total`` >= 1 — forced by an
  explicit double-put probe, so the schedule *guarantees* it;
* the replay-stable fired decision sets of the two chaos runs are
  equal (see :func:`repro.faults.replay_stable_decisions`).

The cluster children run under ``STFM_SIM_LEASE_SANITIZE=1``: any
illegal lease transition raises inside the coordinator and the soak
fails loudly.  The harness process itself stays fault-free — only the
cluster children inherit ``STFM_SIM_FAULTS``.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from dataclasses import dataclass

from repro import faults
from repro.service.client import ServiceClient, parse_metrics

#: The seeded schedule: store-level network faults (content-derived
#: keys, replay-stable), plus the PR 5 engine/store sites for spice.
#: Client-level transport faults (attempt-scoped keys) ride along on
#: the same ``refused``/``reset``/``latency`` rates automatically.
CHAOS_SITES = (
    "refused=0.08,reset=0.08,latency=0.05,partition=0.05,"
    "truncate=0.08,corrupt=0.08,write=0.05,crash=0.05"
)

#: How long the coordinator stays dead.  Long enough that every runner
#: contact path (lease poll at 0.05s, heartbeats at ttl/3, completion
#: reports) accumulates the 3 consecutive failures that open the
#: breaker — which is what lets the soak assert breaker_opens >= 1.
OUTAGE_SECONDS = 3.0

FIG3_SPEC = {"kind": "experiment", "experiment": "fig3", "scale": "tiny"}


@dataclass(frozen=True)
class ChaosConfig:
    """Everything ``stfm-sim chaos`` needs."""

    seed: int = 7
    quick: bool = False  # skip the replay leg (CI smoke; local = full)
    lease_ttl: float = 1.5
    workdir: "str | None" = None  # None: a temp dir, removed on success
    keep: bool = False  # keep the workdir for post-mortem


class ChaosFailure(AssertionError):
    """One of the soak's invariants did not hold."""


def fault_spec(seed: int) -> str:
    return f"{CHAOS_SITES},seed={seed}"


def _baseline_rows() -> list:
    """Fault-free in-process fig3: the reference rows."""
    from repro.experiments import run_experiment
    from repro.experiments.io import result_to_dict

    saved = os.environ.pop(faults.FAULTS_ENV, None)
    try:
        return result_to_dict(run_experiment("fig3", scale="tiny"))["rows"]
    finally:
        if saved is not None:
            os.environ[faults.FAULTS_ENV] = saved


def _wait_result(client: ServiceClient, job_id: str, timeout: float) -> dict:
    """Like ``client.wait`` but rides out coordinator downtime: any
    connection error or transient HTTP failure is just polled through."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            view = client.result(job_id)
        except Exception:
            time.sleep(0.2)
            continue
        if view.get("status") in ("done", "failed"):
            return view
        time.sleep(0.1)
    raise ChaosFailure(f"job {job_id} did not settle within {timeout}s")


def _store_entries(client: ServiceClient) -> int:
    try:
        status, _headers, decoded = client.request("GET", "/v1/store")
    except OSError:
        return 0
    if status == 200 and isinstance(decoded, dict):
        return int(decoded.get("entries", 0))
    return 0


def _conditional_put_probe(url: str) -> int:
    """Force a guaranteed conditional-put skip: write one probe blob
    twice.  The second conditional PUT must come back 412.  Returns the
    backend's observed skip count (>= 1 on success)."""
    from repro.engine.backends import HttpStoreBackend

    backend = HttpStoreBackend(url)
    backend.write("chaos-conditional-probe", b"probe")
    backend.write("chaos-conditional-probe", b"probe")
    return backend.conditional_skips


def _chaos_leg(
    label: str, config: ChaosConfig, root: str, baseline_rows: list,
) -> "tuple[dict[str, float], set[tuple[str, str]]]":
    """One full chaos run: cluster up, submit fig3, kill -9 the
    coordinator mid-sweep, restart, settle, assert.  Returns the final
    /metrics and the replay-stable fired decision set."""
    from repro.cluster.supervisor import LocalCluster

    spool = os.path.join(root, f"spool-{label}")
    cluster = LocalCluster(
        runners=1,
        cache_dir=os.path.join(root, f"cache-{label}"),
        state_dir=os.path.join(root, f"state-{label}"),
        lease_ttl=config.lease_ttl,
        poll=0.05,
        extra_env={
            faults.FAULTS_ENV: fault_spec(config.seed),
            faults.FAULT_LOG_ENV: spool,
            "STFM_SIM_LEASE_SANITIZE": "1",
        },
    )
    with cluster:
        client = ServiceClient(cluster.url, retries=4, backoff=0.1)
        job_id = client.submit(FIG3_SPEC)["id"]
        print(f"[{label}] submitted fig3 as {job_id}", flush=True)

        # Wait for real progress (the first sub-job result landing in
        # the shared store) so the kill is genuinely mid-sweep.
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if _store_entries(client) >= 1:
                break
            time.sleep(0.05)
        else:
            raise ChaosFailure(f"[{label}] no store entries within 120s")

        print(f"[{label}] kill -9 coordinator mid-sweep", flush=True)
        cluster.kill_coordinator()
        time.sleep(OUTAGE_SECONDS)
        cluster.restart_coordinator()
        print(f"[{label}] coordinator restarted at {cluster.url}", flush=True)

        view = _wait_result(client, job_id, timeout=300.0)
        if view.get("status") != "done":
            raise ChaosFailure(
                f"[{label}] job finished {view.get('status')!r}: "
                f"{view.get('error')!r}"
            )
        rows = view["result"]["rows"]
        if rows != baseline_rows:
            raise ChaosFailure(
                f"[{label}] rows diverged from the fault-free baseline"
            )
        print(f"[{label}] rows bit-identical to baseline", flush=True)

        skips = _conditional_put_probe(cluster.url)
        if skips < 1:
            raise ChaosFailure(
                f"[{label}] conditional-put probe saw no 412 skip"
            )
        metrics = parse_metrics(client.metrics())
    fired = faults.replay_stable_decisions(faults.read_spool(spool))
    _check_metrics(label, metrics)
    print(
        f"[{label}] ok: {len(fired)} replay-stable fault decision(s), "
        f"breaker opens + resume recovery + 412 skip all observed",
        flush=True,
    )
    return metrics, fired


def _check_metrics(label: str, metrics: "dict[str, float]") -> None:
    duplicates = metrics.get("stfm_store_proxy_duplicate_puts_total", 0)
    if duplicates != 0:
        raise ChaosFailure(
            f"[{label}] exactly-once violated: "
            f"{duplicates:g} duplicate put(s)"
        )
    if metrics.get("stfm_cluster_resume_recoveries_total", 0) < 1:
        raise ChaosFailure(
            f"[{label}] coordinator restart recovered no jobs"
        )
    if metrics.get("stfm_store_proxy_conditional_put_skips_total", 0) < 1:
        raise ChaosFailure(f"[{label}] no conditional-put skips recorded")
    opens = sum(
        value
        for name, value in metrics.items()
        if name.startswith("stfm_cluster_runner_breaker_opens_total")
    )
    if opens < 1:
        raise ChaosFailure(f"[{label}] no runner breaker opening recorded")


def run_chaos(config: ChaosConfig) -> int:
    """Blocking entry point for ``stfm-sim chaos``."""
    root = config.workdir or tempfile.mkdtemp(prefix="stfm-chaos-")
    print(
        f"chaos soak: seed={config.seed} spec='{fault_spec(config.seed)}' "
        f"workdir={root}",
        flush=True,
    )
    try:
        print("[baseline] fault-free in-process fig3", flush=True)
        baseline = _baseline_rows()
        _metrics, fired = _chaos_leg("chaos", config, root, baseline)
        if config.quick:
            print("chaos soak passed (quick: replay leg skipped)", flush=True)
        else:
            _metrics2, fired2 = _chaos_leg("replay", config, root, baseline)
            if fired2 != fired:
                missing = sorted(fired - fired2)[:5]
                extra = sorted(fired2 - fired)[:5]
                raise ChaosFailure(
                    "replay fired a different replay-stable decision set "
                    f"(missing {missing!r}, extra {extra!r})"
                )
            print(
                f"chaos soak passed: replay reproduced all "
                f"{len(fired)} replay-stable fault decision(s)",
                flush=True,
            )
    except ChaosFailure as exc:
        print(f"CHAOS SOAK FAILED: {exc}", flush=True)
        print(f"(workdir kept for post-mortem: {root})", flush=True)
        return 1
    if config.workdir is None and not config.keep:
        shutil.rmtree(root, ignore_errors=True)
    return 0
