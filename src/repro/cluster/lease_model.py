"""Declarative model of the lease protocol, checked twice.

The cluster's correctness argument (DESIGN §3.15) hinges on the lease
lifecycle: a job is *leased* to exactly one runner at a time, kept
alive by heartbeats, and *settled* exactly once — a completion that
arrives after expiry is a late duplicate and must be refused with
410.  This module states that protocol as data:

    granted ──heartbeat*──▶ granted ──complete──▶ settled
       │                                             ▲
       └──────ttl elapses──▶ expired ──regrant──────┘ (new attempt)

and the tables below are consumed by two independent checkers:

* statically — ``simlint`` rules SIM107/SIM108 verify that the
  coordinator's handlers only perform the :data:`HANDLER_OPS` they
  declare and only emit status codes listed in :data:`API_CONTRACT`
  (and that the runner only branches on declared codes);
* dynamically — :class:`LeaseSanitizer` (opt-in via
  ``STFM_SIM_LEASE_SANITIZE=1``, observation-only like the DRAM
  sanitizer in :mod:`repro.analysis.protocol`) shadows every
  :class:`~repro.cluster.leases.LeaseTable` transition during cluster
  tests and raises :class:`LeaseProtocolViolation` on the first
  illegal one, with a window of recent events for diagnosis.

Results with the sanitizer enabled are bit-identical to a run without
it: it observes, it never steers.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass, field

#: Lease-table operations that are protocol *transitions* (read-only
#: accessors like ``active_by_runner`` are not).
TRANSITION_OPS = frozenset(
    {"grant", "heartbeat", "complete", "expire_due", "recover"}
)

#: Shadow state machine: (state, op) -> next state.  ``idle`` means no
#: live lease for the job (including after expiry — the next grant
#: opens a new attempt).
LEASE_TRANSITIONS = {
    ("idle", "grant"): "granted",
    ("granted", "heartbeat"): "granted",
    ("granted", "complete"): "settled",
    ("granted", "expire_due"): "idle",
    ("granted", "recover"): "idle",
}

#: Which LeaseTable transitions each coordinator entry point may
#: perform.  SIM107 flags any transition call outside this table.
HANDLER_OPS = {
    "ClusterCoordinator._route_lease_request": frozenset({"grant"}),
    "ClusterCoordinator._route_heartbeat": frozenset({"heartbeat"}),
    "ClusterCoordinator._route_complete": frozenset({"complete"}),
    "ClusterCoordinator._expire_due": frozenset({"expire_due"}),
    "ClusterCoordinator.start": frozenset({"recover"}),
}

#: Route handled by each HTTP-facing handler (SIM108 joins this with
#: :data:`API_CONTRACT`; ``*`` is a path parameter).
HANDLER_ROUTES = {
    "ClusterCoordinator._route_lease_request": ("POST", "/v1/leases"),
    "ClusterCoordinator._route_heartbeat": (
        "POST", "/v1/leases/*/heartbeat"
    ),
    "ClusterCoordinator._route_complete": (
        "POST", "/v1/leases/*/complete"
    ),
}

#: Status codes each lease route may produce.  400s come from
#: malformed bodies (``_parse_json``/missing runner id), 503 from a
#: draining coordinator, 204 from an empty queue, 410 from expired or
#: already-settled leases.
API_CONTRACT = {
    ("POST", "/v1/leases"): frozenset({200, 204, 400, 503}),
    ("POST", "/v1/leases/*/heartbeat"): frozenset({200, 410}),
    ("POST", "/v1/leases/*/complete"): frozenset({200, 400, 410}),
}

LEASE_SANITIZE_ENV = "STFM_SIM_LEASE_SANITIZE"


def sanitize_enabled() -> bool:
    """True when ``STFM_SIM_LEASE_SANITIZE`` asks for shadow checking."""
    value = os.environ.get(LEASE_SANITIZE_ENV, "").strip().lower()
    return value not in ("", "0", "false", "no")


@dataclass(frozen=True)
class LeaseEvent:
    """One observed lease-table transition."""

    op: str
    lease_id: str
    job_id: str
    runner: str
    attempt: int
    detail: str = ""

    def format(self) -> str:
        return (
            f"{self.op:<10} lease={self.lease_id} job={self.job_id} "
            f"runner={self.runner} attempt={self.attempt}"
            + (f"  ({self.detail})" if self.detail else "")
        )


class LeaseProtocolViolation(AssertionError):
    """An observed transition the lease state machine does not allow."""

    def __init__(
        self,
        rule: str,
        event: LeaseEvent,
        window: "list[LeaseEvent]",
    ) -> None:
        self.rule = rule
        self.event = event
        self.window = list(window)
        lines = [f"lease protocol violation: {rule}", f"  at: {event.format()}"]
        if self.window:
            lines.append("  recent transitions:")
            lines.extend(f"    {item.format()}" for item in self.window)
        super().__init__("\n".join(lines))


@dataclass
class LeaseSanitizer:
    """Shadow copy of the lease lifecycle, one state per job.

    The :class:`~repro.cluster.leases.LeaseTable` calls ``observe_*``
    *after* each transition (and for misses, after each refused one);
    the sanitizer replays it against :data:`LEASE_TRANSITIONS` and
    raises on the first divergence.  It holds no references into the
    table and never mutates anything — disabling it cannot change a
    run's results.
    """

    history_limit: int = 64
    #: lease_id -> (job_id, runner, attempt) for shadow-active leases.
    active: "dict[str, tuple[str, str, int]]" = field(default_factory=dict)
    job_lease: "dict[str, str]" = field(default_factory=dict)
    settled: "set[str]" = field(default_factory=set)
    last_attempt: "dict[str, int]" = field(default_factory=dict)
    transitions_checked: int = 0
    history: "deque[LeaseEvent]" = field(default_factory=lambda: deque())

    def _record(self, event: LeaseEvent) -> None:
        self.transitions_checked += 1
        self.history.append(event)
        while len(self.history) > self.history_limit:
            self.history.popleft()

    def _fail(self, rule: str, event: LeaseEvent) -> None:
        raise LeaseProtocolViolation(rule, event, list(self.history))

    # -- observation hooks ---------------------------------------------------

    def observe_grant(
        self, lease_id: str, job_id: str, runner: str, attempt: int
    ) -> None:
        event = LeaseEvent("grant", lease_id, job_id, runner, attempt)
        self._record(event)
        if job_id in self.job_lease:
            self._fail(
                "a job may hold at most one live lease "
                f"(job {job_id} already leased as {self.job_lease[job_id]})",
                event,
            )
        if job_id in self.settled:
            self._fail("a settled job must never be re-granted", event)
        if attempt <= self.last_attempt.get(job_id, 0):
            self._fail(
                "attempt numbers must increase monotonically "
                f"(last was {self.last_attempt.get(job_id, 0)})",
                event,
            )
        self.active[lease_id] = (job_id, runner, attempt)
        self.job_lease[job_id] = lease_id
        self.last_attempt[job_id] = attempt

    def _drop(self, lease_id: str) -> None:
        job_id, _, _ = self.active.pop(lease_id)
        self.job_lease.pop(job_id, None)

    def observe_heartbeat(self, lease_id: str, hit: bool) -> None:
        known = self.active.get(lease_id)
        event = LeaseEvent(
            "heartbeat", lease_id, known[0] if known else "?",
            known[1] if known else "?", known[2] if known else 0,
            detail="accepted" if hit else "refused (410)",
        )
        self._record(event)
        if hit and known is None:
            self._fail(
                "heartbeat accepted for a lease that is not active "
                "(the table resurrected an expired/settled lease)",
                event,
            )
        if not hit and known is not None:
            self._fail(
                "heartbeat refused while the lease is still active "
                "(the table lost a live lease)",
                event,
            )

    def observe_complete(self, lease_id: str, hit: bool) -> None:
        known = self.active.get(lease_id)
        event = LeaseEvent(
            "complete", lease_id, known[0] if known else "?",
            known[1] if known else "?", known[2] if known else 0,
            detail="settled" if hit else "late (410)",
        )
        self._record(event)
        if hit:
            if known is None:
                self._fail(
                    "completion accepted for a lease that is not active",
                    event,
                )
            job_id = known[0]
            if job_id in self.settled:
                self._fail(
                    "a job must settle exactly once "
                    f"(job {job_id} settled twice)",
                    event,
                )
            self._drop(lease_id)
            self.settled.add(job_id)
        elif known is not None:
            self._fail(
                "completion refused while the lease is still active",
                event,
            )

    def observe_expire(self, lease_id: str) -> None:
        known = self.active.get(lease_id)
        event = LeaseEvent(
            "expire_due", lease_id, known[0] if known else "?",
            known[1] if known else "?", known[2] if known else 0,
        )
        self._record(event)
        if known is None:
            self._fail(
                "expiry reported for a lease that is not active", event
            )
        self._drop(lease_id)

    def observe_recover(self, lease_id: str) -> None:
        """Startup recovery discards persisted leases as expired."""
        event = LeaseEvent("recover", lease_id, "?", "?", 0)
        self._record(event)
        # Recovery starts from a fresh table in a fresh process; the
        # shadow state is empty by construction, so any lease the
        # table *kept* across recover would show up on the next grant.
        self.active.pop(lease_id, None)
