"""Local dev cluster: one coordinator + N runners as subprocesses.

``stfm-sim cluster --runners 3`` stands up a complete cluster on one
machine for development, benchmarks, and the CI smoke test.  Each role
runs as a real OS process (``python -m repro.cli coordinator`` /
``runner``) — so ``kill -9`` on a runner exercises the same lease
expiry and redelivery machinery a production deployment would rely on.

:class:`LocalCluster` is the programmatic face (a context manager the
tests and the bench suite drive); :func:`run_local_cluster` wraps it
for the CLI, forwarding SIGTERM/SIGINT to the children.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import threading
import urllib.parse
from pathlib import Path

_URL_RE = re.compile(r"listening on (http://[\w.:-]+)")


def _child_env() -> dict:
    """The subprocess environment, with ``repro`` importable."""
    import repro

    src = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


class LocalCluster:
    """A 1-coordinator + N-runner cluster of subprocesses.

    Args:
        runners: How many runner processes to spawn.
        cache_dir: Shared store location for the coordinator (any
            backend: directory, ``sqlite:`` path, URL); None disables.
        state_dir: Coordinator state directory (jobs + leases).
        lease_ttl: Seconds a lease survives without a heartbeat — short
            TTLs make the kill-recovery tests fast.
        engine_jobs: Simulation processes per runner job.
        queue_limit: Coordinator admission-queue capacity.
        runner_store: Store location for runners; the default
            ``"proxy"`` mounts the coordinator's store over HTTP.
        extra_env: Extra environment variables for every child (fault
            injection, etc.).
    """

    def __init__(
        self,
        runners: int = 2,
        cache_dir: "str | None" = None,
        state_dir: str = "stfm-coordinator-state",
        lease_ttl: float = 15.0,
        engine_jobs: int = 1,
        queue_limit: int = 32,
        host: str = "127.0.0.1",
        port: int = 0,
        runner_store: str = "proxy",
        poll: float = 0.2,
        capacity: int = 1,
        extra_env: "dict | None" = None,
    ) -> None:
        self.runners = runners
        self.cache_dir = cache_dir
        self.state_dir = state_dir
        self.lease_ttl = lease_ttl
        self.engine_jobs = engine_jobs
        self.queue_limit = queue_limit
        self.host = host
        self.port = port
        self.runner_store = runner_store
        self.poll = poll
        self.capacity = capacity
        self.extra_env = extra_env or {}
        self.url: "str | None" = None
        self.coordinator_proc: "subprocess.Popen | None" = None
        self.runner_procs: list[subprocess.Popen] = []

    # -- lifecycle -----------------------------------------------------------
    def _coordinator_cmd(self, port: int) -> list[str]:
        cmd = [
            sys.executable, "-m", "repro.cli", "coordinator",
            "--host", self.host, "--port", str(port),
            "--state-dir", self.state_dir,
            "--lease-ttl", str(self.lease_ttl),
            "--queue-limit", str(self.queue_limit),
        ]
        if self.cache_dir:
            cmd += ["--cache-dir", str(self.cache_dir)]
        return cmd

    def start(self, timeout: float = 30.0) -> str:
        """Spawn everything; returns the coordinator URL."""
        env = _child_env()
        env.update({k: str(v) for k, v in self.extra_env.items()})
        self.coordinator_proc = subprocess.Popen(
            self._coordinator_cmd(self.port),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env,
        )
        self.url = self._await_url(self.coordinator_proc, timeout)
        for index in range(self.runners):
            self.runner_procs.append(self.spawn_runner(index, env=env))
        return self.url

    def spawn_runner(
        self, index: int, env: "dict | None" = None
    ) -> subprocess.Popen:
        """Start one runner process (also used to replace a killed one)."""
        if self.url is None:
            raise RuntimeError("cluster is not started")
        if env is None:
            env = _child_env()
            env.update({k: str(v) for k, v in self.extra_env.items()})
        cmd = [
            sys.executable, "-m", "repro.cli", "runner",
            "--coordinator", self.url,
            "--id", f"runner-{index}",
            "--store", self.runner_store,
            "--engine-jobs", str(self.engine_jobs),
            "--poll", str(self.poll),
            "--capacity", str(self.capacity),
        ]
        return subprocess.Popen(
            cmd,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=env,
        )

    def kill_runner(self, index: int) -> int:
        """``kill -9`` one runner (the redelivery test); returns its pid."""
        proc = self.runner_procs[index]
        proc.kill()  # SIGKILL: no drain, no goodbye — leases must expire
        proc.wait(timeout=10)
        return proc.pid

    def kill_coordinator(self) -> int:
        """``kill -9`` the coordinator mid-sweep (the crash-resume
        test); returns its pid.  The bound port and ``self.url`` are
        kept so :meth:`restart_coordinator` can resurrect it in place
        while the runners keep probing the same address."""
        proc = self.coordinator_proc
        if proc is None:
            raise RuntimeError("cluster has no coordinator to kill")
        proc.kill()  # SIGKILL: no drain, no checkpoint flush, nothing
        proc.wait(timeout=10)
        if proc.stdout is not None:
            proc.stdout.close()
        self.coordinator_proc = None
        return proc.pid

    def restart_coordinator(self, timeout: float = 30.0) -> str:
        """Restart the coordinator on the *same* host:port with the
        same state directory — the durable-checkpoint recovery path.
        Returns the (unchanged) coordinator URL."""
        if self.url is None:
            raise RuntimeError("cluster is not started")
        if self.coordinator_proc is not None:
            raise RuntimeError("coordinator is still running")
        port = urllib.parse.urlsplit(self.url).port or 8765
        env = _child_env()
        env.update({k: str(v) for k, v in self.extra_env.items()})
        self.coordinator_proc = subprocess.Popen(
            self._coordinator_cmd(port),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env,
        )
        self.url = self._await_url(self.coordinator_proc, timeout)
        return self.url

    def stop(self, timeout: float = 30.0) -> None:
        """SIGTERM everyone (runners first), reap, close pipes."""
        for proc in self.runner_procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self.runner_procs:
            try:
                proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5)
        self.runner_procs = []
        proc = self.coordinator_proc
        if proc is not None:
            if proc.poll() is None:
                proc.terminate()
            try:
                proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5)
            if proc.stdout is not None:
                proc.stdout.close()
            self.coordinator_proc = None

    def __enter__(self) -> "LocalCluster":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()

    # -- helpers -------------------------------------------------------------
    @staticmethod
    def _await_url(proc: subprocess.Popen, timeout: float) -> str:
        """Read the coordinator's stdout until its listening line."""
        found: list[str] = []

        def scan() -> None:
            assert proc.stdout is not None
            for raw in proc.stdout:
                match = _URL_RE.search(raw.decode("utf-8", "replace"))
                if match:
                    found.append(match.group(1))
                    return

        scanner = threading.Thread(target=scan, daemon=True)
        scanner.start()
        scanner.join(timeout)
        if not found:
            proc.kill()
            raise RuntimeError(
                "coordinator did not announce a listening address "
                f"within {timeout}s (exit={proc.poll()})"
            )
        return found[0]


def run_local_cluster(cluster: LocalCluster) -> int:
    """Blocking entry point for ``stfm-sim cluster``: run until
    SIGTERM/SIGINT, then tear the children down gracefully."""
    stop = threading.Event()
    for sig in (signal.SIGTERM, signal.SIGINT):
        signal.signal(sig, lambda *_: stop.set())
    url = cluster.start()
    print(
        f"cluster up: coordinator at {url}, "
        f"{len(cluster.runner_procs)} runner(s)",
        flush=True,
    )
    try:
        while not stop.is_set():
            if (
                cluster.coordinator_proc is not None
                and cluster.coordinator_proc.poll() is not None
            ):
                print("coordinator exited; stopping cluster", flush=True)
                break
            stop.wait(0.5)
    finally:
        cluster.stop()
    print("cluster stopped", flush=True)
    return 0
