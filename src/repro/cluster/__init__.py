"""Distributed sweep cluster: coordinator/runner topology.

The single-process service (``repro.service``) splits into two roles:

* a **coordinator** (:class:`~repro.cluster.coordinator.ClusterCoordinator`)
  that owns admission, job state, the durable lease table, and —
  optionally — the shared result store, served over HTTP; and
* N **runner** processes (:class:`~repro.cluster.runner.ClusterRunner`)
  that lease jobs from the coordinator, execute them through the same
  engine as single-process ``serve``, heartbeat while working, and post
  results back.

Delivery is *at-least-once*: a lease that misses its heartbeats expires
and the job is redelivered to another runner.  Determinism plus the
content-addressed result store make redelivery safe — a re-executed
job resolves from cache (or recomputes the identical payload), so
clients never observe duplicate or divergent results.
"""

from repro.cluster.coordinator import ClusterCoordinator, CoordinatorConfig
from repro.cluster.leases import Lease, LeaseTable
from repro.cluster.runner import ClusterRunner, RunnerConfig
from repro.cluster.supervisor import LocalCluster

__all__ = [
    "ClusterCoordinator",
    "CoordinatorConfig",
    "ClusterRunner",
    "RunnerConfig",
    "Lease",
    "LeaseTable",
    "LocalCluster",
]
