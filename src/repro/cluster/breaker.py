"""Runner-side circuit breaker for the coordinator connection.

A runner whose coordinator goes away must not spin in a tight
connect/fail loop: every lease poll, heartbeat, and completion report
would burn a connection attempt (and, against a half-dead coordinator,
a full client timeout each).  The breaker turns that into paced,
bounded probing:

* **closed** — normal operation.  Failures are counted; reaching
  ``failure_threshold`` consecutive failures opens the breaker.
* **open** — calls are refused locally (no network I/O at all) until a
  cooldown elapses.  The cooldown grows exponentially with consecutive
  openings — ``base * 2^(n-1)``, capped at ``max_cooldown`` — and
  carries deterministic jitter so a fleet of runners that lost the
  same coordinator does not reconnect in lockstep.
* **half-open** — after the cooldown, exactly one probe call is let
  through.  Success closes the breaker (and resets the backoff
  ladder); failure re-opens it with the next-longer cooldown.

Determinism: the jitter factor is drawn from ``random.Random`` seeded
with ``(seed, opening ordinal)`` — the same runner id reproduces the
identical backoff schedule, which keeps chaos soaks replayable.

Thread safety: the runner consults the breaker from its lease loop,
its executor threads, and its heartbeat threads; every transition
happens under one internal lock.
"""

from __future__ import annotations

import random
import threading

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Failure-counting breaker with exponential backoff + jitter.

    Args:
        failure_threshold: Consecutive failures that open the breaker.
        cooldown: Base cooldown after the first opening, seconds.
        max_cooldown: Ceiling for the exponential cooldown ladder.
        seed: Jitter seed — typically the runner id, so each runner's
            schedule is deterministic but distinct from its peers'.
    """

    #: Jitter keeps reconnects of a runner fleet spread over +/-15%.
    _JITTER_LOW = 0.85
    _JITTER_HIGH = 1.15

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown: float = 0.5,
        max_cooldown: float = 8.0,
        seed: str = "",
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if cooldown <= 0 or max_cooldown < cooldown:
            raise ValueError("need 0 < cooldown <= max_cooldown")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.max_cooldown = max_cooldown
        self.seed = seed
        self.state = CLOSED
        self.opens = 0  # total openings (the /metrics counter)
        self._consecutive_opens = 0  # backoff ladder position
        self._failures = 0
        self._retry_at = 0.0
        self._probing = False
        self._lock = threading.Lock()

    # -- queries -------------------------------------------------------------
    def allow(self, now: float) -> bool:
        """Whether a call may go out at ``now``.

        In the open state this flips to half-open once the cooldown has
        elapsed and admits exactly one probe; concurrent callers are
        refused until that probe settles.
        """
        with self._lock:
            if self.state == CLOSED:
                return True
            if self.state == OPEN and now >= self._retry_at:
                self.state = HALF_OPEN
                self._probing = True
                return True
            if self.state == HALF_OPEN and not self._probing:
                self._probing = True
                return True
            return False

    def seconds_until_probe(self, now: float) -> float:
        """How long until the next call would be admitted (0 = now)."""
        with self._lock:
            if self.state == CLOSED:
                return 0.0
            if self.state == HALF_OPEN and not self._probing:
                return 0.0
            return max(0.0, self._retry_at - now)

    # -- outcomes ------------------------------------------------------------
    def record_success(self) -> None:
        """Any successful round trip: close and reset the ladder."""
        with self._lock:
            self.state = CLOSED
            self._failures = 0
            self._consecutive_opens = 0
            self._probing = False

    def record_failure(self, now: float) -> None:
        """One failed round trip (connection error / timeout)."""
        with self._lock:
            self._failures += 1
            if self.state == HALF_OPEN or (
                self.state == CLOSED
                and self._failures >= self.failure_threshold
            ):
                self._open(now)

    def _open(self, now: float) -> None:
        self.state = OPEN
        self.opens += 1
        self._consecutive_opens += 1
        self._probing = False
        base = min(
            self.max_cooldown,
            self.cooldown * (2 ** (self._consecutive_opens - 1)),
        )
        jitter = random.Random(
            f"{self.seed}:open:{self._consecutive_opens}"
        ).uniform(self._JITTER_LOW, self._JITTER_HIGH)
        self._retry_at = now + base * jitter

    def describe(self) -> str:
        with self._lock:
            return (
                f"{self.state} (opens={self.opens}, "
                f"failures={self._failures})"
            )
