#!/usr/bin/env python3
"""All five schedulers on all three of the paper's 4-core case studies.

Reproduces the structure of the paper's Figures 6-8: for each workload
class (memory-intensive / mixed / non-intensive), run FR-FCFS, FCFS,
FR-FCFS+Cap, NFQ and STFM and print per-thread slowdowns, unfairness and
the three throughput metrics.

Usage::

    python examples/scheduler_shootout.py [instruction_budget]
"""

import sys

from repro import ExperimentRunner, SystemConfig, available_policies
from repro.sim.results import format_table

CASE_STUDIES = {
    "I: memory-intensive": ["mcf", "libquantum", "GemsFDTD", "astar"],
    "II: mixed": ["mcf", "leslie3d", "h264ref", "bzip2"],
    "III: non-intensive": ["libquantum", "omnetpp", "hmmer", "h264ref"],
}


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    runner = ExperimentRunner(
        SystemConfig(num_cores=4), instruction_budget=budget
    )
    for label, workload in CASE_STUDIES.items():
        print(f"\n=== Case study {label}: {' + '.join(workload)} ===")
        rows = []
        for policy in available_policies():
            result = runner.run_workload(workload, policy=policy)
            rows.append(
                [result.policy, result.unfairness]
                + [t.slowdown for t in result.threads]
                + [result.weighted_speedup, result.hmean_speedup]
            )
        print(
            format_table(
                ["policy", "unfairness"] + workload + ["w-speedup", "hmean"],
                rows,
            )
        )
    print(
        "\nAcross all three workload classes STFM has the lowest "
        "unfairness, while the *second-best* scheduler changes per "
        "workload — the paper's argument that thread-oblivious heuristics "
        "are workload-dependent (Section 7.2)."
    )


if __name__ == "__main__":
    main()
