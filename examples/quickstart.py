#!/usr/bin/env python3
"""Quickstart: compare FR-FCFS and STFM on a 4-core workload.

Runs the paper's case-study-I workload (mcf + libquantum + GemsFDTD +
astar, Figure 6) under the throughput-oriented baseline scheduler and
under STFM, and prints each thread's memory slowdown plus the system
fairness/throughput metrics.

Usage::

    python examples/quickstart.py [instruction_budget]
"""

import sys

from repro import ExperimentRunner, SystemConfig


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    workload = ["mcf", "libquantum", "GemsFDTD", "astar"]

    runner = ExperimentRunner(
        SystemConfig(num_cores=4), instruction_budget=budget
    )

    print(f"workload: {' + '.join(workload)}  (budget {budget} instr/thread)\n")
    for policy in ("fr-fcfs", "stfm"):
        result = runner.run_workload(workload, policy=policy)
        print(f"[{result.policy}]")
        for thread in result.threads:
            print(
                f"  {thread.name:<12} slowdown {thread.slowdown:5.2f}x   "
                f"(MCPI {thread.mcpi_alone:.2f} alone -> "
                f"{thread.mcpi_shared:.2f} shared)"
            )
        print(
            f"  unfairness {result.unfairness:.2f}   "
            f"weighted speedup {result.weighted_speedup:.2f}   "
            f"hmean speedup {result.hmean_speedup:.2f}\n"
        )
    print(
        "STFM equalizes the slowdowns (unfairness -> ~1.1-1.3) while "
        "keeping weighted speedup at or above the FR-FCFS baseline — the "
        "paper's headline result."
    )


if __name__ == "__main__":
    main()
