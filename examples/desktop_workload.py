#!/usr/bin/env python3
"""Interactive desktop scenario (paper Section 7.4 / Figure 13).

Two memory-hungry background tasks (an XML parser scanning a file
database and Matlab convolving images) run alongside the two foreground
applications the user is actually interacting with (Internet Explorer
and Instant Messenger).  Under FR-FCFS the streaming background threads
monopolize the DRAM and the user-visible applications crawl; STFM
restores responsiveness without a software-visible knob.

Usage::

    python examples/desktop_workload.py [instruction_budget]
"""

import sys

from repro import ExperimentRunner, SystemConfig, available_policies
from repro.sim.results import format_table
from repro.workloads.desktop import DESKTOP_WORKLOAD

FOREGROUND = {"iexplorer", "instant-messenger"}


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    runner = ExperimentRunner(
        SystemConfig(num_cores=4), instruction_budget=budget
    )
    rows = []
    for policy in available_policies():
        result = runner.run_workload(list(DESKTOP_WORKLOAD), policy=policy)
        slowdowns = {t.name: t.slowdown for t in result.threads}
        foreground = max(slowdowns[n] for n in FOREGROUND)
        rows.append(
            [result.policy]
            + [slowdowns[n] for n in DESKTOP_WORKLOAD]
            + [foreground, result.unfairness]
        )
    print(
        format_table(
            ["policy"] + list(DESKTOP_WORKLOAD) + ["worst foreground", "unfairness"],
            rows,
        )
    )
    print(
        "\nThe 'worst foreground' column is what the user feels: STFM "
        "cuts the interactive applications' worst slowdown while the "
        "background jobs lose little."
    )


if __name__ == "__main__":
    main()
