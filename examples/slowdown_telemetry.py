#!/usr/bin/env python3
"""Watch STFM's slowdown estimates evolve over a run.

STFM's entire mechanism rests on estimating, in hardware, how much each
thread *would have* sped up running alone (Section 3.2.2).  This example
samples those estimates every 10k cycles during a contended 4-core run
and prints them as a time series, alongside the fraction of DRAM cycles
spent under the fairness rule.

Usage::

    python examples/slowdown_telemetry.py [instruction_budget]
"""

import sys

from repro import SystemConfig, make_policy
from repro.sim.system import CmpSystem
from repro.sim.telemetry import TelemetrySampler
from repro.workloads.spec2006 import SPEC2006
from repro.workloads.synthetic import generate_trace

WORKLOAD = ["mcf", "libquantum", "GemsFDTD", "astar"]


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    config = SystemConfig(num_cores=4)
    mapper = config.mapper()
    traces = [
        generate_trace(
            SPEC2006[name], mapper, budget, partition=i, num_partitions=4
        )
        for i, name in enumerate(WORKLOAD)
    ]
    policy = make_policy("stfm", num_threads=4)
    system = CmpSystem(
        config, traces, policy, budget,
        mlp_limits=[SPEC2006[n].mlp for n in WORKLOAD],
    )
    telemetry = TelemetrySampler(system, period=10_000).run()

    header = "cycle".rjust(10) + "".join(n.rjust(12) for n in WORKLOAD)
    print(header + "   fairness-rule?")
    for sample in telemetry.samples:
        if sample.estimated_slowdowns is None:
            continue
        row = f"{sample.cycle:>10}" + "".join(
            f"{s:>12.2f}" for s in sample.estimated_slowdowns
        )
        print(row + ("   active" if sample.fairness_mode else ""))
    print(
        f"\nfairness rule active {policy.fairness_rule_fraction:.0%} of "
        f"DRAM cycles; final estimated slowdowns above are what the "
        f"scheduler acted on."
    )


if __name__ == "__main__":
    main()
