#!/usr/bin/env python3
"""The NFQ idleness problem, reproduced (paper Figure 3 / Section 4).

One thread issues memory requests continuously; three others burst in
phase-staggered intervals with idle periods in between.  Fair-queueing
schedulers track per-thread virtual finish times that only advance with
service, so the continuous thread's deadline races ahead while idle
threads' deadlines go stale — when a bursty thread returns, it captures
the DRAM and the continuous thread starves.  STFM instead asks "who has
actually been slowed down?" and treats the four threads equally.

This example also demonstrates driving the simulator with *custom*
synthetic benchmarks (BenchmarkSpec instances) rather than the built-in
SPEC CPU2006 registry.

Usage::

    python examples/idleness_problem.py [instruction_budget]
"""

import sys

from repro import BenchmarkSpec, ExperimentRunner, SystemConfig
from repro.sim.results import format_table


def continuous() -> BenchmarkSpec:
    return BenchmarkSpec(
        name="continuous", itype="SYN", mcpi=5.0, mpki=40.0,
        rb_hit_rate=0.4, category=3, burstiness=0.0, burst_len=6,
        dependence=0.0, mlp=8,
    )


def bursty(name: str) -> BenchmarkSpec:
    return BenchmarkSpec(
        name=name, itype="SYN", mcpi=2.0, mpki=12.0, rb_hit_rate=0.4,
        category=0, burstiness=0.95, burst_len=10, dependence=0.0,
        mlp=6, periodic_bursts=True,
    )


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    runner = ExperimentRunner(
        SystemConfig(num_cores=4), instruction_budget=budget
    )
    threads = [continuous(), bursty("bursty-1"), bursty("bursty-2"),
               bursty("bursty-3")]
    rows = []
    for policy in ("fr-fcfs", "nfq", "stfm"):
        result = runner.run_workload(threads, policy=policy)
        slowdowns = {t.name: t.slowdown for t in result.threads}
        bursty_mean = sum(
            s for n, s in slowdowns.items() if n.startswith("bursty")
        ) / 3
        rows.append(
            [result.policy, slowdowns["continuous"], bursty_mean,
             result.unfairness]
        )
    print(
        format_table(
            ["policy", "continuous", "mean bursty", "unfairness"], rows
        )
    )
    print(
        "\nNFQ slows the continuous thread well beyond the bursty ones "
        "(idleness problem); STFM keeps them close to FR-FCFS parity."
    )


if __name__ == "__main__":
    main()
