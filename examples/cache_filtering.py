#!/usr/bin/env python3
"""Deriving an L2-miss trace from a raw reference trace with the cache
substrate, then simulating it.

The paper's cores have private 512 KB L2 caches (Table 2); the memory
controller only sees L2 misses and writebacks.  The built-in workloads
synthesize miss traces directly, but the :mod:`repro.cpu.cache` model
lets you start from a raw address trace instead — e.g. one captured from
an instrumented application — and filter it down to DRAM traffic.

Usage::

    python examples/cache_filtering.py
"""

import random

from repro import SystemConfig, make_policy
from repro.cpu.cache import Cache, filter_trace
from repro.cpu.trace import Trace, TraceRecord
from repro.sim.system import CmpSystem


def synthesize_reference_trace(records: int, seed: int = 42) -> Trace:
    """A toy reference stream: strided array sweeps + random pointer
    lookups over a working set larger than the L2."""
    rng = random.Random(seed)
    working_set = 4 * 1024 * 1024  # 4 MB: 8x the L2
    out = []
    cursor = 0
    for _ in range(records):
        if rng.random() < 0.7:  # sequential sweep (cache friendly-ish)
            cursor = (cursor + 64) % working_set
            address = cursor
        else:  # random lookup
            address = rng.randrange(0, working_set, 64)
        out.append(
            TraceRecord(
                compute=rng.randrange(2, 12),
                is_write=rng.random() < 0.3,
                address=address,
            )
        )
    return Trace(out, loop=False)


def main() -> None:
    reference = synthesize_reference_trace(60_000)
    l2 = Cache(size_bytes=512 * 1024, ways=8)
    misses = filter_trace(reference, l2)

    print(f"reference trace : {reference.memory_operations} accesses")
    print(
        f"L2              : {l2.stats.hit_rate:.1%} hit rate, "
        f"{l2.stats.writebacks} writebacks"
    )
    print(
        f"miss trace      : {misses.memory_operations} DRAM requests "
        f"({misses.mpki():.1f} MPKI)"
    )

    config = SystemConfig(num_cores=1)
    system = CmpSystem(
        config,
        [Trace(misses.records, loop=False)],
        make_policy("fr-fcfs", num_threads=1),
        instruction_budget=misses.instructions_per_pass,
    )
    snapshot = system.run()[0]
    stats = system.controller.thread_stats[0]
    print(
        f"\nsimulated on DDR2-800: IPC {snapshot.ipc:.2f}, "
        f"MCPI {snapshot.mcpi:.3f}, row-buffer hit rate "
        f"{stats.row_hit_rate:.1%}, avg DRAM latency "
        f"{stats.average_read_latency:.0f} cycles"
    )


if __name__ == "__main__":
    main()
