#!/usr/bin/env python3
"""Quality of service via thread weights (paper Section 3.3 / Figure 14).

The system software assigns weights to threads; STFM scales each
thread's measured slowdown as ``S' = 1 + (S - 1) * W`` so heavier
threads are prioritized sooner, while equal-weight threads still get
equal slowdowns.  NFQ expresses the same intent as bandwidth shares —
but equalizing bandwidth does not equalize slowdowns.

Usage::

    python examples/thread_weights.py [instruction_budget]
"""

import sys

from repro import ExperimentRunner, SystemConfig
from repro.sim.results import format_table

WORKLOAD = ["libquantum", "cactusADM", "astar", "omnetpp"]
WEIGHTS = [1.0, 16.0, 1.0, 1.0]  # cactusADM is the high-priority thread


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    runner = ExperimentRunner(
        SystemConfig(num_cores=4), instruction_budget=budget
    )
    schemes = {
        "FR-FCFS (no QoS)": ("fr-fcfs", None),
        "NFQ bandwidth shares": ("nfq", {"shares": WEIGHTS}),
        "STFM thread weights": ("stfm", {"weights": WEIGHTS}),
    }
    rows = []
    for label, (policy, kwargs) in schemes.items():
        result = runner.run_workload(WORKLOAD, policy, kwargs)
        slowdowns = {t.name: t.slowdown for t in result.threads}
        equal_weight = [
            s for name, s in slowdowns.items() if name != "cactusADM"
        ]
        rows.append(
            [label]
            + [slowdowns[name] for name in WORKLOAD]
            + [max(equal_weight) / min(equal_weight)]
        )
    print(f"weights: {dict(zip(WORKLOAD, WEIGHTS))}\n")
    print(
        format_table(
            ["scheme"] + WORKLOAD + ["equal-weight unfairness"], rows
        )
    )
    print(
        "\nBoth QoS schemes shield cactusADM (weight 16), but only STFM "
        "keeps the three weight-1 threads equally slowed."
    )


if __name__ == "__main__":
    main()
