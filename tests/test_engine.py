"""Tests for the parallel experiment engine (repro.engine).

Covers the job graph (dedup of shared alone-baseline jobs), the
content-addressed cache keys, the on-disk result store (hit/miss across
two runner processes), the executor's crash-retry and timeout paths, and
the acceptance criterion: a policy sweep produces bit-identical metrics
with ``jobs=1`` and ``jobs=4``, and a warm-cache rerun performs zero new
simulations.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace
from typing import ClassVar

import pytest

from repro.engine import (
    AloneJob,
    EngineOptions,
    ExperimentPlan,
    JobExecutor,
    JobFailedError,
    ResultStore,
    SharedJob,
    engine_options,
    register_job_kind,
)
from repro.engine.jobs import freeze_kwargs
from repro.experiments.base import Scale
from repro.experiments.common import ALL_POLICIES, make_runner, policy_sweep
from repro.schedulers.registry import make_policy
from repro.sim.config import SystemConfig
from repro.sim.runner import ExperimentRunner

CONFIG = SystemConfig(num_cores=2, max_cycles=20_000_000)

SWEEP_WORKLOADS = [
    ["mcf", "hmmer"],
    ["libquantum", "omnetpp"],
    ["mcf", "libquantum"],
    ["GemsFDTD", "astar"],
]


def _alone_job(**overrides) -> AloneJob:
    base = dict(
        spec=None, partition=0, num_partitions=2, budget=2_000, seed=0,
        config=CONFIG,
    )
    base.update(overrides)
    if base["spec"] is None:
        from repro.workloads.spec2006 import benchmark

        base["spec"] = benchmark("mcf")
    return AloneJob(**base)


class TestCacheKeys:
    def test_alone_key_covers_every_input(self):
        base = _alone_job()
        assert base.cache_key() == _alone_job().cache_key()
        for variant in (
            _alone_job(partition=1),
            _alone_job(num_partitions=4),
            _alone_job(budget=4_000),
            _alone_job(seed=7),
            _alone_job(config=replace(CONFIG, num_banks=4)),
            _alone_job(config=replace(CONFIG, max_cycles=10_000_000)),
        ):
            assert variant.cache_key() != base.cache_key()

    def test_alone_key_ignores_core_count(self):
        # Baselines depend on the memory system only: a 2-core and a
        # 4-core config with identical memory share alone baselines.
        two = _alone_job(config=SystemConfig(num_cores=2, num_channels=1))
        four = _alone_job(config=SystemConfig(num_cores=4, num_channels=1))
        assert two.cache_key() == four.cache_key()

    def test_shared_key_covers_policy_and_kwargs(self):
        from repro.workloads.spec2006 import benchmark

        def shared(policy="stfm", kwargs=None, seed=0):
            return SharedJob(
                specs=(benchmark("mcf"), benchmark("hmmer")),
                policy=policy,
                policy_kwargs=freeze_kwargs(kwargs),
                budgets=(2_000, 2_000),
                seed=seed,
                config=CONFIG,
            )

        base = shared()
        assert base.cache_key() == shared().cache_key()
        assert shared(policy="nfq").cache_key() != base.cache_key()
        assert shared(seed=3).cache_key() != base.cache_key()
        assert (
            shared(kwargs={"weights": [1.0, 4.0]}).cache_key()
            != base.cache_key()
        )

    def test_kwargs_order_is_canonical(self):
        assert freeze_kwargs({"a": 1, "b": [2, 3]}) == freeze_kwargs(
            {"b": [2, 3], "a": 1}
        )


class TestPlanDedup:
    def test_alone_baselines_shared_across_policies_and_workloads(self):
        plan = ExperimentPlan(CONFIG, instruction_budget=2_000)
        for workload in (["mcf", "hmmer"], ["mcf", "libquantum"]):
            for policy in ("fr-fcfs", "stfm"):
                plan.add(workload, policy)
        # 4 shared jobs; alone jobs dedup to mcf@0, hmmer@1, libquantum@1.
        assert len(plan.requests) == 4
        assert len(plan) == 7
        # 4 requests x 3 jobs = 12 admissions, 7 unique.
        assert plan.dedup_hits == 5

    def test_identical_requests_collapse(self):
        plan = ExperimentPlan(CONFIG, instruction_budget=2_000)
        plan.add(["mcf", "hmmer"], "stfm")
        plan.add(["mcf", "hmmer"], "stfm")
        assert len(plan.requests) == 2
        assert len(plan) == 3

    def test_validation_matches_runner(self):
        plan = ExperimentPlan(CONFIG)
        with pytest.raises(ValueError, match="empty"):
            plan.add([])
        with pytest.raises(ValueError, match="benchmarks for"):
            plan.add(["mcf", "mcf", "mcf"])


class TestResultStore:
    def test_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        job = _alone_job()
        key = job.cache_key()
        assert store.get(key) is None
        store.put(key, {"instructions": 10}, describe=job.describe())
        assert store.get(key) == {"instructions": 10}
        assert key in store
        assert len(store) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = _alone_job().cache_key()
        store.put(key, {"x": 1})
        store._path(key).write_text("not json{")
        assert store.get(key) is None


# -- executor crash / timeout paths, via a scripted job kind ----------------


@dataclass(frozen=True)
class ScriptedJob:
    """A job whose behaviour is scripted by its fields (tests only)."""

    name: str
    crash_marker: str = ""  # os._exit until this file exists
    always_crash: bool = False
    sleep: float = 0.0
    raise_error: bool = False

    kind: ClassVar[str] = "scripted-test"

    def cache_key(self) -> str:
        return f"scripted-{self.name}"

    def describe(self) -> str:
        return f"scripted {self.name}"


def _run_scripted(job: ScriptedJob) -> dict:
    if job.raise_error:
        raise ValueError("scripted failure")
    if job.always_crash:
        os._exit(23)
    if job.sleep:
        time.sleep(job.sleep)
    if job.crash_marker and not os.path.exists(job.crash_marker):
        with open(job.crash_marker, "w"):
            pass
        os._exit(23)
    return {"name": job.name}


register_job_kind(ScriptedJob.kind, _run_scripted)


class TestExecutorFaults:
    def test_retry_after_worker_crash(self, tmp_path):
        # The worker kills itself on the first attempt (leaving a marker)
        # and succeeds on the retry.
        job = ScriptedJob("flaky", crash_marker=str(tmp_path / "marker"))
        executor = JobExecutor(jobs=2, retries=2)
        payloads = executor.run([job])
        assert payloads[job.cache_key()] == {"name": "flaky"}
        assert executor.report.retries == 1
        assert executor.report.jobs_run == 1
        assert executor.report.jobs_failed == 0

    def test_crash_exhausts_retries(self):
        job = ScriptedJob("doomed", always_crash=True)
        executor = JobExecutor(jobs=2, retries=1)
        with pytest.raises(JobFailedError, match="crash"):
            executor.run([job])
        assert executor.report.retries == 1
        assert executor.report.jobs_failed == 1

    def test_timeout_kills_the_worker(self):
        job = ScriptedJob("sleepy", sleep=30.0)
        executor = JobExecutor(jobs=2, timeout=0.2, retries=0)
        started = time.perf_counter()
        with pytest.raises(JobFailedError, match="timed out"):
            executor.run([job])
        assert time.perf_counter() - started < 10.0
        assert executor.report.jobs_failed == 1

    def test_worker_exception_fails_fast(self):
        job = ScriptedJob("broken", raise_error=True)
        executor = JobExecutor(jobs=2, retries=3)
        with pytest.raises(JobFailedError, match="scripted failure"):
            executor.run([job])
        assert executor.report.retries == 0  # deterministic: no retry

    def test_serial_exception_wrapped(self):
        job = ScriptedJob("broken-serial", raise_error=True)
        executor = JobExecutor(jobs=1)
        with pytest.raises(JobFailedError, match="scripted failure"):
            executor.run([job])


class TestCacheBehaviour:
    def test_hit_and_miss_across_two_runners(self, tmp_path):
        first = ExperimentRunner(
            CONFIG, instruction_budget=1_500, cache_dir=str(tmp_path)
        )
        cold = first.run_policies(["mcf", "hmmer"], ["fr-fcfs", "stfm"])
        assert first.report.jobs_run == 4  # 2 alone + 2 shared
        assert first.report.hits == 0

        # A fresh runner (fresh process in real life) hits only the disk.
        second = ExperimentRunner(
            CONFIG, instruction_budget=1_500, cache_dir=str(tmp_path)
        )
        warm = second.run_policies(["mcf", "hmmer"], ["fr-fcfs", "stfm"])
        assert second.report.jobs_run == 0
        assert second.report.hits_disk == 4
        assert {k: v.summary_row() for k, v in cold.items()} == {
            k: v.summary_row() for k, v in warm.items()
        }

    def test_changed_seed_misses(self, tmp_path):
        first = ExperimentRunner(
            CONFIG, instruction_budget=1_500, cache_dir=str(tmp_path)
        )
        first.run_workload(["mcf", "hmmer"], "stfm")
        other_seed = ExperimentRunner(
            CONFIG, instruction_budget=1_500, seed=9, cache_dir=str(tmp_path)
        )
        other_seed.run_workload(["mcf", "hmmer"], "stfm")
        assert other_seed.report.hits == 0
        assert other_seed.report.jobs_run == 3

    def test_memory_cache_within_one_runner(self):
        runner = ExperimentRunner(CONFIG, instruction_budget=1_500)
        runner.run_workload(["mcf", "hmmer"], "stfm")
        runner.run_workload(["mcf", "hmmer"], "stfm")
        assert runner.report.jobs_run == 3
        assert runner.report.hits_memory == 3


class TestSerialParallelEquality:
    def test_engine_path_matches_legacy_direct_path(self):
        engine_runner = ExperimentRunner(CONFIG, instruction_budget=1_500)
        via_engine = engine_runner.run_workload(["mcf", "hmmer"], "stfm")
        direct_runner = ExperimentRunner(CONFIG, instruction_budget=1_500)
        via_direct = direct_runner.run_workload(
            ["mcf", "hmmer"], make_policy("stfm", num_threads=2)
        )
        assert via_engine.summary_row() == via_direct.summary_row()
        assert via_engine.extras == via_direct.extras
        assert via_engine.threads == via_direct.threads

    def test_sweep_identical_serial_vs_parallel_and_warm_cache(self, tmp_path):
        """The acceptance criterion: >=4 workloads x all policies, equal
        metrics under --jobs 1 and --jobs 4, zero simulations when warm."""
        serial = ExperimentRunner(CONFIG, instruction_budget=1_200, jobs=1)
        rows_serial, text_serial = policy_sweep(
            serial, SWEEP_WORKLOADS, ALL_POLICIES
        )

        parallel = ExperimentRunner(
            CONFIG, instruction_budget=1_200, jobs=4, cache_dir=str(tmp_path)
        )
        rows_parallel, text_parallel = policy_sweep(
            parallel, SWEEP_WORKLOADS, ALL_POLICIES
        )
        assert rows_serial == rows_parallel  # floats compared exactly
        assert text_serial == text_parallel
        # mcf@slot0 is shared between workloads 1 and 3: 7 unique alone
        # jobs + 4x5 shared jobs.
        assert parallel.report.jobs_total == 27
        assert parallel.report.jobs_run == 27

        warm = ExperimentRunner(
            CONFIG, instruction_budget=1_200, jobs=4, cache_dir=str(tmp_path)
        )
        rows_warm, text_warm = policy_sweep(warm, SWEEP_WORKLOADS, ALL_POLICIES)
        assert warm.report.jobs_run == 0
        assert warm.report.hits_disk == 27
        assert rows_warm == rows_serial
        assert text_warm == text_serial

    @pytest.mark.slow
    def test_four_core_sweep_identical_at_small_scale(self, tmp_path):
        config = SystemConfig(num_cores=4)
        workloads = [
            ["mcf", "libquantum", "GemsFDTD", "astar"],
            ["libquantum", "cactusADM", "astar", "omnetpp"],
            ["mcf", "hmmer", "lbm", "omnetpp"],
            ["GemsFDTD", "astar", "mcf", "libquantum"],
        ]
        serial = ExperimentRunner(config, instruction_budget=6_000, jobs=1)
        rows_serial, _ = policy_sweep(serial, workloads, ALL_POLICIES)
        parallel = ExperimentRunner(
            config, instruction_budget=6_000, jobs=4, cache_dir=str(tmp_path)
        )
        rows_parallel, _ = policy_sweep(parallel, workloads, ALL_POLICIES)
        assert rows_serial == rows_parallel


class TestOptionsPlumbing:
    def test_make_runner_picks_up_ambient_options(self, tmp_path):
        with engine_options(EngineOptions(jobs=3, cache_dir=str(tmp_path))):
            runner = make_runner(2, Scale(budget=1_000, samples=1))
        assert runner.engine.executor.jobs == 3
        assert runner.engine.store is not None
        assert runner.engine.store.root == tmp_path

    def test_defaults_are_serial_and_unpersisted(self):
        runner = make_runner(2, Scale(budget=1_000, samples=1))
        assert runner.engine.executor.jobs == 1
        assert runner.engine.store is None

    def test_explicit_options_override_ambient(self, tmp_path):
        with engine_options(EngineOptions(jobs=3)):
            runner = make_runner(
                2, Scale(budget=1_000, samples=1), engine=EngineOptions(jobs=1)
            )
        assert runner.engine.executor.jobs == 1
