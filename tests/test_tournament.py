"""Tests for the tournament subsystem (repro.tournament).

Covers spec validation, deterministic content-addressed cell keys, the
stratified matrix builder, the Pareto frontier, a small end-to-end
tournament (JSON payload + chart), serial/parallel bit-identity, and
the warm-rerun-zero-simulations property against a persistent store.
"""

from __future__ import annotations

import json

import pytest

from repro.engine import EngineOptions, engine_options, session_report
from repro.tournament import (
    MATRIX_SIZES,
    TournamentSpec,
    build_matrix,
    frontier_chart,
    pareto_frontier,
    run_tournament,
    stratified_matrix,
)
from repro.workloads import is_streaming_agent

QUICK_POLICIES = ["fr-fcfs", "bliss"]
QUICK_WORKLOADS = [["mcf", "hmmer"], ["libquantum", "gpu-stream"]]


def quick_spec(**overrides) -> TournamentSpec:
    settings = dict(
        policies=QUICK_POLICIES,
        workloads=QUICK_WORKLOADS,
        num_cores=2,
        budget=1_500,
        seed=0,
    )
    settings.update(overrides)
    return TournamentSpec.create(**settings)


# -- spec validation ----------------------------------------------------------


class TestSpecValidation:
    def test_valid_spec_builds(self):
        spec = quick_spec()
        assert spec.labels == ["mcf+hmmer", "libquantum+gpu-stream"]

    @pytest.mark.parametrize(
        "overrides, match",
        [
            ({"policies": []}, "at least one policy"),
            ({"policies": ["bogus"]}, "unknown policy"),
            ({"policies": ["stfm", "STFM"]}, "duplicate policy"),
            ({"workloads": []}, "at least one workload"),
            ({"workloads": [[]]}, "empty workload"),
            ({"workloads": [["mcf", "hmmer", "astar"]]}, "2 cores"),
            (
                {"workloads": [["mcf", "hmmer"], ["mcf", "hmmer"]]},
                "duplicate workload",
            ),
            ({"budget": 0}, "budget"),
            ({"num_cores": 0}, "num_cores"),
            (
                {"policy_kwargs": {"stfm": {"alpha": 2.0}}},
                "not entered",
            ),
        ],
    )
    def test_rejects(self, overrides, match):
        with pytest.raises(ValueError, match=match):
            quick_spec(**overrides)

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(KeyError, match="bogus"):
            quick_spec(workloads=[["mcf", "bogus"]])

    def test_policy_kwargs_roundtrip(self):
        spec = quick_spec(
            policies=["fr-fcfs", "stfm"],
            policy_kwargs={"stfm": {"alpha": 1.5}},
        )
        assert spec.kwargs_for("stfm") == {"alpha": 1.5}
        assert spec.kwargs_for("STFM") == {"alpha": 1.5}
        assert spec.kwargs_for("fr-fcfs") == {}


class TestCellKeys:
    def test_deterministic_across_equal_specs(self):
        a, b = quick_spec(), quick_spec()
        workload = a.workloads[0]
        assert a.cell_key(workload, "bliss") == b.cell_key(workload, "bliss")
        assert a.digest() == b.digest()

    def test_distinguishes_cell_inputs(self):
        spec = quick_spec()
        base = spec.cell_key(spec.workloads[0], "bliss")
        assert spec.cell_key(spec.workloads[1], "bliss") != base
        assert spec.cell_key(spec.workloads[0], "fr-fcfs") != base
        assert quick_spec(seed=1).cell_key(spec.workloads[0], "bliss") != base
        assert (
            quick_spec(budget=2_000).cell_key(spec.workloads[0], "bliss")
            != base
        )

    def test_stable_when_matrix_grows(self):
        """A cell keeps its key when unrelated workloads join the matrix."""
        small = quick_spec()
        grown = quick_spec(
            workloads=QUICK_WORKLOADS + [["astar", "omnetpp"]]
        )
        workload = small.workloads[0]
        assert small.cell_key(workload, "bliss") == grown.cell_key(
            workload, "bliss"
        )
        assert small.digest() != grown.digest()

    def test_policy_kwargs_feed_the_key(self):
        plain = quick_spec(policies=["stfm"])
        tuned = quick_spec(
            policies=["stfm"], policy_kwargs={"stfm": {"alpha": 2.0}}
        )
        workload = plain.workloads[0]
        assert plain.cell_key(workload, "stfm") != tuned.cell_key(
            workload, "stfm"
        )


# -- matrix -------------------------------------------------------------------


class TestMatrix:
    def test_stratified_matrix_deterministic(self):
        assert stratified_matrix(4, 8, seed=0) == stratified_matrix(
            4, 8, seed=0
        )
        assert stratified_matrix(4, 8, seed=0) != stratified_matrix(
            4, 8, seed=1
        )

    def test_heterogeneous_stratum_present(self):
        matrix = stratified_matrix(4, 8, seed=0)
        hetero = [m for m in matrix if any(is_streaming_agent(n) for n in m)]
        assert len(hetero) == 2  # one quarter of 8
        cpu_only = [
            m for m in matrix if not any(is_streaming_agent(n) for n in m)
        ]
        assert len(cpu_only) == 6

    def test_named_sizes(self):
        for name, count in MATRIX_SIZES.items():
            matrix = build_matrix(name, num_cores=4, seed=0)
            assert len(matrix) == count
        with pytest.raises(ValueError, match="unknown matrix"):
            build_matrix("huge")

    def test_matrix_feeds_a_valid_spec(self):
        spec = TournamentSpec.create(
            policies=["fr-fcfs"],
            workloads=build_matrix("small", num_cores=4),
            num_cores=4,
        )
        assert len(spec.workloads) == MATRIX_SIZES["small"]


# -- frontier -----------------------------------------------------------------


class TestFrontier:
    def test_pareto_dominance(self):
        points = [
            {"policy": "a", "weighted_speedup": 2.0, "unfairness": 1.2},
            {"policy": "b", "weighted_speedup": 1.9, "unfairness": 1.1},
            # Dominated by 'a' (slower AND less fair).
            {"policy": "c", "weighted_speedup": 1.8, "unfairness": 1.3},
        ]
        assert pareto_frontier(points) == ["a", "b"]

    def test_duplicate_points_both_survive(self):
        points = [
            {"policy": "a", "weighted_speedup": 2.0, "unfairness": 1.2},
            {"policy": "b", "weighted_speedup": 2.0, "unfairness": 1.2},
        ]
        assert pareto_frontier(points) == ["a", "b"]

    def test_chart_renders_markers_and_legend(self):
        points = [
            {"policy": "stfm", "weighted_speedup": 1.8, "unfairness": 1.1},
            {"policy": "fr-fcfs", "weighted_speedup": 1.7, "unfairness": 2.0},
        ]
        chart = frontier_chart(points)
        assert "A = stfm" in chart
        assert "B = fr-fcfs" in chart
        assert "* " in chart or "x) *" in chart or "*" in chart
        # Both policies are on this frontier (each wins one axis).
        assert chart.count("*") >= 2

    def test_chart_handles_identical_points(self):
        points = [
            {"policy": "a", "weighted_speedup": 1.5, "unfairness": 1.5},
            {"policy": "b", "weighted_speedup": 1.5, "unfairness": 1.5},
        ]
        chart = frontier_chart(points)  # must not divide by zero
        assert "legend" in chart


# -- end to end ---------------------------------------------------------------


class TestEndToEnd:
    def test_quick_tournament_produces_frontier(self):
        spec = quick_spec()
        with engine_options(EngineOptions(jobs=1, cache_dir=None)):
            result = run_tournament(spec)
        assert len(result.cells) == 4  # 2 policies x 2 workloads
        keys = {cell["key"] for cell in result.cells}
        assert len(keys) == 4
        for cell in result.cells:
            assert cell["unfairness"] >= 1.0
            assert cell["weighted_speedup"] > 0.0
            assert len(cell["slowdowns"]) == 2
        assert [row["policy"] for row in result.aggregates] == QUICK_POLICIES
        assert result.frontier  # never empty: something is undominated
        assert set(result.frontier) <= set(QUICK_POLICIES)
        payload = result.to_payload()
        json.dumps(payload)  # JSON-serializable as-is
        assert payload["spec_digest"] == spec.digest()
        assert payload["workloads"] == spec.labels
        assert "unfairness (lower is better)" in result.text

    def test_serial_and_parallel_bit_identical(self):
        spec = quick_spec()
        with engine_options(EngineOptions(jobs=1, cache_dir=None)):
            serial = run_tournament(spec)
        with engine_options(EngineOptions(jobs=2, cache_dir=None)):
            parallel = run_tournament(spec)
        assert serial.cells == parallel.cells
        assert serial.aggregates == parallel.aggregates
        assert serial.text == parallel.text

    def test_warm_rerun_zero_new_simulations(self, tmp_path):
        spec = quick_spec()
        store = str(tmp_path / "store")
        with engine_options(EngineOptions(jobs=1, cache_dir=store)):
            cold = run_tournament(spec)
        before = session_report().snapshot()
        with engine_options(EngineOptions(jobs=1, cache_dir=store)):
            warm = run_tournament(spec)
        delta = session_report().since(before)
        assert delta.jobs_run == 0
        assert delta.hits == delta.jobs_total > 0
        assert warm.cells == cold.cells
        assert warm.text == cold.text
