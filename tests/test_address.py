"""Tests for the address mapper, including hypothesis round-trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.address import AddressMapper


class TestBasics:
    def test_default_geometry(self, mapper):
        assert mapper.lines_per_row == 256  # 2 KB/chip * 8 chips / 64 B
        assert mapper.num_banks == 8
        assert mapper.num_rows == 1 << 14

    def test_capacity(self, mapper):
        assert mapper.capacity_bytes == 8 * (1 << 14) * 256 * 64  # 2 GiB

    def test_rejects_non_power_of_two_banks(self):
        with pytest.raises(ValueError):
            AddressMapper(num_banks=6)

    def test_rejects_row_not_multiple_of_lines(self):
        with pytest.raises(ValueError):
            AddressMapper(row_buffer_bytes=100, chips_per_dimm=1)

    def test_sequential_lines_stay_in_one_row(self, mapper):
        base = mapper.compose(0, 3, 100, 0)
        for column in range(mapper.lines_per_row):
            decoded = mapper.decode(base + column * 64)
            assert decoded.row == 100
            assert decoded.bank == 3
            assert decoded.column == column

    def test_row_rollover_changes_coordinates(self, mapper):
        base = mapper.compose(0, 3, 100, mapper.lines_per_row - 1)
        decoded = mapper.decode(base + 64)
        assert (decoded.bank, decoded.row) != (3, 100)

    def test_line_offset_ignored(self, mapper):
        address = mapper.compose(0, 2, 5, 7)
        assert mapper.decode(address + 13) == mapper.decode(address)


class TestXorHash:
    def test_xor_spreads_same_bank_field_across_rows(self):
        plain = AddressMapper(xor_bank_hash=False)
        hashed = AddressMapper(xor_bank_hash=True)
        # Same bank bits, consecutive rows: the XOR mapper spreads them.
        plain_banks = {plain.decode(plain.compose(0, 0, r, 0)).bank for r in range(8)}
        addresses = [
            # compose() inverts the hash, so construct raw addresses
            # instead: fixed bank field, varying row.
            (r << (3 + 0 + 8 + 6)) for r in range(8)
        ]
        hashed_banks = {hashed.decode(a).bank for a in addresses}
        assert plain_banks == {0}
        assert len(hashed_banks) == 8

    def test_compose_inverts_hash(self):
        hashed = AddressMapper(xor_bank_hash=True)
        for row in (0, 1, 7, 100):
            decoded = hashed.decode(hashed.compose(0, 5, row, 9))
            assert decoded.bank == 5
            assert decoded.row == row


@st.composite
def mapper_and_coords(draw):
    channels = draw(st.sampled_from([1, 2, 4]))
    banks = draw(st.sampled_from([4, 8, 16]))
    xor = draw(st.booleans())
    mapper = AddressMapper(
        num_channels=channels, num_banks=banks, xor_bank_hash=xor
    )
    channel = draw(st.integers(0, channels - 1))
    bank = draw(st.integers(0, banks - 1))
    row = draw(st.integers(0, mapper.num_rows - 1))
    column = draw(st.integers(0, mapper.lines_per_row - 1))
    return mapper, (channel, bank, row, column)


class TestRoundTripProperties:
    @given(mapper_and_coords())
    @settings(max_examples=200)
    def test_compose_decode_round_trip(self, case):
        mapper, (channel, bank, row, column) = case
        decoded = mapper.decode(mapper.compose(channel, bank, row, column))
        assert (decoded.channel, decoded.bank, decoded.row, decoded.column) == (
            channel,
            bank,
            row,
            column,
        )

    @given(st.integers(min_value=0, max_value=(1 << 34) - 1))
    @settings(max_examples=200)
    def test_decode_compose_round_trip_on_line_addresses(self, address):
        mapper = AddressMapper()
        line_address = (address >> 6) << 6  # align to a cache line
        decoded = mapper.decode(line_address)
        recomposed = mapper.compose(
            decoded.channel, decoded.bank, decoded.row, decoded.column
        )
        assert mapper.decode(recomposed) == decoded

    @given(st.integers(min_value=0, max_value=(1 << 40) - 1))
    @settings(max_examples=200)
    def test_decode_always_in_range(self, address):
        mapper = AddressMapper(num_channels=2)
        decoded = mapper.decode(address)
        assert 0 <= decoded.channel < 2
        assert 0 <= decoded.bank < 8
        assert 0 <= decoded.row < mapper.num_rows
        assert 0 <= decoded.column < mapper.lines_per_row


class TestCoordsValidation:
    def test_compose_rejects_out_of_range(self, mapper):
        with pytest.raises(ValueError):
            mapper.compose(1, 0, 0, 0)  # only one channel
        with pytest.raises(ValueError):
            mapper.compose(0, 8, 0, 0)
        with pytest.raises(ValueError):
            mapper.compose(0, 0, mapper.num_rows, 0)
        with pytest.raises(ValueError):
            mapper.compose(0, 0, 0, mapper.lines_per_row)
