"""Structural checks of the heavier sweep experiments at minimal scale.

These validate plumbing (row shapes, aggregation, labels) without
paying full sweep runtimes; the real regeneration happens in
``benchmarks/``.
"""

import pytest

from repro.experiments import run_experiment
from repro.experiments.base import Scale

SUPER_TINY = Scale(budget=2_000, samples=1)


class TestFig9Structure:
    def test_gmean_row_and_policy_columns(self):
        result = run_experiment("fig9", scale=SUPER_TINY)
        gmean = [r for r in result.rows if r.get("workload") == "GMEAN"]
        assert len(gmean) == 1
        assert "unfairness:stfm" in gmean[0]
        assert gmean[0]["unfairness:stfm"] >= 1.0


class TestFig10Structure:
    def test_eight_threads_all_policies(self):
        result = run_experiment("fig10", scale=SUPER_TINY)
        assert {row["policy"] for row in result.rows} == {
            "FR-FCFS", "FCFS", "FR-FCFS+Cap", "NFQ", "STFM",
        }
        slowdown_keys = [
            k for k in result.rows[0] if k.startswith("slowdown:")
        ]
        assert len(slowdown_keys) == 8


class TestFig13Structure:
    def test_desktop_threads_present(self):
        result = run_experiment("fig13", scale=SUPER_TINY)
        keys = set(result.rows[0])
        assert "slowdown:xml-parser" in keys
        assert "slowdown:instant-messenger" in keys


class TestTable5Structure:
    def test_all_six_sensitivity_points(self):
        result = run_experiment("table5", scale=SUPER_TINY)
        axes = [(row["axis"], row["value"]) for row in result.rows]
        assert ("banks", 4) in axes and ("banks", 16) in axes
        assert ("row_buffer", 1024) in axes and ("row_buffer", 4096) in axes
        assert len(axes) == 6
        for row in result.rows:
            assert row["frfcfs_unfairness"] >= 1.0
            assert row["stfm_unfairness"] >= 1.0
            assert row["frfcfs_ws"] > 0
            assert row["stfm_ws"] > 0


class TestIntervalResetAtRuntime:
    def test_short_interval_causes_resets_in_contended_run(self):
        from repro.sim.config import SystemConfig
        from repro.sim.runner import ExperimentRunner

        runner = ExperimentRunner(
            SystemConfig(num_cores=2), instruction_budget=4_000
        )
        result = runner.run_workload(
            ["mcf", "libquantum"],
            "stfm",
            {"interval_length": 1 << 12},
        )
        # 2**12 cycles is far below the run length, so the registers
        # must have been reset many times, and the system still works.
        assert result.unfairness >= 1.0

    def test_reset_count_observable(self):
        from repro.core.stfm import StfmPolicy
        from tests.conftest import ControllerHarness

        policy = StfmPolicy(2, interval_length=1_000)
        harness = ControllerHarness(policy=policy, num_threads=2)
        harness.submit(0, bank=0, row=1)
        harness.tick(400)  # 4000 cycles
        assert policy.registers.resets >= 3
