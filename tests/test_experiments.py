"""Tests for the experiment harness (all ids, tiny scale)."""

import pytest

from repro.experiments import EXPERIMENTS, SCALES, Scale, run_experiment
from repro.experiments.base import resolve_scale

#: A stripped-down scale so the whole registry runs in CI time.
SUPER_TINY = Scale(budget=2_000, samples=1)

#: Experiments cheap enough to execute in the unit-test suite.  The
#: heavyweight sweeps (fig5/9/11/12, table3/5) are covered structurally
#: here and exercised for real by the pytest-benchmark harness.
FAST_IDS = ["fig1", "fig3", "fig6", "fig7", "fig8", "fig14", "fig15"]


class TestScales:
    def test_named_scales_exist(self):
        assert {"tiny", "small", "medium", "paper"} <= set(SCALES)

    def test_resolve_scale(self):
        assert resolve_scale("tiny") is SCALES["tiny"]
        custom = Scale(budget=123)
        assert resolve_scale(custom) is custom
        with pytest.raises(ValueError):
            resolve_scale("gigantic")

    def test_scales_ordered_by_budget(self):
        assert (
            SCALES["tiny"].budget
            < SCALES["small"].budget
            < SCALES["medium"].budget
            < SCALES["paper"].budget
        )


class TestRegistry:
    def test_all_paper_experiments_registered(self):
        paper_ids = {
            "fig1", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9",
            "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
            "table3", "table5",
        }
        assert paper_ids <= set(EXPERIMENTS)

    def test_extension_experiments_registered(self):
        extensions = {
            "attack",
            "ablate-gamma",
            "ablate-interval",
            "ablate-estimator",
            "ablate-cap",
            "ablate-page-policy",
            "ablate-refresh",
        }
        assert extensions <= set(EXPERIMENTS)

    def test_unknown_experiment(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("fig99")


@pytest.mark.parametrize("experiment_id", FAST_IDS)
def test_experiment_runs_and_is_well_formed(experiment_id):
    result = run_experiment(experiment_id, scale=SUPER_TINY)
    assert result.experiment_id == experiment_id
    assert result.rows, "experiments must produce structured rows"
    assert result.text.strip()
    assert result.paper_reference


class TestSpecificShapes:
    def test_fig1_reports_both_core_counts(self):
        result = run_experiment("fig1", scale=SUPER_TINY)
        cores = {row["cores"] for row in result.rows}
        assert cores == {4, 8}
        assert len(result.rows) == 12  # 4 + 8 threads

    def test_fig6_covers_all_five_policies(self):
        result = run_experiment("fig6", scale=SUPER_TINY)
        policies = {row["policy"] for row in result.rows}
        assert policies == {"FR-FCFS", "FCFS", "FR-FCFS+Cap", "NFQ", "STFM"}

    def test_fig15_sweeps_alpha(self):
        result = run_experiment("fig15", scale=SUPER_TINY)
        alphas = [row["alpha"] for row in result.rows if row["alpha"]]
        assert alphas == [1.0, 1.05, 1.1, 1.2, 2.0, 5.0, 20.0]
        # The FR-FCFS reference row is last.
        assert result.rows[-1]["alpha"] is None

    def test_fig14_reports_equal_priority_unfairness(self):
        result = run_experiment("fig14", scale=SUPER_TINY)
        for row in result.rows:
            assert row["equal_priority_unfairness"] >= 1.0
        schemes = {row["scheme"] for row in result.rows}
        assert schemes == {"FR-FCFS", "NFQ-shares", "STFM-weights"}

    def test_fig3_idleness_shape(self):
        """NFQ hurts the continuous thread more than STFM does."""
        result = run_experiment("fig3", scale=Scale(budget=6_000, samples=1))
        by_policy = {row["policy"]: row for row in result.rows}
        assert (
            by_policy["NFQ"]["continuous_slowdown"]
            > by_policy["STFM"]["continuous_slowdown"]
        )


class TestSweepExperimentsStructurally:
    """Run the sweep experiments with minimal inputs to validate their
    plumbing without paying full runtime."""

    def test_fig5_with_two_partners(self):
        from repro.experiments import fig05

        result = fig05.run(scale=SUPER_TINY, partners=["libquantum", "dealII"])
        assert result.rows[-1]["partner"] == "GMEAN"
        assert result.rows[-1]["stfm_unfairness"] >= 1.0

    def test_table3_subset(self):
        from repro.experiments import table3

        result = table3.run(scale=SUPER_TINY, names=["mcf", "libquantum"])
        assert len(result.rows) == 2
        for row in result.rows:
            assert row["mpki_measured"] > 0
