"""Cross-policy scheduler invariants with hypothesis.

Beyond the timing-legality properties of ``test_properties.py``, these
check *policy-level* invariants: the two-level selection contract, cap
monotonicity, PAR-BS batch lifecycle, and STFM's mode hysteresis.
"""

from hypothesis import given, settings, strategies as st

from repro.core.stfm import StfmPolicy
from repro.schedulers.frfcfs import FrFcfsPolicy
from repro.schedulers.frfcfs_cap import FrFcfsCapPolicy
from repro.schedulers.parbs import ParBsPolicy
from tests.conftest import ControllerHarness

small_streams = st.lists(
    st.tuples(
        st.integers(0, 2),    # thread
        st.integers(0, 3),    # bank
        st.integers(0, 7),    # row
        st.integers(0, 2),    # gap in DRAM cycles
    ),
    min_size=2,
    max_size=24,
)


@given(stream=small_streams)
@settings(max_examples=30, deadline=None)
def test_parbs_batches_always_drain(stream):
    """Every formed batch is eventually fully serviced (the marked set
    returns to empty), so batching can never wedge the controller."""
    policy = ParBsPolicy(3)
    harness = ControllerHarness(policy=policy, num_threads=3)
    for thread, bank, row, gap in stream:
        harness.tick(gap)
        harness.submit(thread, bank=bank, row=row)
    harness.run_until_done()
    harness.tick(5)
    assert policy.marked_remaining == 0
    assert policy.batches_formed >= 1


@given(stream=small_streams, cap=st.integers(1, 6))
@settings(max_examples=20, deadline=None)
def test_capped_policy_never_slower_for_oldest_row_access(stream, cap):
    """FR-FCFS+Cap can only help (or match) the oldest row-access
    request relative to plain FR-FCFS on the same arrival sequence."""

    def run(policy):
        harness = ControllerHarness(policy=policy, num_threads=3)
        requests = []
        for thread, bank, row, gap in stream:
            harness.tick(gap)
            requests.append(harness.submit(thread, bank=bank, row=row))
        harness.run_until_done()
        # Completion of the conflict-prone request that arrived first.
        return min(r.completed_at for r in requests)

    first_frfcfs = run(FrFcfsPolicy())
    first_capped = run(FrFcfsCapPolicy(cap=cap))
    assert first_capped <= first_frfcfs + 1_000  # never pathologically worse


@given(stream=small_streams)
@settings(max_examples=20, deadline=None)
def test_stfm_mode_flag_consistent_with_reported_unfairness(stream):
    policy = StfmPolicy(3, alpha=1.10)
    harness = ControllerHarness(policy=policy, num_threads=3)
    for thread, bank, row, gap in stream:
        harness.tick(gap)
        harness.submit(thread, bank=bank, row=row)
        # After every begin_cycle the flag must match the comparison.
        assert policy.fairness_mode == (policy.last_unfairness > policy.alpha)
    harness.run_until_done()


@given(stream=small_streams)
@settings(max_examples=20, deadline=None)
def test_two_level_selection_never_picks_bus_blocked_command(stream):
    """The channel winner must always be channel-ready even when bank
    winners are bus-blocked."""
    policy = FrFcfsPolicy()
    harness = ControllerHarness(policy=policy, num_threads=3)
    original_select = policy.select

    def checked_select(channel_index, per_bank, now):
        winner = original_select(channel_index, per_bank, now)
        if winner is not None:
            assert winner.channel_ready
        return winner

    policy.select = checked_select
    for thread, bank, row, gap in stream:
        harness.tick(gap)
        harness.submit(thread, bank=bank, row=row)
    harness.run_until_done()
