"""Tests for the system-software interface (paper Section 3.3)."""

import pytest

from repro.core.stfm import StfmPolicy
from tests.conftest import ControllerHarness


class TestAlphaControl:
    def test_set_alpha(self):
        policy = StfmPolicy(2)
        policy.set_alpha(2.0)
        assert policy.alpha == 2.0

    def test_set_alpha_validation(self):
        policy = StfmPolicy(2)
        with pytest.raises(ValueError):
            policy.set_alpha(0.9)

    def test_raising_alpha_mid_run_relaxes_fairness(self):
        policy = StfmPolicy(2, alpha=1.05)
        harness = ControllerHarness(policy=policy, num_threads=2)
        stalls = {0: 1000, 1: 1000}
        policy.set_tshared_source(lambda t: stalls[t])
        policy.registers.add_interference(1, 500.0)
        harness.submit(0, bank=0, row=1)
        harness.submit(1, bank=1, row=1)
        harness.tick()
        assert policy.fairness_mode
        policy.set_alpha(50.0)  # "disable hardware fairness"
        harness.tick()
        assert not policy.fairness_mode


class TestWeightControl:
    def test_set_thread_weight(self):
        policy = StfmPolicy(2)
        policy.set_thread_weight(1, 8.0)
        assert policy.registers.threads[1].weight == 8.0

    def test_weight_validation(self):
        policy = StfmPolicy(2)
        with pytest.raises(ValueError):
            policy.set_thread_weight(0, -1.0)

    def test_weight_change_affects_prioritization(self):
        policy = StfmPolicy(2)
        harness = ControllerHarness(policy=policy, num_threads=2)
        stalls = {0: 1000, 1: 1000}
        policy.set_tshared_source(lambda t: stalls[t])
        # Same raw slowdown; weight breaks the tie.
        policy.registers.add_interference(0, 200.0)
        policy.registers.add_interference(1, 200.0)
        policy.set_thread_weight(1, 10.0)
        harness.submit(0, bank=0, row=1)
        harness.submit(1, bank=1, row=1)
        harness.tick()
        assert policy.fairness_mode
        assert policy.max_slowdown_thread == 1


class TestContextSwitch:
    def test_context_switch_resets_one_thread(self):
        policy = StfmPolicy(2)
        harness = ControllerHarness(policy=policy, num_threads=2)
        stalls = {0: 5000, 1: 5000}
        policy.set_tshared_source(lambda t: stalls[t])
        policy.registers.add_interference(0, 2000.0)
        policy.registers.add_interference(1, 2000.0)
        policy.registers.record_row(0, 3, 42)
        policy.notify_context_switch(0)
        # Thread 0's history is gone...
        assert policy.registers.threads[0].t_interference == 0.0
        assert policy.registers.last_row(0, 3) is None
        assert policy.slowdown_of(0) == 1.0
        # ...thread 1's is intact.
        assert policy.registers.threads[1].t_interference == 2000.0
        assert policy.slowdown_of(1) > 1.5

    def test_tshared_rebased_at_switch(self):
        policy = StfmPolicy(1)
        stalls = {0: 5000}
        policy.set_tshared_source(lambda t: stalls[t])
        policy.notify_context_switch(0)
        stalls[0] = 7000
        assert policy.registers.tshared(0, 7000) == 2000
