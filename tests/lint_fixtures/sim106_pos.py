import contextvars

_REQUEST_ID = contextvars.ContextVar("request_id")


def handle(request):
    _REQUEST_ID.set(request)


def serve(pool, request):
    pool.submit(handle, request)
