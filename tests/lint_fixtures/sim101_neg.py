import asyncio
import time


def busy():
    time.sleep(0.1)


async def tick():
    await asyncio.sleep(0.1)


async def offload():
    loop = asyncio.get_running_loop()
    await loop.run_in_executor(None, busy)
