import http.client
import threading
import time


def _probe(host):
    conn = http.client.HTTPConnection(host)
    conn.request("GET", "/healthz")
    return conn.getresponse().read()


def poll_paced(host):
    # Paced: sleeps between probes, so a dead endpoint costs one
    # request per half-second, not a busy-loop.
    while True:
        try:
            _probe(host)
        except OSError:
            pass
        time.sleep(0.5)


def poll_until_stopped(host, stop):
    # Bounded by the stop event (not constant-true), and paced by
    # Event.wait besides.
    while not stop.is_set():
        try:
            _probe(host)
        except OSError:
            pass
        stop.wait(0.5)


def poll_bounded(host):
    # Bounded attempts: a for-loop retry budget, not a while-True.
    for _attempt in range(3):
        try:
            return _probe(host)
        except OSError:
            time.sleep(0.1)
    return None


def main(host, stop):
    threading.Thread(target=poll_paced, args=(host,), daemon=True).start()
    threading.Thread(
        target=poll_until_stopped, args=(host, stop), daemon=True
    ).start()
    threading.Thread(target=poll_bounded, args=(host,), daemon=True).start()
