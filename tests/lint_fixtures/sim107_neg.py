# lint-as: src/repro/cluster/example.py


class ClusterCoordinator:
    def __init__(self, leases):
        self.leases = leases

    def _route_heartbeat(self, lease_id):
        return self.leases.heartbeat(lease_id, 0.0)

    def _summary(self):
        return self.leases.active_by_runner()
