import multiprocessing
import threading


def launch(work):
    child = multiprocessing.Process(target=work)
    child.start()
    pump = threading.Thread(target=work)
    pump.start()
    pump.join()
    child.join()
