import threading


def run_joined(work):
    runner = threading.Thread(target=work)
    runner.start()
    runner.join()


def run_daemon(work):
    beat = threading.Thread(target=work, daemon=True)
    beat.start()


def run_handoff(work, registry):
    runner = threading.Thread(target=work)
    runner.start()
    registry.append(runner)
    return runner
