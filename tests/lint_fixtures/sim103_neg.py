import threading

_LOCK = threading.Lock()
_CACHE = {}


async def refresh(fetch):
    with _LOCK:
        stale = dict(_CACHE)
    value = await fetch(stale)
    return value
