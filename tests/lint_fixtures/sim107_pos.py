# lint-as: src/repro/cluster/example.py


class ClusterCoordinator:
    def __init__(self, leases):
        self.leases = leases

    def _route_status(self, job_id):
        self.leases.expire_due(0.0)
        return 200, {}, b""
