import http.client
import threading


def _probe(host):
    conn = http.client.HTTPConnection(host)
    conn.request("GET", "/healthz")
    return conn.getresponse().read()


def poll_forever(host):
    # Tight retry: no sleep, no attempt bound, no deadline — a dead
    # endpoint turns this worker thread into a busy-loop.
    while True:
        try:
            _probe(host)
        except OSError:
            continue


def main(host):
    worker = threading.Thread(
        target=poll_forever, args=(host,), daemon=True
    )
    worker.start()
