import multiprocessing
import threading


def launch(work):
    pump = threading.Thread(target=work)
    pump.start()
    child = multiprocessing.Process(target=work)
    child.start()
    child.join()
    pump.join()
