import time


def warm_up():
    time.sleep(0.5)


async def tick():
    time.sleep(0.1)


async def prepare():
    warm_up()
