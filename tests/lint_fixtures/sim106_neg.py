import contextvars

_REQUEST_ID = contextvars.ContextVar("request_id")


def annotate(request):
    _REQUEST_ID.set(request)


def handle(request):
    return _REQUEST_ID.get(None)


def serve(pool, request):
    annotate(request)
    pool.submit(handle, request)
