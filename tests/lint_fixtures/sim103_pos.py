import threading

_LOCK = threading.Lock()


async def refresh(fetch):
    with _LOCK:
        value = await fetch()
    return value
