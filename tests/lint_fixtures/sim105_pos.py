import threading


def fire_and_forget(work):
    runner = threading.Thread(target=work)
    runner.start()
