import threading

_STATE = {}
_LOCK = threading.Lock()


def record(key, value):
    with _LOCK:
        _STATE.update({key: value})


def reset():
    with _LOCK:
        _STATE.clear()
