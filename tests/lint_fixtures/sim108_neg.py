# lint-as: src/repro/cluster/example.py
from repro.service.server import _json_response


class ClusterCoordinator:
    def __init__(self, leases):
        self.leases = leases

    def _route_heartbeat(self, lease_id):
        lease = self.leases.heartbeat(lease_id, 0.0)
        if lease is None:
            return _json_response(410, {"error": "gone"})
        return _json_response(200, {})


class Poller:
    def poll(self, client):
        status, headers, decoded = client.request(
            "POST", "/v1/leases", body={}
        )
        if status in (200, 204):
            return decoded
        return None
